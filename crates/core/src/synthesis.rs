//! The co-synthesis driver: the paper's nested two-loop optimisation.
//!
//! The outer loop (the GA over multi-mode mapping strings, Fig. 4)
//! optimises task mapping and core allocation; the inner loop
//! (list scheduling + communication mapping + PV-DVS) constructs the rest
//! of each implementation candidate. [`Synthesizer::run`] wires the
//! [`GenomeLayout`], [`Evaluator`] and improvement operators into the
//! generic GA engine and refines the winning candidate with fine-grained
//! voltage scaling.
//!
//! # Failure semantics
//!
//! The driver is designed to always come back with either a well-formed
//! [`SynthesisResult`] or a typed [`SynthesisError`]:
//!
//! - Candidate evaluations that fail, panic or price to a non-finite
//!   fitness are isolated with [`std::panic::catch_unwind`], charged
//!   [`REJECTED_COST`] and counted in [`SynthesisResult::rejected`]; the
//!   run continues.
//! - Budgets ([`momsynth_ga::GaConfig::max_seconds`],
//!   [`momsynth_ga::GaConfig::max_evaluations`]) and a cooperative stop
//!   flag degrade the run gracefully: the engine stops mid-generation and
//!   the best-so-far solution is still refined and returned, tagged with
//!   an accurate [`StopReason`].
//! - If even the final refinement of the winner fails, the driver falls
//!   back to the all-software seed mapping; only when that fails too does
//!   it return [`SynthesisError::Unschedulable`].

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use momsynth_sync::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use rand::{Rng, RngCore};

use momsynth_analyze::{analyze_system, Analysis, Severity};
use momsynth_ga::{GaConfig, GaProblem, GaSnapshot, RunControl, StopReason, REJECTED_COST};
use momsynth_model::units::Watts;
use momsynth_model::System;
use momsynth_telemetry::{
    CounterSet, Counters, Event, ModeSummary, PhaseTiming, RunStart, RunSummary, Sink, SpanEvent,
    Warning,
};

use crate::cache::{CacheState, EvalCache};
use crate::checkpoint::{Checkpoint, CheckpointError};
use crate::config::{InjectedFault, SynthesisConfig};
use crate::fitness::{Evaluator, Solution};
use crate::genome::{Gene, GenomeLayout};
use crate::improve::improve_random;
use crate::local_search::{polish, LocalSearchOptions, PolishControl};
use momsynth_dvs::DvsOptions;

/// The outcome of a synthesis run.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthesisResult {
    /// The best implementation found, refined with fine-grained DVS.
    pub best: Solution,
    /// Generations executed by the GA.
    pub generations: usize,
    /// Fitness evaluations performed.
    pub evaluations: usize,
    /// Candidate evaluations rejected because they errored, panicked or
    /// priced to a non-finite fitness.
    pub rejected: usize,
    /// Best fitness after each generation.
    pub history: Vec<f64>,
    /// Why the optimisation stopped.
    pub stop_reason: StopReason,
    /// Wall-clock optimisation time.
    pub wall_time: Duration,
    /// Cumulative telemetry counters (violations seen, rejected
    /// evaluations, improvement-operator efficacy, DVS iterations).
    pub counters: Counters,
    /// Per-phase wall-clock breakdown of the inner loop. Empty unless a
    /// trace-enabled sink was attached to the run.
    pub phase_timings: Vec<PhaseTiming>,
    /// Provable Eq. 1 power lower bound p̄_LB computed by the
    /// pre-synthesis static analyzer. The reported average power of any
    /// verifier-accepted solution is at least this value.
    pub power_lower_bound: Watts,
    /// Fraction of (task, candidate PE) pairs the static analyzer proved
    /// infeasible and removed from the genome domain; `0.0` when
    /// [`SynthesisConfig::prune_domains`] is off.
    pub pruned_domain_ratio: f64,
}

impl SynthesisResult {
    /// Renders the run as a machine-readable [`RunSummary`]: final p̄
    /// per Eq. 1, per-mode dynamic/static power breakdown, stop reason
    /// and throughput.
    pub fn summary(&self, system: &System, config: &SynthesisConfig) -> RunSummary {
        let modes = system
            .omsm()
            .modes()
            .map(|(mode, m)| {
                let mp = &self.best.power.modes[mode.index()];
                ModeSummary {
                    mode: m.name().to_owned(),
                    probability: m.probability(),
                    dynamic_mw: mp.dynamic.as_milli(),
                    static_mw: mp.static_power.as_milli(),
                    total_mw: mp.total().as_milli(),
                }
            })
            .collect();
        let wall = self.wall_time.as_secs_f64();
        let lb = self.power_lower_bound;
        let optimality_gap = if lb.value() > 0.0 && self.best.power.average.value().is_finite() {
            (self.best.power.average - lb) / lb
        } else {
            0.0
        };
        RunSummary {
            system: system.name().to_owned(),
            probability_aware: config.probability_aware,
            dvs: config.dvs.is_some(),
            seed: config.ga.seed,
            average_power_mw: self.best.power.average.as_milli(),
            feasible: self.best.is_feasible(),
            modes,
            stop_reason: self.stop_reason.to_string(),
            generations: self.generations as u64,
            evaluations: self.evaluations as u64,
            rejected: self.rejected as u64,
            wall_time_s: wall,
            evals_per_sec: if wall > 0.0 { self.evaluations as f64 / wall } else { 0.0 },
            threads: config.effective_threads() as u64,
            cache_hit_rate: self.counters.cache_hit_rate(),
            power_lower_bound_mw: lb.as_milli(),
            optimality_gap,
            counters: self.counters.clone(),
            phases: self.phase_timings.clone(),
        }
    }

    /// Renders the full solution (mapping, allocation, schedules, power)
    /// as the machine-readable JSON report that `momsynth run --output`
    /// writes and the job server returns from its result endpoint.
    pub fn report(&self, system: &System) -> serde_json::Value {
        serde_json::json!({
            "system": system.name(),
            "average_power_mw": self.best.power.average.as_milli(),
            "feasible": self.best.is_feasible(),
            "mapping": self.best.mapping,
            "alloc": self.best.alloc,
            "schedules": self.best.schedules,
            "voltage_schedules": self.best.voltage_schedules,
            "power": self.best.power,
            "generations": self.generations,
            "evaluations": self.evaluations,
            "rejected": self.rejected,
            "stop_reason": self.stop_reason.to_string(),
        })
    }
}

/// A synthesis run failed in a way no fallback could absorb.
#[derive(Debug, Clone, PartialEq)]
pub enum SynthesisError {
    /// The pre-synthesis static analyzer proved the specification
    /// infeasible — some constraint is violated by *every* candidate
    /// implementation (a deadline below the critical-path floor, a task
    /// with no capable PE, a hardware area floor above capacity) — so the
    /// GA never started. The carried [`Analysis`] lists the proofs.
    Infeasible(Box<Analysis>),
    /// Neither the GA's winner nor the all-software fallback mapping
    /// could be scheduled — the system specification admits no routable
    /// implementation (or the evaluator fails persistently).
    Unschedulable {
        /// Why the best genome's final evaluation failed.
        best: String,
        /// Why the all-software fallback failed as well.
        fallback: String,
    },
    /// A resume checkpoint could not be applied to this run.
    Checkpoint(CheckpointError),
}

impl std::fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Infeasible(analysis) => {
                write!(
                    f,
                    "specification is provably infeasible ({} error finding(s)): ",
                    analysis.count(Severity::Error)
                )?;
                let mut first = true;
                for finding in analysis.errors() {
                    if !first {
                        write!(f, "; ")?;
                    }
                    first = false;
                    write!(f, "{finding}")?;
                }
                Ok(())
            }
            Self::Unschedulable { best, fallback } => write!(
                f,
                "no schedulable implementation: best genome failed ({best}), \
                 all-software fallback failed ({fallback})"
            ),
            Self::Checkpoint(e) => write!(f, "checkpoint error: {e}"),
        }
    }
}

impl std::error::Error for SynthesisError {}

impl From<CheckpointError> for SynthesisError {
    fn from(e: CheckpointError) -> Self {
        Self::Checkpoint(e)
    }
}

/// Periodic checkpointing of a synthesis run.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointSpec {
    /// File the checkpoint JSON is (atomically) written to.
    pub path: PathBuf,
    /// Save every this many generations (0 is treated as 1).
    pub every: usize,
    /// Additionally save whenever this much wall-clock time has passed
    /// since the last save, regardless of the generation cadence. A
    /// long-running server sets this so slow generations cannot stretch
    /// the crash-recovery window arbitrarily. `None` disables the time
    /// cadence.
    pub every_seconds: Option<f64>,
}

impl CheckpointSpec {
    /// Generation-cadence-only checkpointing (no time cadence).
    pub fn every_generations(path: PathBuf, every: usize) -> Self {
        Self { path, every, every_seconds: None }
    }
}

/// Resilience controls for [`Synthesizer::run_controlled`]. The default
/// runs to completion without checkpoints, like [`Synthesizer::run`].
#[derive(Default)]
pub struct SynthControl<'a> {
    /// Cooperative cancellation flag (e.g. raised by a Ctrl-C handler);
    /// checked between evaluations by both the GA and the polish stage.
    pub stop: Option<&'a AtomicBool>,
    /// Periodically checkpoint the GA state to a file. Save failures are
    /// reported as [`Warning`] events (stderr when no sink is attached)
    /// but never abort the run.
    pub checkpoint: Option<CheckpointSpec>,
    /// Resume from a previously saved checkpoint instead of a fresh
    /// population. Validated against the loaded system and seed.
    pub resume: Option<Checkpoint>,
    /// Telemetry sink receiving run/generation/phase/summary events.
    /// Expensive events are only built when the sink reports
    /// [`Sink::enabled`].
    pub sink: Option<&'a dyn Sink>,
    /// Trace identifier stamped on the run's `RunStart` and `Span`
    /// events, threading them to the submitting job (the serve layer
    /// mints one per job). `None` derives a deterministic local ID from
    /// the system name and seed.
    pub trace_id: Option<String>,
}

impl std::fmt::Debug for SynthControl<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SynthControl")
            .field("stop", &self.stop)
            .field("checkpoint", &self.checkpoint)
            .field("resume", &self.resume.as_ref().map(|c| c.generation))
            .field("sink", &self.sink.map(|s| s.enabled()))
            .field("trace_id", &self.trace_id)
            .finish()
    }
}

/// Multi-mode mapping as a [`GaProblem`].
#[derive(Debug)]
struct MappingProblem<'a> {
    layout: &'a GenomeLayout,
    evaluator: &'a Evaluator<'a>,
    system: &'a System,
    config: &'a SynthesisConfig,
    /// Cumulative telemetry counters (interior mutability because
    /// [`GaProblem::cost`] takes `&self`). [`CounterSet::rejected`]
    /// doubles as the rejected-evaluation count of the run.
    counters: CounterSet,
    /// Genome-keyed cost memo (`None` when `cache_capacity` is 0). Only
    /// the driver thread touches it: batches probe it serially before,
    /// and fill it serially after, the parallel pricing stage, so its
    /// contents are independent of the thread count.
    cache: Option<RefCell<EvalCache>>,
    /// Resolved worker-thread count for batch pricing.
    threads: usize,
}

/// Prices one genome with full fault isolation: injected faults, panics,
/// scheduling errors and non-finite fitness all reject the candidate
/// with [`REJECTED_COST`]. A free function (rather than a method) so
/// parallel workers can run it against their own evaluator and counter
/// set without sharing the `!Sync` [`MappingProblem`].
fn price_genome(
    layout: &GenomeLayout,
    config: &SynthesisConfig,
    evaluator: &Evaluator<'_>,
    counters: &CounterSet,
    genome: &[Gene],
) -> f64 {
    let attempt = || -> Option<f64> {
        if let Some(fault) = &config.fault_injection {
            match fault.roll(genome) {
                Some(InjectedFault::Panic) => panic!("injected evaluator panic"),
                Some(InjectedFault::Nan) => return Some(f64::NAN),
                Some(InjectedFault::Err) => return None,
                None => {}
            }
        }
        let mapping = layout.decode(genome);
        let dvs = config.dvs.as_ref().map(|d| d.eval);
        evaluator.evaluate(mapping, dvs.as_ref()).ok().map(|s| {
            counters.note_violations(
                s.total_lateness.value() > 1e-12,
                !s.area_overruns.is_empty(),
                s.transitions.iter().any(|t| !t.is_feasible()),
            );
            s.fitness
        })
    };
    match catch_unwind(AssertUnwindSafe(attempt)) {
        Ok(Some(fitness)) if fitness.is_finite() => fitness,
        _ => {
            counters.add_rejected();
            REJECTED_COST
        }
    }
}

impl MappingProblem<'_> {
    /// Current counters, merged with the evaluator's deterministic DVS
    /// iteration count. Captured into checkpoints and generation events.
    fn counters_snapshot(&self) -> Counters {
        let mut counters = self.counters.snapshot();
        counters.dvs_iterations += self.evaluator.dvs_iterations();
        // Like `dvs_iterations`, the live cache counts evictions since
        // this process started; a resume restores the checkpointed
        // cumulative total into the counter set's base, so the sum stays
        // cumulative across interruptions.
        counters.cache_evictions += self.cache.as_ref().map_or(0, |c| c.borrow().evictions());
        counters
    }

    /// The evaluation cache's current contents, for checkpointing.
    fn cache_state(&self) -> CacheState {
        self.cache.as_ref().map(|c| c.borrow().state()).unwrap_or_default()
    }
}

impl GaProblem for MappingProblem<'_> {
    type Gene = Gene;

    fn genome_len(&self) -> usize {
        self.layout.len()
    }

    fn random_gene(&self, locus: usize, rng: &mut dyn RngCore) -> Gene {
        rng.gen_range(0..self.layout.candidates(locus).len()) as Gene
    }

    /// Panic-isolated cost: errors, panics and non-finite fitness all
    /// reject the individual with [`REJECTED_COST`] instead of taking the
    /// whole run down. Bypasses the cache — the batched path is the hot
    /// one, and keeping single pricing memo-free keeps it trivially
    /// comparable in tests.
    fn cost(&self, genome: &[Gene]) -> f64 {
        price_genome(self.layout, self.config, self.evaluator, &self.counters, genome)
    }

    /// Batched pricing: the GA hands over each generation's unevaluated
    /// genomes at once. The batch is served in four strictly ordered
    /// stages — (1) serial cache probe in batch order, (2) dedup of
    /// identical genomes among the misses, (3) pricing of the unique
    /// misses, parallel across `threads` workers, (4) serial cache fill
    /// in batch order. Fitness is a pure function of the genome, so
    /// stage 3's scheduling cannot influence any returned cost, and
    /// stages 1, 2 and 4 never depend on the thread count: trajectories,
    /// counters and cache contents are bit-identical for any `threads`.
    fn cost_batch(&self, genomes: &[Vec<Gene>]) -> Vec<f64> {
        let mut costs = vec![REJECTED_COST; genomes.len()];
        // Stage 1: probe the cache, serially, in batch order.
        let mut misses: Vec<usize> = Vec::new();
        for (i, genome) in genomes.iter().enumerate() {
            let hit = self.cache.as_ref().and_then(|c| c.borrow_mut().get(genome));
            match hit {
                Some(cost) => {
                    costs[i] = cost;
                    self.counters.add_cache_hits(1);
                }
                None => {
                    self.counters.add_cache_misses(1);
                    misses.push(i);
                }
            }
        }
        // Stage 2: identical genomes within the batch are priced once;
        // `slot_of[k]` maps the k-th miss to its unique-genome slot.
        let mut unique: Vec<usize> = Vec::new();
        let mut slot_of: Vec<usize> = Vec::with_capacity(misses.len());
        let mut first: HashMap<&[Gene], usize> = HashMap::new();
        for &i in &misses {
            let next = unique.len();
            let slot = *first.entry(genomes[i].as_slice()).or_insert(next);
            if slot == next {
                unique.push(i);
            }
            slot_of.push(slot);
        }
        self.counters.add_evaluated(unique.len() as u64);
        // Stage 3: price the unique misses. Workers get their own
        // evaluator and counter set; the folds below are commutative
        // sums, so totals are independent of worker scheduling.
        let mut unique_costs = vec![REJECTED_COST; unique.len()];
        // Under the loom model checker the scoped parallel arm is
        // compiled out (loom has no scoped threads); batches price
        // serially, which the determinism contract already permits.
        #[cfg(loom)]
        let serial = true;
        #[cfg(not(loom))]
        let serial = self.threads <= 1 || unique.len() <= 1;
        if serial {
            for (slot, &i) in unique.iter().enumerate() {
                unique_costs[slot] =
                    price_genome(self.layout, self.config, self.evaluator, &self.counters, &genomes[i]);
            }
        }
        #[cfg(not(loom))]
        if !serial {
            let workers = self.threads.min(unique.len());
            let chunk = unique.len().div_ceil(workers);
            let (layout, system, config) = (self.layout, self.system, self.config);
            let trace = self.evaluator.phase_timing_enabled();
            momsynth_sync::thread::scope(|scope| {
                let handles: Vec<_> = unique
                    .chunks(chunk)
                    .zip(unique_costs.chunks_mut(chunk))
                    .map(|(ids, out)| {
                        scope.spawn(move || {
                            let mut evaluator = Evaluator::new(system, config);
                            if trace {
                                evaluator.enable_phase_timing();
                            }
                            let counters = CounterSet::new();
                            for (&i, slot) in ids.iter().zip(out.iter_mut()) {
                                *slot =
                                    price_genome(layout, config, &evaluator, &counters, &genomes[i]);
                            }
                            (counters.snapshot(), evaluator.dvs_iterations(), evaluator.phase_timings())
                        })
                    })
                    .collect();
                for handle in handles {
                    let (counters, dvs, timings) =
                        handle.join().unwrap_or_else(|payload| std::panic::resume_unwind(payload));
                    self.counters.merge(&counters);
                    self.evaluator.add_dvs_iterations(dvs);
                    self.evaluator.absorb_phase_timings(&timings);
                }
            });
        }
        // Stage 4: scatter the results and fill the cache, serially, in
        // batch order.
        for (&i, &slot) in misses.iter().zip(&slot_of) {
            costs[i] = unique_costs[slot];
        }
        if let Some(cache) = &self.cache {
            let mut cache = cache.borrow_mut();
            for &i in &misses {
                cache.insert(&genomes[i], costs[i]);
            }
        }
        costs
    }

    fn improve(&self, genome: &mut [Gene], rng: &mut dyn RngCore) {
        let (op, changed) = improve_random(self.system, self.layout, genome, rng);
        self.counters.note_improve(op.index(), changed);
    }

    fn counters(&self) -> Counters {
        self.counters_snapshot()
    }

    /// Seed the population with the trivial all-software mapping (every
    /// task on its lowest-index software candidate). This keeps scarce
    /// hardware area from being squandered by random rare-mode genes and
    /// gives selection a clean baseline to add hardware onto — a small,
    /// documented deviation from the paper's purely random initialisation.
    fn seeds(&self) -> Vec<Vec<Gene>> {
        let genome = (0..self.layout.len())
            .map(|l| {
                self.layout
                    .candidates(l)
                    .iter()
                    .position(|&pe| self.system.arch().pe(pe).kind().is_software())
                    .unwrap_or(0) as Gene
            })
            .collect();
        vec![genome]
    }
}

/// Runs the paper's co-synthesis on one system.
#[derive(Debug)]
pub struct Synthesizer<'a> {
    system: &'a System,
    config: SynthesisConfig,
}

impl<'a> Synthesizer<'a> {
    /// Creates a synthesizer for `system` under `config`.
    pub fn new(system: &'a System, config: SynthesisConfig) -> Self {
        Self { system, config }
    }

    /// The configuration this synthesizer runs with.
    pub fn config(&self) -> &SynthesisConfig {
        &self.config
    }

    /// Runs the GA and returns the refined best implementation.
    ///
    /// # Errors
    ///
    /// Returns [`SynthesisError::Unschedulable`] when neither the winning
    /// genome nor the all-software fallback mapping can be scheduled —
    /// possible only when the architecture cannot route *any* complete
    /// mapping (a specification error) or the evaluator fails
    /// persistently.
    pub fn run(&self) -> Result<SynthesisResult, SynthesisError> {
        self.run_controlled(SynthControl::default())
    }

    /// Like [`Synthesizer::run`], with cooperative cancellation,
    /// checkpointing and resume.
    ///
    /// When the run is interrupted (stop flag, wall-clock or evaluation
    /// budget) the best-so-far solution is still refined and returned;
    /// [`SynthesisResult::stop_reason`] records why the run ended. On
    /// resume, wall-clock budgets restart with this process.
    ///
    /// # Errors
    ///
    /// Returns [`SynthesisError::Checkpoint`] if the resume checkpoint
    /// does not match this system/seed, and
    /// [`SynthesisError::Unschedulable`] as for [`Synthesizer::run`].
    pub fn run_controlled(
        &self,
        control: SynthControl<'_>,
    ) -> Result<SynthesisResult, SynthesisError> {
        let start = Instant::now();
        let sink = control.sink;
        let trace = sink.is_some_and(momsynth_telemetry::Sink::enabled);
        // Static feasibility pass: fail fast on proven infeasibility, and
        // (optionally) shrink the genome domains to the candidates the
        // analyzer could not rule out. Pruning only removes provably
        // infeasible genes, so it never changes the reachable optimum.
        let analysis = analyze_system(self.system);
        if analysis.has_errors() {
            return Err(SynthesisError::Infeasible(Box::new(analysis)));
        }
        let power_lower_bound = analysis.power_lower_bound();
        let pruned_domain_ratio = if self.config.prune_domains {
            analysis.pruned_domain_ratio()
        } else {
            0.0
        };
        let layout = if self.config.prune_domains {
            GenomeLayout::with_domains(self.system, analysis.capable_pes())
        } else {
            GenomeLayout::new(self.system)
        };
        let mut evaluator = Evaluator::new(self.system, &self.config);
        if trace {
            evaluator.enable_phase_timing();
        }
        let mut ga_config: GaConfig = self.config.ga;
        if !self.config.improvement_operators {
            ga_config.improvement_rate = 0.0;
        }
        // Resolve the trace ID once: an externally minted one (a job
        // server threading submission → run → journal) wins; otherwise a
        // deterministic local ID keeps standalone traces self-labelled.
        let trace_id = control
            .trace_id
            .clone()
            .unwrap_or_else(|| format!("synth-{}-{}", self.system.name(), ga_config.seed));
        let problem = MappingProblem {
            layout: &layout,
            evaluator: &evaluator,
            system: self.system,
            config: &self.config,
            counters: CounterSet::new(),
            cache: (self.config.cache_capacity > 0)
                .then(|| RefCell::new(EvalCache::new(self.config.cache_capacity))),
            threads: self.config.effective_threads(),
        };

        let resume = match control.resume {
            Some(checkpoint) => {
                checkpoint.validate(self.system, &layout, ga_config.seed)?;
                // Restore the cumulative counters and the evaluation
                // cache so the resumed trace — including the hit/miss
                // sequence — continues exactly where the original left
                // off.
                problem.counters.restore(&checkpoint.counters);
                if let Some(cache) = &problem.cache {
                    cache.borrow_mut().restore(&checkpoint.cache);
                }
                Some(checkpoint.into_snapshot())
            }
            None => None,
        };
        if trace {
            if let Some(sink) = sink {
                sink.record(&Event::RunStart(RunStart {
                    system: self.system.name().to_owned(),
                    seed: ga_config.seed,
                    probability_aware: self.config.probability_aware,
                    dvs: self.config.dvs.is_some(),
                    modes: self.system.omsm().mode_count() as u64,
                    genome_len: layout.len() as u64,
                    resumed_generation: resume.as_ref().map(|s| s.generation as u64),
                    power_lower_bound_mw: power_lower_bound.as_milli(),
                    pruned_domain_ratio,
                    trace_id: trace_id.clone(),
                }));
            }
        }
        type GenerationHook<'h> = Box<dyn FnMut(&GaSnapshot<Gene>) + 'h>;
        let problem_ref = &problem;
        let verify_generations = self.config.verify_each_generation;
        let checkpoint_spec = control
            .checkpoint
            .as_ref()
            .map(|spec| (spec.every.max(1), spec.path.clone(), spec.every_seconds));
        // The freshest capture and the generation last written to disk,
        // kept outside the hook so an interrupted run (cancellation,
        // budget, shutdown) can flush one final checkpoint even when the
        // generation cadence left the file stale.
        let latest_checkpoint: RefCell<Option<Checkpoint>> = RefCell::new(None);
        let last_saved_generation = Cell::new(None::<usize>);
        let last_save_time = Cell::new(Instant::now());
        // The oracle re-derives solutions through a dedicated evaluator so
        // its DVS passes never leak into the run's deterministic counters
        // or phase timings (checkpoint/resume trace equivalence).
        let verify_evaluator = Evaluator::new(self.system, &self.config);
        let on_generation: Option<GenerationHook<'_>> = if checkpoint_spec.is_some()
            || verify_generations
        {
            let (system, layout, seed) = (self.system, &layout, ga_config.seed);
            let evaluator = &verify_evaluator;
            let dvs_eval = self.config.dvs.as_ref().map(|d| d.eval);
            let latest_ref = &latest_checkpoint;
            let saved_gen_ref = &last_saved_generation;
            let save_time_ref = &last_save_time;
            Some(Box::new(move |snapshot: &GaSnapshot<Gene>| {
                if let Some((every, path, every_seconds)) = &checkpoint_spec {
                    let cp = Checkpoint::capture(
                        system,
                        layout,
                        seed,
                        snapshot,
                        problem_ref.counters_snapshot(),
                        problem_ref.cache_state(),
                    );
                    let due = snapshot.generation.is_multiple_of(*every)
                        || every_seconds.is_some_and(|s| {
                            save_time_ref.get().elapsed().as_secs_f64() >= s
                        });
                    if due {
                        if let Err(e) = cp.save(path) {
                            // Checkpointing is best-effort: losing a
                            // checkpoint must not lose the run.
                            let message = format!("checkpoint not saved: {e}");
                            match sink {
                                Some(sink) => sink.record(&Event::Warning(Warning { message })),
                                None => eprintln!("warning: {message}"),
                            }
                        } else {
                            saved_gen_ref.set(Some(cp.generation));
                            save_time_ref.set(Instant::now());
                        }
                    }
                    *latest_ref.borrow_mut() = Some(cp);
                }
                if verify_generations {
                    // Invariant mode: re-derive the generation's best
                    // individual and hold it against the independent
                    // checker. An unschedulable best (every candidate
                    // rejected) has nothing to verify.
                    let solution = catch_unwind(AssertUnwindSafe(|| {
                        evaluator.evaluate(layout.decode(&snapshot.best.0), dvs_eval.as_ref())
                    }))
                    .ok()
                    .and_then(Result::ok);
                    if let Some(solution) = solution {
                        if let Some(report) = crate::verify::invariant_breach(system, &solution) {
                            report_breach(
                                sink,
                                &format!(
                                    "generation {}: best individual failed verification: {report}",
                                    snapshot.generation
                                ),
                            );
                        }
                    }
                }
            }) as GenerationHook<'_>)
        } else {
            None
        };

        let outcome = momsynth_ga::run_controlled(
            &problem,
            &ga_config,
            RunControl { stop: control.stop, resume, on_generation, sink },
        );

        // Graceful-shutdown guarantee: an interrupted run flushes its
        // freshest completed generation to the checkpoint file, so a
        // restart resumes from exactly where the run stopped even when
        // the periodic cadence (`every` > 1) left the file stale. The
        // capture was taken inside the generation hook, so its counters
        // and cache exclude any discarded partial generation.
        if outcome.stop_reason.is_interrupted() {
            if let Some(spec) = &control.checkpoint {
                if let Some(cp) = latest_checkpoint.borrow_mut().take() {
                    if last_saved_generation.get() != Some(cp.generation) {
                        if let Err(e) = cp.save(&spec.path) {
                            let message = format!("final checkpoint not saved: {e}");
                            match sink {
                                Some(sink) => sink.record(&Event::Warning(Warning { message })),
                                None => eprintln!("warning: {message}"),
                            }
                        }
                    }
                }
            }
        }

        // Memetic polish: single-gene first-improvement sweeps remove the
        // drift artefacts evolution under skewed weights leaves behind.
        // Skipped when the GA was already interrupted; otherwise it runs
        // under the remaining budget.
        let mut genes = outcome.best.clone();
        let mut evaluations = outcome.evaluations;
        let mut stop_reason = outcome.stop_reason;
        let deadline = ga_config.max_seconds.map(|s| start + Duration::from_secs_f64(s));
        if !stop_reason.is_interrupted()
            && self.config.local_search != (LocalSearchOptions { max_passes: 0 })
        {
            let dvs_eval = self.config.dvs.as_ref().map(|d| d.eval);
            let polish_control = PolishControl {
                stop: control.stop,
                deadline,
                max_evaluations: ga_config
                    .max_evaluations
                    .map(|m| m.saturating_sub(evaluations)),
            };
            let stats = polish(
                &evaluator,
                &layout,
                &mut genes,
                dvs_eval.as_ref(),
                &self.config.local_search,
                ga_config.seed,
                &polish_control,
            );
            evaluations += stats.evaluations;
            if stats.interrupted {
                // Acquire pairs with the Release store in the raiser
                // (serve's stop path, the CLI's Ctrl-C handler): seeing
                // the flag must also show why it was raised.
                stop_reason = if control.stop.is_some_and(|f| f.load(Ordering::Acquire)) {
                    StopReason::Cancelled
                } else if deadline.is_some_and(|d| Instant::now() >= d) {
                    StopReason::WallClock
                } else {
                    StopReason::EvaluationBudget
                };
            }
        }

        let refine = self.config.dvs.as_ref().map(|d| d.refine);
        let best = match self.evaluate_final(&evaluator, &layout, &genes, refine.as_ref()) {
            Ok(solution) => solution,
            Err(best_err) => {
                // The winner cannot be scheduled (should only happen when
                // every candidate was rejected): degrade to the trivial
                // all-software seed mapping before giving up.
                let fallback = problem.seeds().swap_remove(0);
                match self.evaluate_final(&evaluator, &layout, &fallback, refine.as_ref()) {
                    Ok(solution) => solution,
                    Err(fallback_err) => {
                        return Err(SynthesisError::Unschedulable {
                            best: best_err,
                            fallback: fallback_err,
                        })
                    }
                }
            }
        };

        if self.config.verify_each_generation {
            if let Some(report) = crate::verify::invariant_breach(self.system, &best) {
                report_breach(sink, &format!("final solution failed verification: {report}"));
            }
        }

        let counters = problem.counters_snapshot();
        let result = SynthesisResult {
            best,
            generations: outcome.generations,
            evaluations,
            rejected: counters.rejected as usize,
            history: outcome.history,
            stop_reason,
            wall_time: start.elapsed(),
            counters,
            phase_timings: evaluator.phase_timings(),
            power_lower_bound,
            pruned_domain_ratio,
        };
        if let Some(sink) = sink {
            if sink.enabled() {
                for timing in &result.phase_timings {
                    sink.record(&Event::Phase(timing.clone()));
                }
                // Re-emit the same timings as trace spans under the
                // run-wide trace ID: collapsed-stack paths nest the
                // depth-1 phases under the whole-evaluation span, and a
                // root span carries the run's total wall time so
                // `momsynth profile` can attribute non-evaluation time
                // (selection, checkpointing, polish) as root self-time.
                sink.record(&Event::Span(SpanEvent {
                    trace_id: trace_id.clone(),
                    path: "run".into(),
                    nanos: result.wall_time.as_nanos() as u64,
                    spans: 1,
                }));
                for timing in &result.phase_timings {
                    let path = if timing.depth == 0 {
                        format!("run;{}", timing.phase.name())
                    } else {
                        format!("run;fitness_eval;{}", timing.phase.name())
                    };
                    sink.record(&Event::Span(SpanEvent {
                        trace_id: trace_id.clone(),
                        path,
                        nanos: timing.nanos,
                        spans: timing.spans,
                    }));
                }
                sink.record(&Event::Summary(result.summary(self.system, &self.config)));
            }
            sink.flush();
        }
        Ok(result)
    }

    /// Final (fine-DVS) evaluation with the same panic isolation and
    /// fault injection as candidate pricing, reporting failures as text.
    fn evaluate_final(
        &self,
        evaluator: &Evaluator<'_>,
        layout: &GenomeLayout,
        genes: &[Gene],
        refine: Option<&DvsOptions>,
    ) -> Result<Solution, String> {
        if let Some(fault) = &self.config.fault_injection {
            match fault.roll(genes) {
                Some(InjectedFault::Panic) => return Err("injected evaluator panic".into()),
                Some(InjectedFault::Nan) => return Err("injected NaN fitness".into()),
                Some(InjectedFault::Err) => return Err("injected scheduling error".into()),
                None => {}
            }
        }
        match catch_unwind(AssertUnwindSafe(|| {
            evaluator.evaluate(layout.decode(genes), refine)
        })) {
            Ok(Ok(solution)) if solution.fitness.is_finite() => Ok(solution),
            Ok(Ok(_)) => Err("non-finite fitness".into()),
            Ok(Err(e)) => Err(e.to_string()),
            Err(payload) => Err(panic_message(&payload)),
        }
    }
}

/// Reports a verification-invariant breach: fatal in debug builds (so
/// tests fail loudly), a telemetry warning in release builds (so a
/// production run degrades instead of dying on a checker disagreement).
fn report_breach(sink: Option<&dyn Sink>, message: &str) {
    if cfg!(debug_assertions) {
        panic!("{message}");
    }
    match sink {
        Some(sink) => sink.record(&Event::Warning(Warning { message: message.to_owned() })),
        None => eprintln!("warning: {message}"),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("evaluator panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("evaluator panicked: {s}")
    } else {
        "evaluator panicked".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FaultInjection;
    use momsynth_model::ids::{ModeId, PeId};
    use momsynth_model::units::{Cells, Seconds, Volts, Watts};
    use momsynth_model::{
        ArchitectureBuilder, Cl, DvsCapability, Implementation, OmsmBuilder, Pe, PeKind,
        TaskGraphBuilder, TechLibraryBuilder,
    };

    /// A two-mode system with skewed probabilities where the optimal
    /// probability-aware mapping is known by construction: the common mode
    /// should run entirely in software so that ASIC and bus shut down.
    fn skewed_system() -> System {
        let mut tech = TechLibraryBuilder::new();
        let ta = tech.add_type("A");
        let tb = tech.add_type("B");
        let mut arch = ArchitectureBuilder::new();
        let cpu = arch.add_pe(Pe::software("cpu", PeKind::Gpp, Watts::from_milli(0.1)));
        let hw = arch.add_pe(Pe::hardware(
            "hw",
            PeKind::Asic,
            Cells::new(600),
            Watts::from_milli(4.0),
        ));
        arch.add_cl(Cl::bus(
            "bus",
            vec![cpu, hw],
            Seconds::from_micros(1.0),
            Watts::from_milli(1.0),
            Watts::from_milli(0.5),
        ))
        .unwrap();
        for ty in [ta, tb] {
            tech.set_impl(
                ty,
                cpu,
                Implementation::software(Seconds::from_millis(5.0), Watts::from_milli(30.0)),
            );
            tech.set_impl(
                ty,
                hw,
                Implementation::hardware(
                    Seconds::from_millis(0.5),
                    Watts::from_milli(1.0),
                    Cells::new(240),
                ),
            );
        }
        let mk = |name: &str, ty| {
            let mut g = TaskGraphBuilder::new(name, Seconds::from_millis(100.0));
            let x = g.add_task("x", ty);
            let y = g.add_task("y", ty);
            g.add_comm(x, y, 10.0).unwrap();
            g.build().unwrap()
        };
        let mut omsm = OmsmBuilder::new();
        let m0 = omsm.add_mode("rare", 0.05, mk("rare", ta));
        let m1 = omsm.add_mode("common", 0.95, mk("common", tb));
        omsm.add_transition(m0, m1, Seconds::from_millis(10.0)).unwrap();
        omsm.add_transition(m1, m0, Seconds::from_millis(10.0)).unwrap();
        System::new("skewed", omsm.build().unwrap(), arch.build().unwrap(), tech.build())
            .unwrap()
    }

    /// Every edge of this chain has *some* routable candidate pair, so
    /// `System::new` accepts it, but no complete mapping is routable: `x`
    /// lives on P0, `z` on P3, and `y` must sit on a bus with both — yet
    /// `{P0, P1}` and `{P2, P3}` are disjoint buses.
    fn unroutable_system() -> System {
        let mut tech = TechLibraryBuilder::new();
        let tx = tech.add_type("X");
        let ty_ = tech.add_type("Y");
        let tz = tech.add_type("Z");
        let mut arch = ArchitectureBuilder::new();
        let pes: Vec<_> = (0..4)
            .map(|i| {
                arch.add_pe(Pe::software(
                    format!("cpu{i}"),
                    PeKind::Gpp,
                    Watts::from_milli(0.1),
                ))
            })
            .collect();
        arch.add_cl(Cl::bus(
            "bus-a",
            vec![pes[0], pes[1]],
            Seconds::from_micros(1.0),
            Watts::from_milli(1.0),
            Watts::from_milli(0.5),
        ))
        .unwrap();
        arch.add_cl(Cl::bus(
            "bus-b",
            vec![pes[2], pes[3]],
            Seconds::from_micros(1.0),
            Watts::from_milli(1.0),
            Watts::from_milli(0.5),
        ))
        .unwrap();
        let sw = |ms| Implementation::software(Seconds::from_millis(ms), Watts::from_milli(20.0));
        tech.set_impl(tx, pes[0], sw(1.0));
        tech.set_impl(ty_, pes[1], sw(1.0));
        tech.set_impl(ty_, pes[2], sw(1.0));
        tech.set_impl(tz, pes[3], sw(1.0));
        let mut g = TaskGraphBuilder::new("m", Seconds::from_millis(100.0));
        let x = g.add_task("x", tx);
        let y = g.add_task("y", ty_);
        let z = g.add_task("z", tz);
        g.add_comm(x, y, 1.0).unwrap();
        g.add_comm(y, z, 1.0).unwrap();
        let mut omsm = OmsmBuilder::new();
        omsm.add_mode("m", 1.0, g.build().unwrap());
        System::new("unroutable", omsm.build().unwrap(), arch.build().unwrap(), tech.build())
            .unwrap()
    }

    #[test]
    fn synthesis_finds_feasible_low_power_solution() {
        let system = skewed_system();
        let result = Synthesizer::new(&system, SynthesisConfig::fast_preset(1)).run().unwrap();
        assert!(result.best.is_feasible(), "best must be feasible");
        assert!(result.generations > 0);
        assert!(result.evaluations > 0);
        assert_eq!(result.rejected, 0, "clean runs reject nothing");
        assert!(!result.stop_reason.is_interrupted());
        // The common mode must end up pure software so the ASIC and bus
        // power down during 95% of operation.
        let active = result.best.mapping.active_pes(ModeId::new(1));
        assert_eq!(active, vec![PeId::new(0)], "common mode should shut the ASIC down");
    }

    #[test]
    fn probability_aware_beats_neglecting_on_skewed_systems() {
        let system = skewed_system();
        // Average over a few seeds to smooth GA noise.
        let runs = 3;
        let avg = |aware: bool| -> f64 {
            (0..runs)
                .map(|seed| {
                    let mut cfg = SynthesisConfig::fast_preset(seed);
                    cfg.probability_aware = aware;
                    Synthesizer::new(&system, cfg)
                        .run()
                        .unwrap()
                        .best
                        .power
                        .average
                        .value()
                })
                .sum::<f64>()
                / runs as f64
        };
        let aware = avg(true);
        let neglect = avg(false);
        assert!(
            aware <= neglect * 1.001,
            "probability-aware {aware} should not lose to neglecting {neglect}"
        );
    }

    #[test]
    fn synthesis_is_deterministic_per_seed() {
        let system = skewed_system();
        let cfg = SynthesisConfig::fast_preset(3);
        let a = Synthesizer::new(&system, cfg.clone()).run().unwrap();
        let b = Synthesizer::new(&system, cfg).run().unwrap();
        assert_eq!(a.best.mapping, b.best.mapping);
        assert_eq!(a.best.fitness, b.best.fitness);
        assert_eq!(a.history, b.history);
        assert_eq!(a.stop_reason, b.stop_reason);
    }

    #[test]
    fn cache_and_threads_leave_the_trajectory_bit_identical() {
        let system = skewed_system();
        let base = SynthesisConfig::fast_preset(7);
        let run = |threads: usize, cache_capacity: usize| {
            let mut cfg = base.clone();
            cfg.threads = threads;
            cfg.cache_capacity = cache_capacity;
            Synthesizer::new(&system, cfg).run().unwrap()
        };
        let plain = run(1, 0);
        let cached = run(1, 4096);
        let threaded = run(4, 4096);
        for other in [&cached, &threaded] {
            assert_eq!(plain.history, other.history);
            assert_eq!(plain.best.mapping, other.best.mapping);
            assert_eq!(plain.best.fitness, other.best.fitness);
            assert_eq!(plain.evaluations, other.evaluations);
            assert_eq!(plain.stop_reason, other.stop_reason);
        }
        // The GA revisits genomes, so the memo must actually serve hits,
        // and the hit/miss/evaluated split must not depend on threads.
        assert!(cached.counters.cache_hits > 0, "{:?}", cached.counters);
        assert_eq!(cached.counters, threaded.counters);
        assert!(cached.counters.evaluated <= cached.counters.cache_misses);
        // Without a cache nothing is looked up, but pricing still counts.
        assert_eq!(plain.counters.cache_hits, 0);
        assert!(plain.counters.evaluated > 0);
        assert!(cached.summary(&system, &base).cache_hit_rate > 0.0);
    }

    #[test]
    fn dvs_synthesis_reduces_power_further() {
        let mut tech = TechLibraryBuilder::new();
        let ta = tech.add_type("A");
        let mut arch = ArchitectureBuilder::new();
        let cpu = arch.add_pe(
            Pe::software("cpu", PeKind::Gpp, Watts::from_milli(0.1)).with_dvs(
                DvsCapability::new(
                    Volts::new(3.3),
                    Volts::new(0.8),
                    vec![Volts::new(1.2), Volts::new(2.1), Volts::new(3.3)],
                ),
            ),
        );
        tech.set_impl(
            ta,
            cpu,
            Implementation::software(Seconds::from_millis(10.0), Watts::from_milli(100.0)),
        );
        let mut g = TaskGraphBuilder::new("m", Seconds::from_millis(100.0));
        g.add_task("x", ta);
        g.add_task("y", ta);
        let mut omsm = OmsmBuilder::new();
        omsm.add_mode("m", 1.0, g.build().unwrap());
        let system =
            System::new("s", omsm.build().unwrap(), arch.build().unwrap(), tech.build()).unwrap();

        let fixed =
            Synthesizer::new(&system, SynthesisConfig::fast_preset(0)).run().unwrap();
        let dvs = Synthesizer::new(&system, SynthesisConfig::fast_preset(0).with_dvs())
            .run()
            .unwrap();
        assert!(
            dvs.best.power.average < fixed.best.power.average,
            "DVS {} must beat fixed voltage {}",
            dvs.best.power.average,
            fixed.best.power.average
        );
        assert!(dvs.best.is_feasible());
    }

    #[test]
    fn unroutable_system_yields_typed_error() {
        let system = unroutable_system();
        let err = Synthesizer::new(&system, SynthesisConfig::fast_preset(0))
            .run()
            .expect_err("no complete mapping is routable");
        match err {
            SynthesisError::Unschedulable { best, fallback } => {
                assert!(!best.is_empty());
                assert!(!fallback.is_empty());
            }
            other => panic!("expected Unschedulable, got {other:?}"),
        }
    }

    #[test]
    fn injected_errors_are_counted_not_fatal() {
        let system = skewed_system();
        let mut cfg = SynthesisConfig::fast_preset(2);
        // Err/NaN faults only: panic faults are exercised in the chaos
        // integration tests, where the panic hook is silenced.
        cfg.fault_injection =
            Some(FaultInjection { panic_rate: 0.0, nan_rate: 0.1, err_rate: 0.1, seed: 11 });
        let result = Synthesizer::new(&system, cfg).run().unwrap();
        assert!(result.rejected > 0, "some candidates must have drawn a fault");
        assert!(result.best.fitness.is_finite());
        assert!(result.best.is_feasible());
    }

    #[test]
    fn evaluation_budget_is_respected_and_tagged() {
        let system = skewed_system();
        let mut cfg = SynthesisConfig::fast_preset(4);
        cfg.ga.max_evaluations = Some(25);
        let result = Synthesizer::new(&system, cfg).run().unwrap();
        assert_eq!(result.stop_reason, StopReason::EvaluationBudget);
        // One offspring may be mid-flight when the budget trips, and the
        // final refinement is not a candidate evaluation.
        assert!(result.evaluations <= 26, "{}", result.evaluations);
        assert!(result.best.fitness.is_finite());
    }

    #[test]
    fn preset_stop_flag_cancels_immediately_with_well_formed_result() {
        let system = skewed_system();
        let stop = AtomicBool::new(true);
        let result = Synthesizer::new(&system, SynthesisConfig::fast_preset(5))
            .run_controlled(SynthControl { stop: Some(&stop), ..SynthControl::default() })
            .unwrap();
        assert_eq!(result.stop_reason, StopReason::Cancelled);
        assert!(!result.history.is_empty());
        assert!(result.best.fitness.is_finite());
    }

    #[test]
    fn resume_requires_matching_checkpoint() {
        let system = skewed_system();
        let layout = GenomeLayout::new(&system);
        let cfg = SynthesisConfig::fast_preset(6);
        let snapshot = GaSnapshot {
            generation: 0,
            evaluations: 1,
            stagnation: 0,
            low_diversity_generations: 0,
            history: vec![1.0],
            best: (vec![0; layout.len()], 1.0),
            population: vec![(vec![0; layout.len()], 1.0)],
        };
        // Captured with a different seed than the run uses.
        let checkpoint = Checkpoint::capture(
            &system,
            &layout,
            999,
            &snapshot,
            Counters::default(),
            crate::cache::CacheState::default(),
        );
        let err = Synthesizer::new(&system, cfg)
            .run_controlled(SynthControl { resume: Some(checkpoint), ..SynthControl::default() })
            .expect_err("seed mismatch must be rejected");
        assert!(matches!(
            err,
            SynthesisError::Checkpoint(CheckpointError::Mismatch { .. })
        ));
    }
}
