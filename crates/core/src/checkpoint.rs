//! Versioned JSON checkpoints of a running synthesis.
//!
//! A [`Checkpoint`] freezes the GA engine state between generations —
//! seed, generation and evaluation counters, cost history, best-so-far and
//! the full cost-annotated population — together with a header identifying
//! the system it belongs to. Because the engine re-seeds its RNG per
//! generation, resuming from a checkpoint replays exactly the generations
//! an uninterrupted run would have produced (see
//! [`momsynth_ga::run_controlled`]).
//!
//! Files are plain JSON with a `version` field; [`Checkpoint::load`]
//! rejects unknown versions, and [`Checkpoint::validate`] cross-checks the
//! header against the system a resume targets (name, mode/task counts,
//! genome length, GA seed) so a checkpoint can never silently resume onto
//! the wrong problem. Writes go through an fsync'd temporary sibling file
//! and a rename, so an interrupted write never destroys the previous
//! checkpoint, and the previous good file is kept as a `.bak` sibling:
//! [`Checkpoint::load_resilient`] falls back to it when the primary is
//! torn or corrupt, reporting the recovery instead of aborting.

use std::fmt;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use momsynth_ga::GaSnapshot;
use momsynth_model::System;
use momsynth_telemetry::Counters;

use crate::cache::CacheState;
use crate::genome::{Gene, GenomeLayout};

/// The checkpoint format version this build reads and writes.
///
/// Version 2 added the cumulative telemetry [`Counters`], so resumed
/// runs produce continuous traces. Version 3 added the evaluation
/// [`CacheState`], so a resumed run replays the exact hit/miss sequence
/// (and therefore the exact counters) of an uninterrupted one.
pub const CHECKPOINT_VERSION: u32 = 3;

/// A failure while saving, loading or validating a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Reading or writing the checkpoint file failed.
    Io {
        /// The offending path.
        path: PathBuf,
        /// The underlying I/O error message.
        reason: String,
    },
    /// The file is not a valid checkpoint document.
    Parse {
        /// The offending path.
        path: PathBuf,
        /// The underlying parse error message.
        reason: String,
    },
    /// The file uses a format version this build does not understand.
    Version {
        /// The version found in the file.
        found: u32,
        /// The version this build supports.
        supported: u32,
    },
    /// The checkpoint does not match the system or configuration it is
    /// being resumed onto.
    Mismatch {
        /// Human-readable description of the disagreement.
        reason: String,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io { path, reason } => {
                write!(f, "checkpoint I/O error on `{}`: {reason}", path.display())
            }
            Self::Parse { path, reason } => {
                write!(f, "cannot parse checkpoint `{}`: {reason}", path.display())
            }
            Self::Version { found, supported } => write!(
                f,
                "checkpoint format version {found} is not supported (this build reads {supported})"
            ),
            Self::Mismatch { reason } => write!(f, "checkpoint does not match: {reason}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// `path` with `suffix` appended to its final component.
fn sibling(path: &Path, suffix: &str) -> PathBuf {
    let mut s = path.as_os_str().to_owned();
    s.push(suffix);
    PathBuf::from(s)
}

/// Frozen GA engine state plus a header tying it to one system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Format version ([`CHECKPOINT_VERSION`]).
    pub version: u32,
    /// Name of the system the run optimises.
    pub system: String,
    /// Mode count of that system.
    pub modes: usize,
    /// Total task count across all modes.
    pub tasks: usize,
    /// Genome length (loci across all modes).
    pub genome_len: usize,
    /// GA seed of the run.
    pub seed: u64,
    /// Generations completed when the checkpoint was taken.
    pub generation: usize,
    /// Cost evaluations spent so far.
    pub evaluations: usize,
    /// Generations without improvement so far.
    pub stagnation: usize,
    /// Consecutive low-diversity generations so far.
    pub low_diversity_generations: usize,
    /// Best cost after each generation so far.
    pub history: Vec<f64>,
    /// Best genome seen so far.
    pub best_genome: Vec<Gene>,
    /// Cost of the best genome.
    pub best_cost: f64,
    /// The cost-sorted population as `(genome, cost)` pairs.
    pub population: Vec<(Vec<Gene>, f64)>,
    /// Cumulative telemetry counters at the time of capture, so a
    /// resumed run emits a trace continuous with the original.
    pub counters: Counters,
    /// Evaluation-cache contents at the time of capture (empty when
    /// caching is disabled), so a resumed run's hit/miss sequence is an
    /// exact tail of the uninterrupted run's.
    pub cache: CacheState,
}

impl Checkpoint {
    /// Freezes an engine snapshot for `system` into a checkpoint.
    pub fn capture(
        system: &System,
        layout: &GenomeLayout,
        seed: u64,
        snapshot: &GaSnapshot<Gene>,
        counters: Counters,
        cache: CacheState,
    ) -> Self {
        Self {
            version: CHECKPOINT_VERSION,
            system: system.name().to_owned(),
            modes: system.omsm().mode_count(),
            tasks: system.omsm().total_task_count(),
            genome_len: layout.len(),
            seed,
            generation: snapshot.generation,
            evaluations: snapshot.evaluations,
            stagnation: snapshot.stagnation,
            low_diversity_generations: snapshot.low_diversity_generations,
            history: snapshot.history.clone(),
            best_genome: snapshot.best.0.clone(),
            best_cost: snapshot.best.1,
            population: snapshot.population.clone(),
            counters,
            cache,
        }
    }

    /// The `.bak` sibling where [`Checkpoint::save`] keeps the previous
    /// good checkpoint.
    pub fn backup_path(path: &Path) -> PathBuf {
        sibling(path, ".bak")
    }

    /// Writes the checkpoint as pretty JSON, durably and atomically:
    /// the temporary sibling is fsync'd before the rename (so the rename
    /// never publishes a file whose contents still sit in the page
    /// cache), and the previous good checkpoint is hard-linked to a
    /// `.bak` sibling first, so even external corruption of the primary
    /// (a torn copy, a bad disk) leaves [`Checkpoint::load_resilient`] a
    /// fallback.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Io`] if writing, syncing or renaming
    /// fails. A failure to keep the `.bak` link is not an error — the
    /// backup is best-effort (some filesystems lack hard links).
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let io = |reason: std::io::Error| CheckpointError::Io {
            path: path.to_owned(),
            reason: reason.to_string(),
        };
        let json = serde_json::to_string_pretty(self).map_err(|e| CheckpointError::Io {
            path: path.to_owned(),
            reason: e.to_string(),
        })?;
        let tmp = sibling(path, ".tmp");
        {
            use std::io::Write;
            let mut file = std::fs::File::create(&tmp).map_err(io)?;
            file.write_all(json.as_bytes()).map_err(io)?;
            file.sync_all().map_err(io)?;
        }
        if path.exists() {
            let bak = Self::backup_path(path);
            std::fs::remove_file(&bak).ok();
            std::fs::hard_link(path, &bak).ok();
        }
        std::fs::rename(&tmp, path).map_err(io)?;
        Ok(())
    }

    /// Loads `path`, falling back to the `.bak` sibling kept by
    /// [`Checkpoint::save`] when the primary is unreadable, corrupt or of
    /// an unknown version.
    ///
    /// On fallback the second element describes what happened, suitable
    /// for a telemetry [`Warning`](momsynth_telemetry::Warning); it is
    /// `None` when the primary loaded cleanly.
    ///
    /// # Errors
    ///
    /// Returns the *primary* file's error when neither the primary nor
    /// the backup loads.
    pub fn load_resilient(path: &Path) -> Result<(Self, Option<String>), CheckpointError> {
        let primary_err = match Self::load(path) {
            Ok(cp) => return Ok((cp, None)),
            Err(e) => e,
        };
        let bak = Self::backup_path(path);
        match Self::load(&bak) {
            Ok(cp) => {
                let note = format!(
                    "checkpoint `{}` is unreadable ({primary_err}); \
                     recovered previous good checkpoint `{}` at generation {}",
                    path.display(),
                    bak.display(),
                    cp.generation
                );
                Ok((cp, Some(note)))
            }
            Err(_) => Err(primary_err),
        }
    }

    /// Reads and version-checks a checkpoint file.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Io`] if the file cannot be read,
    /// [`CheckpointError::Parse`] if it is not a checkpoint document, and
    /// [`CheckpointError::Version`] for unknown format versions.
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        let text = std::fs::read_to_string(path).map_err(|e| CheckpointError::Io {
            path: path.to_owned(),
            reason: e.to_string(),
        })?;
        let checkpoint: Self =
            serde_json::from_str(&text).map_err(|e| CheckpointError::Parse {
                path: path.to_owned(),
                reason: e.to_string(),
            })?;
        if checkpoint.version != CHECKPOINT_VERSION {
            return Err(CheckpointError::Version {
                found: checkpoint.version,
                supported: CHECKPOINT_VERSION,
            });
        }
        Ok(checkpoint)
    }

    /// Cross-checks the checkpoint against the system and seed a resumed
    /// run will use, plus its own internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Mismatch`] describing the first
    /// disagreement found.
    pub fn validate(
        &self,
        system: &System,
        layout: &GenomeLayout,
        seed: u64,
    ) -> Result<(), CheckpointError> {
        let mismatch = |reason: String| Err(CheckpointError::Mismatch { reason });
        if self.system != system.name() {
            return mismatch(format!(
                "checkpoint is for system `{}`, loaded system is `{}`",
                self.system,
                system.name()
            ));
        }
        if self.modes != system.omsm().mode_count() {
            return mismatch(format!(
                "checkpoint has {} modes, system has {}",
                self.modes,
                system.omsm().mode_count()
            ));
        }
        if self.tasks != system.omsm().total_task_count() {
            return mismatch(format!(
                "checkpoint has {} tasks, system has {}",
                self.tasks,
                system.omsm().total_task_count()
            ));
        }
        if self.genome_len != layout.len() {
            return mismatch(format!(
                "checkpoint genome length {} does not match layout length {}",
                self.genome_len,
                layout.len()
            ));
        }
        if self.seed != seed {
            return mismatch(format!(
                "checkpoint was taken with seed {}, run uses seed {seed}",
                self.seed
            ));
        }
        if self.population.is_empty() {
            return mismatch("checkpoint population is empty".to_owned());
        }
        if self.best_genome.len() != self.genome_len
            || self.population.iter().any(|(g, _)| g.len() != self.genome_len)
        {
            return mismatch("checkpoint contains genomes of the wrong length".to_owned());
        }
        if self.history.len() != self.generation + 1 {
            return mismatch(format!(
                "checkpoint history has {} entries for generation {}",
                self.history.len(),
                self.generation
            ));
        }
        if self.counters.improve_applied.len() != momsynth_telemetry::OPERATOR_COUNT
            || self.counters.improve_accepted.len() != momsynth_telemetry::OPERATOR_COUNT
        {
            return mismatch("checkpoint operator counters have the wrong arity".to_owned());
        }
        if self.cache.entries.iter().any(|e| e.genome.len() != self.genome_len) {
            return mismatch(
                "checkpoint cache contains genomes of the wrong length".to_owned(),
            );
        }
        Ok(())
    }

    /// Converts the checkpoint into the engine snapshot it froze.
    pub fn into_snapshot(self) -> GaSnapshot<Gene> {
        GaSnapshot {
            generation: self.generation,
            evaluations: self.evaluations,
            stagnation: self.stagnation,
            low_diversity_generations: self.low_diversity_generations,
            history: self.history,
            best: (self.best_genome, self.best_cost),
            population: self.population,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use momsynth_gen::suite::{generate, GeneratorParams};

    fn small_system() -> System {
        let mut params = GeneratorParams::new("cp", 3);
        params.modes = 2;
        params.tasks_per_mode = (4, 6);
        generate(&params)
    }

    fn sample_cache(len: usize) -> CacheState {
        CacheState {
            tick: 2,
            entries: vec![
                crate::cache::CacheEntry { genome: vec![0; len], cost: 4.5, tick: 0 },
                crate::cache::CacheEntry { genome: vec![1; len], cost: 6.0, tick: 1 },
            ],
        }
    }

    fn sample_snapshot(len: usize) -> GaSnapshot<Gene> {
        GaSnapshot {
            generation: 2,
            evaluations: 30,
            stagnation: 1,
            low_diversity_generations: 0,
            history: vec![9.0, 5.0, 4.5],
            best: (vec![0; len], 4.5),
            population: vec![(vec![0; len], 4.5), (vec![1; len], 6.0)],
        }
    }

    fn tmp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("momsynth_checkpoint_test_{}_{name}", std::process::id()));
        p
    }

    #[test]
    fn save_load_round_trip_preserves_everything() {
        let system = small_system();
        let layout = GenomeLayout::new(&system);
        let cp = Checkpoint::capture(&system, &layout, 42, &sample_snapshot(layout.len()), Counters::default(), sample_cache(layout.len()));
        let path = tmp_path("round_trip.json");
        cp.save(&path).unwrap();
        let back = Checkpoint::load(&path).unwrap();
        assert_eq!(back, cp);
        back.validate(&system, &layout, 42).unwrap();
        assert_eq!(back.into_snapshot(), sample_snapshot(layout.len()));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn huge_sentinel_costs_survive_the_json_round_trip() {
        let system = small_system();
        let layout = GenomeLayout::new(&system);
        let mut snapshot = sample_snapshot(layout.len());
        snapshot.population[1].1 = momsynth_ga::REJECTED_COST;
        let cp = Checkpoint::capture(&system, &layout, 0, &snapshot, Counters::default(), sample_cache(layout.len()));
        let path = tmp_path("sentinel.json");
        cp.save(&path).unwrap();
        let back = Checkpoint::load(&path).unwrap();
        assert_eq!(back.population[1].1, momsynth_ga::REJECTED_COST);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_missing_garbage_and_future_versions() {
        let missing = tmp_path("missing.json");
        assert!(matches!(Checkpoint::load(&missing), Err(CheckpointError::Io { .. })));

        let garbage = tmp_path("garbage.json");
        std::fs::write(&garbage, "not json").unwrap();
        assert!(matches!(Checkpoint::load(&garbage), Err(CheckpointError::Parse { .. })));
        std::fs::write(&garbage, "{\"unrelated\": 1}").unwrap();
        assert!(matches!(Checkpoint::load(&garbage), Err(CheckpointError::Parse { .. })));
        std::fs::remove_file(&garbage).ok();

        let system = small_system();
        let layout = GenomeLayout::new(&system);
        let mut cp = Checkpoint::capture(&system, &layout, 0, &sample_snapshot(layout.len()), Counters::default(), sample_cache(layout.len()));
        cp.version = CHECKPOINT_VERSION + 1;
        let future = tmp_path("future.json");
        cp.save(&future).unwrap();
        assert!(matches!(
            Checkpoint::load(&future),
            Err(CheckpointError::Version { found, supported })
                if found == CHECKPOINT_VERSION + 1 && supported == CHECKPOINT_VERSION
        ));
        std::fs::remove_file(&future).ok();
    }

    #[test]
    fn load_resilient_recovers_a_truncated_checkpoint_from_the_backup() {
        let system = small_system();
        let layout = GenomeLayout::new(&system);
        let path = tmp_path("truncated.json");
        let bak = Checkpoint::backup_path(&path);
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&bak).ok();

        // Two consecutive saves: the second keeps the first as `.bak`.
        let mut snapshot = sample_snapshot(layout.len());
        let older = Checkpoint::capture(&system, &layout, 7, &snapshot, Counters::default(), sample_cache(layout.len()));
        older.save(&path).unwrap();
        snapshot.generation = 3;
        snapshot.evaluations = 45;
        snapshot.history.push(4.0);
        let newer = Checkpoint::capture(&system, &layout, 7, &snapshot, Counters::default(), sample_cache(layout.len()));
        newer.save(&path).unwrap();
        assert!(bak.exists(), "save must keep the previous good checkpoint");

        // A clean primary loads without a warning.
        let (cp, note) = Checkpoint::load_resilient(&path).unwrap();
        assert_eq!(cp, newer);
        assert!(note.is_none());

        // Tear the primary (external truncation fixture): the resilient
        // loader falls back to the previous good checkpoint and says so.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() / 2]).unwrap();
        let (cp, note) = Checkpoint::load_resilient(&path).unwrap();
        assert_eq!(cp, older, "fallback must be the previous good checkpoint");
        let note = note.expect("recovery must be reported");
        assert!(note.contains("recovered"), "{note}");

        // Both torn: the primary's error surfaces.
        std::fs::write(&bak, "{").unwrap();
        assert!(matches!(
            Checkpoint::load_resilient(&path),
            Err(CheckpointError::Parse { .. })
        ));
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&bak).ok();
    }

    #[test]
    fn save_survives_a_missing_backup_target() {
        // First-ever save has no previous checkpoint to back up.
        let system = small_system();
        let layout = GenomeLayout::new(&system);
        let path = tmp_path("first_save.json");
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(Checkpoint::backup_path(&path)).ok();
        let cp = Checkpoint::capture(&system, &layout, 1, &sample_snapshot(layout.len()), Counters::default(), sample_cache(layout.len()));
        cp.save(&path).unwrap();
        assert!(!Checkpoint::backup_path(&path).exists());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn validate_rejects_wrong_system_seed_and_shapes() {
        let system = small_system();
        let layout = GenomeLayout::new(&system);
        let cp = Checkpoint::capture(&system, &layout, 5, &sample_snapshot(layout.len()), Counters::default(), sample_cache(layout.len()));

        let mut other_params = GeneratorParams::new("other", 4);
        other_params.modes = 3;
        let other = generate(&other_params);
        let other_layout = GenomeLayout::new(&other);
        assert!(matches!(
            cp.validate(&other, &other_layout, 5),
            Err(CheckpointError::Mismatch { .. })
        ));
        assert!(matches!(
            cp.validate(&system, &layout, 6),
            Err(CheckpointError::Mismatch { .. })
        ));

        let mut broken = cp.clone();
        broken.population.clear();
        assert!(broken.validate(&system, &layout, 5).is_err());
        let mut broken = cp.clone();
        broken.best_genome.pop();
        assert!(broken.validate(&system, &layout, 5).is_err());
        let mut broken = cp.clone();
        broken.history.pop();
        assert!(broken.validate(&system, &layout, 5).is_err());
        let mut broken = cp.clone();
        broken.cache.entries[0].genome.pop();
        assert!(broken.validate(&system, &layout, 5).is_err());

        cp.validate(&system, &layout, 5).unwrap();
    }
}
