//! Torn-write fuzz for [`Checkpoint::load_resilient`]: truncate and
//! corrupt the primary at every byte boundary and assert the loader
//! recovers the `.bak` sibling or fails with a typed
//! [`CheckpointError`] — never panics (DESIGN.md §17).

use std::path::{Path, PathBuf};

use momsynth_core::{CacheEntry, CacheState, Checkpoint, Gene, GenomeLayout};
use momsynth_ga::GaSnapshot;
use momsynth_telemetry::Counters;
use momsynth_gen::suite::{generate, GeneratorParams};

fn tmp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("momsynth_cp_torn_{}_{name}.json", std::process::id()));
    std::fs::remove_file(&p).ok();
    p
}

fn checkpoint_pair(path: &Path) -> (Checkpoint, Checkpoint) {
    let mut params = GeneratorParams::new("cp-torn", 5);
    params.modes = 2;
    params.tasks_per_mode = (4, 5);
    let system = generate(&params);
    let layout = GenomeLayout::new(&system);
    let len = layout.len();
    let snapshot = |generation: usize| GaSnapshot::<Gene> {
        generation,
        evaluations: generation * 10,
        stagnation: 0,
        low_diversity_generations: 0,
        history: vec![9.0; generation.max(1)],
        best: (vec![0; len], 4.5),
        population: vec![(vec![0; len], 4.5), (vec![1; len], 6.0)],
    };
    let cache = CacheState {
        tick: 1,
        entries: vec![CacheEntry { genome: vec![0; len], cost: 4.5, tick: 0 }],
    };
    let older =
        Checkpoint::capture(&system, &layout, 5, &snapshot(2), Counters::default(), cache.clone());
    older.save(path).unwrap();
    let newer =
        Checkpoint::capture(&system, &layout, 5, &snapshot(4), Counters::default(), cache);
    newer.save(path).unwrap(); // keeps `older` as `.bak`
    (older, newer)
}

#[test]
fn truncation_at_every_boundary_recovers_or_fails_typed() {
    let path = tmp_path("trunc");
    let (older, newer) = checkpoint_pair(&path);
    let full = std::fs::read(&path).unwrap();
    for cut in 0..=full.len() {
        std::fs::write(&path, &full[..cut]).unwrap();
        let (cp, note) = Checkpoint::load_resilient(&path)
            .expect("the backup must cover every torn prefix");
        if cut == full.len() {
            assert_eq!(cp, newer);
            assert!(note.is_none(), "clean primary needs no recovery note");
        } else {
            assert_eq!(cp, older, "fallback must be the previous checkpoint (cut={cut})");
            assert!(note.is_some(), "recovery must be reported (cut={cut})");
        }
    }
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(Checkpoint::backup_path(&path)).ok();
}

#[test]
fn corruption_at_every_byte_never_panics() {
    let path = tmp_path("flip");
    let (older, newer) = checkpoint_pair(&path);
    let full = std::fs::read(&path).unwrap();
    for at in 0..full.len() {
        let mut bytes = full.clone();
        bytes[at] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        match Checkpoint::load_resilient(&path) {
            // Either copy is acceptable: a benign flip (inside a string
            // value) can leave the primary parseable. A flip that
            // corrupts a *value* but not the JSON shape may also load —
            // the version/geometry guards in `Synthesizer` reject
            // incompatible resumes downstream.
            Ok((cp, _note)) => {
                assert_eq!(
                    (cp.seed, cp.genome_len),
                    (newer.seed, newer.genome_len),
                    "a loaded checkpoint keeps its geometry (at={at})"
                );
            }
            // Both torn would be a typed error; with a good `.bak` this
            // only happens if the flip made the primary parse *and*
            // fail validation — still typed, never a panic.
            Err(e) => {
                let _ = e.to_string();
            }
        }
    }
    let _ = older;
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(Checkpoint::backup_path(&path)).ok();
}
