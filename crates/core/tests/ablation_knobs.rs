//! The design-decision knobs (D2–D5) must be functional: each produces a
//! valid synthesis run, and flipping it changes the configuration the
//! synthesizer actually uses.

use momsynth_core::{DvsSynthesisOptions, LocalSearchOptions, SynthesisConfig, Synthesizer};
use momsynth_gen::suite::mul;
use momsynth_sched::Priority;

fn power_with(cfg: SynthesisConfig) -> (f64, bool) {
    let system = mul(9);
    let result = Synthesizer::new(&system, cfg).run().unwrap();
    (result.best.power.average.as_milli(), result.best.is_feasible())
}

#[test]
fn d2_improvement_operators_toggle() {
    let mut on = SynthesisConfig::fast_preset(1);
    on.improvement_operators = true;
    let mut off = SynthesisConfig::fast_preset(1);
    off.improvement_operators = false;
    let (p_on, f_on) = power_with(on);
    let (p_off, f_off) = power_with(off);
    assert!(f_on && f_off);
    assert!(p_on > 0.0 && p_off > 0.0);
}

#[test]
fn d3_software_only_dvs_never_beats_full_dvs_on_hw_heavy_systems() {
    // mul6 has two DVS hardware PEs; restricting scaling to software rails
    // must not *help*.
    let system = mul(6);
    let run = |sw_only: bool| {
        let mut cfg = SynthesisConfig::fast_preset(2).with_dvs();
        if sw_only {
            cfg.dvs = Some(DvsSynthesisOptions::software_only());
        }
        Synthesizer::new(&system, cfg).run().unwrap().best.power.average.as_milli()
    };
    let full = run(false);
    let sw_only = run(true);
    assert!(full <= sw_only * 1.05, "full {full} vs sw-only {sw_only}");
}

#[test]
fn d4_replication_toggle_produces_valid_runs() {
    let mut on = SynthesisConfig::fast_preset(3);
    on.alloc.replicate = true;
    let mut off = SynthesisConfig::fast_preset(3);
    off.alloc.replicate = false;
    let (p_on, f_on) = power_with(on);
    let (p_off, f_off) = power_with(off);
    assert!(f_on && f_off);
    assert!(p_on > 0.0 && p_off > 0.0);
}

#[test]
fn d5_fifo_priorities_produce_valid_runs() {
    let mut cfg = SynthesisConfig::fast_preset(4);
    cfg.scheduler.priority = Priority::Fifo;
    let (p, feasible) = power_with(cfg);
    assert!(feasible);
    assert!(p > 0.0);
}

#[test]
fn local_search_never_hurts_the_reported_power() {
    let system = mul(9);
    let run = |passes: usize, seed: u64| {
        let mut cfg = SynthesisConfig::fast_preset(seed);
        cfg.local_search = LocalSearchOptions { max_passes: passes };
        Synthesizer::new(&system, cfg).run().unwrap().best.fitness
    };
    for seed in 0..3 {
        let without = run(0, seed);
        let with = run(2, seed);
        assert!(
            with <= without + 1e-12,
            "seed {seed}: polish worsened fitness {without} -> {with}"
        );
    }
}
