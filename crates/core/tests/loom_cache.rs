//! Loom models for the shared evaluation cache: no fill is ever lost,
//! concurrent probe/fill keeps every genome's cost intact, and the
//! lock-free hot slot never serves a torn `(hash, cost)` pair.
//!
//! Run with `RUSTFLAGS="--cfg loom" cargo test -p momsynth-core
//! --test loom_cache --release`; add `--cfg loom_mutation` to arm the
//! seeded Release→Relaxed downgrade in `HotSlot::publish` and assert
//! loom catches the resulting tear.

#![cfg(loom)]

use momsynth_core::{HotSlot, SharedEvalCache};
use momsynth_sync::sync::Arc;
use momsynth_sync::thread;

/// Two writers fill different genomes; both fills must survive and be
/// probeable with their exact costs.
#[cfg(not(loom_mutation))]
#[test]
fn concurrent_fills_are_never_lost() {
    momsynth_sync::model(|| {
        let cache = Arc::new(SharedEvalCache::new(64));
        let writers: Vec<_> = [(1u16, 2.5f64), (2, 7.0)]
            .into_iter()
            .map(|(seed, cost)| {
                let cache = Arc::clone(&cache);
                thread::spawn(move || cache.fill(&[seed, seed + 1], cost))
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        assert_eq!(cache.probe(&[1, 2]), Some(2.5), "fill must never be lost");
        assert_eq!(cache.probe(&[2, 3]), Some(7.0), "fill must never be lost");
        assert_eq!(cache.len(), 2);
    });
}

/// A reader races a writer refilling the same genome; the probe may
/// miss or hit, but a hit must return the genome's cost, exactly.
#[cfg(not(loom_mutation))]
#[test]
fn probe_racing_fill_sees_whole_values_or_nothing() {
    momsynth_sync::model(|| {
        let cache = Arc::new(SharedEvalCache::new(64));
        cache.fill(&[9, 9], 1.0);
        let writer = {
            let cache = Arc::clone(&cache);
            thread::spawn(move || cache.fill(&[5, 5], 3.0))
        };
        match cache.probe(&[5, 5]) {
            None => {}
            Some(cost) => assert_eq!(cost, 3.0, "a hit must be the filled cost"),
        }
        assert_eq!(cache.probe(&[9, 9]), Some(1.0), "unrelated entry untouched");
        writer.join().unwrap();
    });
}

/// The seqlock tear model: one writer publishes two different pairs in
/// sequence while a reader probes. Any hit must be the cost that was
/// published *with* the probed hash — never a mix of two publishes.
/// This is the model whose `loom_mutation` variant (hash store
/// downgraded to Relaxed) must fail.
fn hot_slot_tear_model() {
    let slot = Arc::new(HotSlot::new());
    let writer = {
        let slot = Arc::clone(&slot);
        thread::spawn(move || {
            slot.publish(1, 10.0);
            slot.publish(2, 20.0);
        })
    };
    for (hash, expected) in [(1u64, 10.0f64), (2, 20.0)] {
        if let Some(cost) = slot.probe(hash) {
            assert_eq!(
                cost, expected,
                "hot slot served a torn pair for hash {hash}"
            );
        }
    }
    writer.join().unwrap();
}

#[cfg(not(loom_mutation))]
#[test]
fn hot_slot_never_serves_a_torn_pair() {
    momsynth_sync::model(hot_slot_tear_model);
}

/// With `--cfg loom_mutation` the hash publish is Relaxed, so a reader
/// can validate a (new hash, old cost) pair; the model must fail.
#[cfg(loom_mutation)]
#[test]
fn seeded_relaxed_hash_publish_is_caught() {
    let result = std::panic::catch_unwind(|| momsynth_sync::model(hot_slot_tear_model));
    assert!(
        result.is_err(),
        "loom failed to detect the seeded Release→Relaxed downgrade in HotSlot::publish"
    );
}
