//! Telemetry contract of the synthesis runner.
//!
//! The central guarantee: a fixed-seed run and its checkpoint-resumed
//! counterpart emit *identical* event streams modulo wall-clock fields.
//! [`GenerationEvent`] carries a single wall-clock field (the live
//! `evals_per_sec` throughput), zeroed by [`GenerationEvent::normalized`]
//! before comparison; [`RunSummary`] is compared through
//! [`RunSummary::normalized`], which zeroes its timing fields.

use std::path::PathBuf;

use momsynth_core::telemetry::{
    Event, GenerationEvent, JsonlSink, MemorySink, RunSummary, Sink, OPERATOR_COUNT,
};
use momsynth_core::{Checkpoint, CheckpointSpec, SynthControl, SynthesisConfig, Synthesizer};
use momsynth_gen::suite::{generate, GeneratorParams};
use momsynth_model::System;

fn small_system() -> System {
    let mut params = GeneratorParams::new("telemetry", 7);
    params.modes = 2;
    params.tasks_per_mode = (5, 7);
    generate(&params)
}

fn small_config(seed: u64) -> SynthesisConfig {
    let mut cfg = SynthesisConfig::fast_preset(seed).with_dvs();
    cfg.ga.population_size = 12;
    cfg.ga.max_generations = 12;
    cfg.ga.stagnation_limit = 8;
    cfg
}

fn tmp_file(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("momsynth_telemetry_it_{}_{name}", std::process::id()));
    p
}

fn generations(events: &[Event]) -> Vec<GenerationEvent> {
    events
        .iter()
        .filter_map(|e| match e {
            Event::Generation(g) => Some(g.normalized()),
            _ => None,
        })
        .collect()
}

fn summary(events: &[Event]) -> RunSummary {
    events
        .iter()
        .find_map(|e| match e {
            Event::Summary(s) => Some(s.clone()),
            _ => None,
        })
        .expect("run emits a summary")
}

#[test]
fn run_emits_start_generations_phases_and_summary() {
    let system = small_system();
    let sink = MemorySink::new();
    let result = Synthesizer::new(&system, small_config(1))
        .run_controlled(SynthControl { sink: Some(&sink), ..SynthControl::default() })
        .unwrap();
    let events = sink.take();

    let Some(Event::RunStart(start)) = events.first() else {
        panic!("first event must be RunStart, got {:?}", events.first());
    };
    assert_eq!(start.system, system.name());
    assert_eq!(start.seed, 1);
    assert!(start.dvs);
    assert_eq!(start.modes, 2);
    assert_eq!(start.resumed_generation, None);
    assert!(matches!(events.last(), Some(Event::Summary(_))));

    let gens = generations(&events);
    assert_eq!(gens.len(), result.generations + 1, "one event per generation plus init");
    for (i, g) in gens.iter().enumerate() {
        assert_eq!(g.generation, i as u64);
        assert_eq!(g.best, result.history[i]);
        assert_eq!(g.counters.improve_applied.len(), OPERATOR_COUNT);
    }
    // DVS is on, so the deterministic iteration counter must move.
    assert!(gens.last().unwrap().counters.dvs_iterations > 0);

    // Live progress: each periodic event reports throughput and the
    // cache hit rate consistent with its own counters, so a status
    // endpoint needs no end-of-run summary.
    let raw_gens: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            Event::Generation(g) => Some(g.clone()),
            _ => None,
        })
        .collect();
    assert!(
        raw_gens.iter().any(|g| g.evals_per_sec > 0.0),
        "per-generation events must carry live throughput"
    );
    for g in &raw_gens {
        assert_eq!(g.cache_hit_rate, g.counters.cache_hit_rate());
    }

    // Phase timing was enabled by the sink; the spans must cover at
    // least the whole-evaluation phase and sum consistently.
    assert!(!result.phase_timings.is_empty());
    let phases: Vec<_> = events
        .iter()
        .filter(|e| matches!(e, Event::Phase(_)))
        .collect();
    assert_eq!(phases.len(), result.phase_timings.len());

    let s = summary(&events);
    assert_eq!(s.generations, result.generations as u64);
    assert_eq!(s.evaluations, result.evaluations as u64);
    assert_eq!(s.stop_reason, result.stop_reason.to_string());
    assert_eq!(s.modes.len(), 2);
    let weighted: f64 = s.modes.iter().map(|m| m.total_mw * m.probability).sum();
    assert!(
        (weighted - s.average_power_mw).abs() <= 1e-9 * s.average_power_mw.abs().max(1.0),
        "Eq. 1: p̄ must equal the probability-weighted mode powers ({weighted} vs {})",
        s.average_power_mw
    );
}

#[test]
fn runs_without_a_sink_emit_nothing_and_skip_phase_timing() {
    let system = small_system();
    let result = Synthesizer::new(&system, small_config(1)).run().unwrap();
    assert!(result.phase_timings.is_empty());
    assert_eq!(result.counters.rejected, 0);
}

/// The acceptance criterion: interrupt a checkpointed run, resume it,
/// and require the resumed event stream to be the exact tail of the
/// uninterrupted run's stream (and the summaries to agree modulo
/// wall-clock fields).
#[test]
fn resumed_trace_is_the_exact_tail_of_the_uninterrupted_trace() {
    let system = small_system();
    let cfg = small_config(9);

    let full_sink = MemorySink::new();
    let full = Synthesizer::new(&system, cfg.clone())
        .run_controlled(SynthControl { sink: Some(&full_sink), ..SynthControl::default() })
        .unwrap();
    assert!(!full.stop_reason.is_interrupted());
    let full_events = full_sink.take();

    // Interrupt an identical run early, checkpointing every generation.
    let cp_path = tmp_file("resume_cp.json");
    let mut cut_cfg = cfg.clone();
    cut_cfg.ga.max_evaluations = Some(40);
    Synthesizer::new(&system, cut_cfg)
        .run_controlled(SynthControl {
            checkpoint: Some(CheckpointSpec::every_generations(cp_path.clone(), 1)),
            ..SynthControl::default()
        })
        .unwrap();

    let checkpoint = Checkpoint::load(&cp_path).unwrap();
    let cut_generation = checkpoint.generation as u64;
    let resumed_sink = MemorySink::new();
    let resumed = Synthesizer::new(&system, cfg)
        .run_controlled(SynthControl {
            resume: Some(checkpoint),
            sink: Some(&resumed_sink),
            ..SynthControl::default()
        })
        .unwrap();
    let resumed_events = resumed_sink.take();

    let Some(Event::RunStart(start)) = resumed_events.first() else {
        panic!("resumed run must announce itself");
    };
    assert_eq!(start.resumed_generation, Some(cut_generation));

    // Generation events (counters included) must continue seamlessly:
    // the resumed stream is exactly the post-checkpoint tail.
    let full_gens = generations(&full_events);
    let resumed_gens = generations(&resumed_events);
    let tail: Vec<GenerationEvent> = full_gens
        .iter()
        .filter(|g| g.generation > cut_generation)
        .cloned()
        .collect();
    assert!(!tail.is_empty(), "the cut must land before the natural end of the run");
    assert_eq!(resumed_gens, tail);

    // Summaries agree once wall-clock fields are zeroed out.
    assert_eq!(
        summary(&resumed_events).normalized(),
        summary(&full_events).normalized()
    );
    assert_eq!(full.best.mapping, resumed.best.mapping);
    std::fs::remove_file(&cp_path).ok();
}

#[test]
fn jsonl_trace_round_trips_through_serde() {
    let system = small_system();
    let path = tmp_file("trace.jsonl");
    {
        let sink = JsonlSink::create(&path).unwrap();
        Synthesizer::new(&system, small_config(3))
            .run_controlled(SynthControl { sink: Some(&sink), ..SynthControl::default() })
            .unwrap();
        sink.flush();
    }
    let text = std::fs::read_to_string(&path).unwrap();
    let events: Vec<Event> = text
        .lines()
        .map(|line| serde_json::from_str(line).expect("every line parses as an Event"))
        .collect();
    assert!(matches!(events.first(), Some(Event::RunStart(_))));
    assert!(matches!(events.last(), Some(Event::Summary(_))));
    assert!(events.iter().any(|e| matches!(e, Event::Generation(_))));
    assert!(events.iter().any(|e| matches!(e, Event::Phase(_))));
    std::fs::remove_file(&path).ok();
}
