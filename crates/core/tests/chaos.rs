//! Fault-injection (chaos) tests of the synthesis runtime.
//!
//! A deterministic faulty-evaluator wrapper ([`FaultInjection`]) makes
//! candidate evaluations panic, return NaN or fail at configurable rates.
//! These tests assert the resilience contract of the runner: it always
//! terminates with either a well-formed, finite [`SynthesisResult`] or a
//! typed [`SynthesisError`] — never a crash, hang or poisoned result.

use std::path::PathBuf;
use momsynth_sync::sync::atomic::AtomicBool;
use std::sync::Once; // lint: allow(raw-std-sync-import) Once is not modeled by loom

use proptest::prelude::*;

use momsynth_core::{
    Checkpoint, CheckpointSpec, FaultInjection, StopReason, SynthControl, SynthesisConfig,
    SynthesisError, Synthesizer,
};
use momsynth_gen::suite::{generate, GeneratorParams};

static SILENCE: Once = Once::new();

/// Injected evaluator panics unwind through `catch_unwind` by design;
/// silence the default hook for them so chaos runs don't spray backtraces.
/// Integration tests run as their own process, so this cannot leak into
/// other suites.
fn silence_injected_panics() {
    SILENCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let injected = payload
                .downcast_ref::<&str>()
                .is_some_and(|s| s.contains("injected evaluator panic"))
                || payload
                    .downcast_ref::<String>()
                    .is_some_and(|s| s.contains("injected evaluator panic"));
            if !injected {
                default(info);
            }
        }));
    });
}

fn small_system() -> momsynth_model::System {
    let mut params = GeneratorParams::new("chaos", 23);
    params.modes = 2;
    params.tasks_per_mode = (5, 7);
    generate(&params)
}

fn small_config(seed: u64) -> SynthesisConfig {
    let mut cfg = SynthesisConfig::fast_preset(seed);
    cfg.ga.population_size = 12;
    cfg.ga.max_generations = 12;
    cfg.ga.stagnation_limit = 8;
    cfg
}

fn tmp_file(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("momsynth_chaos_{}_{name}", std::process::id()));
    p
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// The runner's core guarantee, under arbitrary fault-rate mixes: it
    /// terminates, and the outcome is either a well-formed result (finite
    /// fitness, consistent history/counters, accurate stop reason) or a
    /// typed error with populated diagnostics.
    #[test]
    fn faulty_runs_terminate_with_well_formed_outcomes(
        panic_rate in 0.0f64..0.5,
        nan_rate in 0.0f64..0.5,
        err_rate in 0.0f64..0.5,
        fault_seed in 0u64..1000,
        ga_seed in 0u64..8,
    ) {
        silence_injected_panics();
        let system = small_system();
        let mut cfg = small_config(ga_seed);
        cfg.fault_injection = Some(FaultInjection {
            panic_rate,
            nan_rate,
            err_rate,
            seed: fault_seed,
        });
        match Synthesizer::new(&system, cfg).run() {
            Ok(result) => {
                prop_assert!(result.best.fitness.is_finite());
                prop_assert!(result.evaluations > 0);
                prop_assert_eq!(result.history.len(), result.generations + 1);
                prop_assert!(result.history.iter().all(|c| c.is_finite()));
                // No budgets or stop flag were set, so only natural stop
                // reasons are accurate.
                prop_assert!(!result.stop_reason.is_interrupted());
            }
            Err(SynthesisError::Unschedulable { best, fallback }) => {
                prop_assert!(!best.is_empty());
                prop_assert!(!fallback.is_empty());
            }
            Err(other) => prop_assert!(false, "unexpected error: {other}"),
        }
    }
}

#[test]
fn double_digit_panic_rate_is_survivable() {
    silence_injected_panics();
    let system = small_system();
    let mut cfg = small_config(3);
    cfg.fault_injection =
        Some(FaultInjection { panic_rate: 0.15, nan_rate: 0.0, err_rate: 0.0, seed: 41 });
    let result = Synthesizer::new(&system, cfg).run().expect("run survives 15% panics");
    assert!(result.rejected > 0, "some candidates must have drawn a panic");
    assert!(result.best.fitness.is_finite());
}

#[test]
fn faulty_runs_are_deterministic() {
    silence_injected_panics();
    let system = small_system();
    let mut cfg = small_config(1);
    cfg.fault_injection =
        Some(FaultInjection { panic_rate: 0.1, nan_rate: 0.1, err_rate: 0.1, seed: 5 });
    let a = Synthesizer::new(&system, cfg.clone()).run();
    let b = Synthesizer::new(&system, cfg).run();
    match (a, b) {
        (Ok(a), Ok(b)) => {
            assert_eq!(a.best.mapping, b.best.mapping);
            assert_eq!(a.history, b.history);
            assert_eq!(a.rejected, b.rejected);
        }
        (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string()),
        (a, b) => panic!("outcomes diverged: {a:?} vs {b:?}"),
    }
}

#[test]
fn evaluation_budget_holds_under_faults() {
    silence_injected_panics();
    let system = small_system();
    let mut cfg = small_config(2);
    cfg.ga.max_evaluations = Some(40);
    cfg.fault_injection =
        Some(FaultInjection { panic_rate: 0.2, nan_rate: 0.1, err_rate: 0.1, seed: 17 });
    match Synthesizer::new(&system, cfg).run() {
        Ok(result) => {
            assert_eq!(result.stop_reason, StopReason::EvaluationBudget);
            // One offspring may be mid-flight when the budget trips.
            assert!(result.evaluations <= 41, "{}", result.evaluations);
        }
        Err(SynthesisError::Unschedulable { .. }) => {}
        Err(other) => panic!("unexpected error: {other}"),
    }
}

#[test]
fn cancellation_holds_under_faults() {
    silence_injected_panics();
    let system = small_system();
    let mut cfg = small_config(4);
    cfg.fault_injection =
        Some(FaultInjection { panic_rate: 0.2, nan_rate: 0.1, err_rate: 0.1, seed: 29 });
    let stop = AtomicBool::new(true);
    match Synthesizer::new(&system, cfg)
        .run_controlled(SynthControl { stop: Some(&stop), ..SynthControl::default() })
    {
        Ok(result) => {
            assert_eq!(result.stop_reason, StopReason::Cancelled);
            assert!(!result.history.is_empty());
        }
        Err(SynthesisError::Unschedulable { .. }) => {}
        Err(other) => panic!("unexpected error: {other}"),
    }
}

/// Interrupt a run on an evaluation budget while checkpointing every
/// generation, then resume from the checkpoint without the budget: the
/// resumed run must reproduce the uninterrupted run exactly.
fn assert_resume_equivalence(mut cfg: SynthesisConfig, name: &str) {
    let system = small_system();
    let full = Synthesizer::new(&system, cfg.clone()).run().expect("uninterrupted run");
    assert!(!full.stop_reason.is_interrupted());

    let cp_path = tmp_file(name);
    let mut cut_cfg = cfg.clone();
    cut_cfg.ga.max_evaluations = Some(40);
    let cut = Synthesizer::new(&system, cut_cfg)
        .run_controlled(SynthControl {
            checkpoint: Some(CheckpointSpec::every_generations(cp_path.clone(), 1)),
            ..SynthControl::default()
        })
        .expect("interrupted run still returns its best-so-far");
    assert_eq!(cut.stop_reason, StopReason::EvaluationBudget);
    assert!(cp_path.exists(), "checkpoint must have been written");

    let checkpoint = Checkpoint::load(&cp_path).expect("checkpoint loads");
    cfg.ga.max_evaluations = None;
    let resumed = Synthesizer::new(&system, cfg)
        .run_controlled(SynthControl { resume: Some(checkpoint), ..SynthControl::default() })
        .expect("resumed run");

    assert_eq!(full.best.mapping, resumed.best.mapping);
    assert_eq!(full.best.fitness, resumed.best.fitness);
    assert_eq!(full.history, resumed.history);
    assert_eq!(full.stop_reason, resumed.stop_reason);
    std::fs::remove_file(&cp_path).ok();
}

#[test]
fn resume_reproduces_the_uninterrupted_run() {
    assert_resume_equivalence(small_config(9), "clean_cp.json");
}

#[test]
fn resume_reproduces_the_uninterrupted_run_under_faults() {
    silence_injected_panics();
    // Fault decisions are pure functions of the genome, so equivalence
    // must hold even with a faulty evaluator.
    let mut cfg = small_config(10);
    cfg.fault_injection =
        Some(FaultInjection { panic_rate: 0.05, nan_rate: 0.05, err_rate: 0.05, seed: 53 });
    assert_resume_equivalence(cfg, "faulty_cp.json");
}
