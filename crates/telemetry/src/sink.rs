//! Event sinks: no-op, JSONL file, in-memory, stderr and fan-out.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

use momsynth_sync::sync::Mutex;

use crate::event::Event;

/// A consumer of telemetry events.
///
/// `record` takes `&self` so a sink can be shared by reference through a
/// whole synthesis stack; sinks use interior mutability as needed. The
/// built-in stateful sinks guard their state with a [`Mutex`], so one
/// sink instance can be written from several threads and every recorded
/// event stays whole — concurrent writers never interleave partial
/// events or partial JSONL lines.
///
/// Producers must gate *expensive* event construction (fitness
/// statistics, phase reports, summaries) behind [`Sink::enabled`]; cheap
/// diagnostics like [`Warning`](crate::Warning) may be recorded
/// unconditionally — a disabled sink simply drops them.
pub trait Sink {
    /// Whether this sink wants trace events. `false` promises that the
    /// producer may skip building them.
    fn enabled(&self) -> bool {
        true
    }

    /// Consumes one event.
    fn record(&self, event: &Event);

    /// Flushes any buffered output.
    fn flush(&self) {}
}

/// Discards everything; producers skip event construction entirely.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

/// A shareable [`NullSink`] instance.
pub static NULL: NullSink = NullSink;

impl Sink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&self, _event: &Event) {}
}

/// Collects events in memory; useful in tests and harnesses. Safe to
/// share across threads: each recorded event is appended atomically.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
    /// Lock-free monotone count of recorded events; see
    /// [`MemorySink::recorded_hint`].
    recorded: momsynth_sync::sync::atomic::AtomicUsize,
}

impl MemorySink {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// A copy of everything recorded so far.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().expect("memory sink poisoned").clone()
    }

    /// Drains and returns everything recorded so far. The recorded
    /// hint is *not* reset: it counts records over the sink's lifetime.
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut *self.events.lock().expect("memory sink poisoned"))
    }

    /// How many events have been recorded over this sink's lifetime,
    /// without taking the writers' lock. Monotone and exact (each
    /// record bumps it exactly once), but a reader may briefly observe
    /// it ahead of [`MemorySink::events`] while a record is in flight.
    pub fn recorded_hint(&self) -> usize {
        use momsynth_sync::sync::atomic::Ordering;
        self.recorded.load(Ordering::Relaxed)
    }
}

impl Sink for MemorySink {
    fn record(&self, event: &Event) {
        use momsynth_sync::sync::atomic::Ordering;
        self.events.lock().expect("memory sink poisoned").push(event.clone());
        // Seeded bug for the loom mutation check (DESIGN.md §17): a
        // non-atomic load+store loses concurrent bumps, breaking the
        // "exact" contract of `recorded_hint`.
        #[cfg(loom_mutation)]
        {
            let v = self.recorded.load(Ordering::Relaxed);
            self.recorded.store(v + 1, Ordering::Relaxed);
        }
        #[cfg(not(loom_mutation))]
        self.recorded.fetch_add(1, Ordering::Relaxed);
    }
}

/// Appends one JSON object per event to a file (JSON Lines). Safe to
/// share across threads: events are serialised outside the lock, but
/// each line is written under it, so lines never interleave.
#[derive(Debug)]
pub struct JsonlSink {
    writer: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Creates (truncates) `path` and writes events to it.
    ///
    /// # Errors
    ///
    /// Propagates the underlying file-creation error.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(Self { writer: Mutex::new(BufWriter::new(file)) })
    }

    /// Opens `path` for appending (creating it if absent), so a resumed
    /// run continues the trace its interrupted predecessor started.
    ///
    /// # Errors
    ///
    /// Propagates the underlying file-open error.
    pub fn append(path: &Path) -> std::io::Result<Self> {
        let file = File::options().create(true).append(true).open(path)?;
        Ok(Self { writer: Mutex::new(BufWriter::new(file)) })
    }
}

impl Sink for JsonlSink {
    fn record(&self, event: &Event) {
        // Serialising a value of a well-formed event type cannot fail;
        // I/O errors are deliberately swallowed: telemetry must never
        // take the run down.
        if let Ok(json) = serde_json::to_string(event) {
            let mut w = self.writer.lock().expect("jsonl sink poisoned");
            let _ = writeln!(w, "{json}");
        }
    }

    fn flush(&self) {
        let _ = self.writer.lock().expect("jsonl sink poisoned").flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Human one-line-per-generation progress on stderr, plus warnings.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProgressSink;

impl Sink for ProgressSink {
    fn record(&self, event: &Event) {
        match event {
            Event::Generation(g) => eprintln!(
                "gen {:>4}  best {:>12.6}  mean {:>12.6}  evals {:>7}  stagnation {}",
                g.generation, g.best, g.mean, g.evaluations, g.stagnation
            ),
            Event::Warning(w) => eprintln!("warning: {}", w.message),
            Event::Summary(s) => eprintln!(
                "done: {:.6} mW  feasible {}  {} generations  {} evaluations  {:.2} s",
                s.average_power_mw, s.feasible, s.generations, s.evaluations, s.wall_time_s
            ),
            _ => {}
        }
    }
}

/// Prints only [`Warning`](crate::Warning) events to stderr. Reports
/// `enabled() == false` so producers skip building trace events.
#[derive(Debug, Clone, Copy, Default)]
pub struct WarningSink;

impl Sink for WarningSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&self, event: &Event) {
        if let Event::Warning(w) = event {
            eprintln!("warning: {}", w.message);
        }
    }
}

/// Broadcasts events to several sinks; enabled when any member is.
/// Members must be thread-safe, so a fan-out shared across worker
/// threads delivers each event to every member without tearing.
#[derive(Default)]
pub struct Fanout {
    sinks: Vec<Box<dyn Sink + Send + Sync>>,
}

impl std::fmt::Debug for Fanout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fanout").field("sinks", &self.sinks.len()).finish()
    }
}

impl Fanout {
    /// An empty fan-out (equivalent to [`NullSink`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a member sink.
    pub fn push(&mut self, sink: Box<dyn Sink + Send + Sync>) {
        self.sinks.push(sink);
    }

    /// Number of member sinks.
    pub fn len(&self) -> usize {
        self.sinks.len()
    }

    /// Whether the fan-out has no members.
    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }
}

impl Sink for Fanout {
    fn enabled(&self) -> bool {
        self.sinks.iter().any(|s| s.enabled())
    }

    fn record(&self, event: &Event) {
        for sink in &self.sinks {
            sink.record(event);
        }
    }

    fn flush(&self) {
        for sink in &self.sinks {
            sink.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Warning;

    #[test]
    fn null_sink_is_disabled() {
        assert!(!NULL.enabled());
        NULL.record(&Event::Warning(Warning { message: "x".into() }));
    }

    #[test]
    fn memory_sink_collects_and_drains() {
        let sink = MemorySink::new();
        assert!(sink.enabled());
        sink.record(&Event::Warning(Warning { message: "a".into() }));
        sink.record(&Event::Warning(Warning { message: "b".into() }));
        assert_eq!(sink.events().len(), 2);
        assert_eq!(sink.take().len(), 2);
        assert!(sink.events().is_empty());
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let mut path = std::env::temp_dir();
        path.push(format!("momsynth_telemetry_test_{}.jsonl", std::process::id()));
        {
            let sink = JsonlSink::create(&path).unwrap();
            sink.record(&Event::Warning(Warning { message: "one".into() }));
            sink.record(&Event::Warning(Warning { message: "two".into() }));
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let events: Vec<Event> = text
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        assert_eq!(events.len(), 2);
        assert!(matches!(&events[0], Event::Warning(w) if w.message == "one"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn jsonl_append_continues_an_existing_trace() {
        let mut path = std::env::temp_dir();
        path.push(format!("momsynth_telemetry_append_{}.jsonl", std::process::id()));
        std::fs::remove_file(&path).ok();
        {
            let sink = JsonlSink::append(&path).unwrap();
            sink.record(&Event::Warning(Warning { message: "first".into() }));
        }
        {
            let sink = JsonlSink::append(&path).unwrap();
            sink.record(&Event::Warning(Warning { message: "second".into() }));
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let events: Vec<Event> =
            text.lines().map(|l| serde_json::from_str(l).unwrap()).collect();
        assert_eq!(events.len(), 2, "append must not truncate the first line");
        assert!(matches!(&events[0], Event::Warning(w) if w.message == "first"));
        assert!(matches!(&events[1], Event::Warning(w) if w.message == "second"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fanout_is_enabled_when_any_member_is() {
        let mut fanout = Fanout::new();
        assert!(!fanout.enabled());
        fanout.push(Box::new(WarningSink));
        assert!(!fanout.enabled(), "warning-only sinks do not want traces");
        fanout.push(Box::new(MemorySink::new()));
        assert!(fanout.enabled());
        assert_eq!(fanout.len(), 2);
        fanout.record(&Event::Warning(Warning { message: "w".into() }));
        fanout.flush();
    }
}
