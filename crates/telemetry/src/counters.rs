//! Interior-mutable run counters.

use std::cell::Cell;

use crate::event::{Counters, OPERATOR_COUNT};

/// Live counterpart of [`Counters`] with interior mutability, so cost
/// functions taking `&self` can count. Snapshot with
/// [`CounterSet::snapshot`]; restore checkpointed totals with
/// [`CounterSet::restore`] so resumed runs keep cumulative counters.
#[derive(Debug, Default)]
pub struct CounterSet {
    rejected: Cell<u64>,
    timing_violations: Cell<u64>,
    area_violations: Cell<u64>,
    transition_violations: Cell<u64>,
    dvs_iterations: Cell<u64>,
    cache_hits: Cell<u64>,
    cache_misses: Cell<u64>,
    evaluated: Cell<u64>,
    cache_evictions: Cell<u64>,
    improve_applied: [Cell<u64>; OPERATOR_COUNT],
    improve_accepted: [Cell<u64>; OPERATOR_COUNT],
}

impl CounterSet {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts one rejected evaluation.
    pub fn add_rejected(&self) {
        self.rejected.set(self.rejected.get() + 1);
    }

    /// Rejected evaluations so far.
    pub fn rejected(&self) -> u64 {
        self.rejected.get()
    }

    /// Counts the constraint classes one evaluated candidate violates.
    pub fn note_violations(&self, timing: bool, area: bool, transition: bool) {
        if timing {
            self.timing_violations.set(self.timing_violations.get() + 1);
        }
        if area {
            self.area_violations.set(self.area_violations.get() + 1);
        }
        if transition {
            self.transition_violations.set(self.transition_violations.get() + 1);
        }
    }

    /// Counts one application of improvement operator `op` (dense index)
    /// and whether it changed the genome.
    pub fn note_improve(&self, op: usize, changed: bool) {
        self.improve_applied[op].set(self.improve_applied[op].get() + 1);
        if changed {
            self.improve_accepted[op].set(self.improve_accepted[op].get() + 1);
        }
    }

    /// Adds PV-DVS inner-loop iterations.
    pub fn add_dvs_iterations(&self, n: u64) {
        self.dvs_iterations.set(self.dvs_iterations.get() + n);
    }

    /// Counts `n` genomes served from the evaluation cache.
    pub fn add_cache_hits(&self, n: u64) {
        self.cache_hits.set(self.cache_hits.get() + n);
    }

    /// Counts `n` genomes that missed the evaluation cache.
    pub fn add_cache_misses(&self, n: u64) {
        self.cache_misses.set(self.cache_misses.get() + n);
    }

    /// Counts `n` genomes actually run through the inner loop.
    pub fn add_evaluated(&self, n: u64) {
        self.evaluated.set(self.evaluated.get() + n);
    }

    /// Counts `n` entries evicted from the evaluation cache.
    pub fn add_cache_evictions(&self, n: u64) {
        self.cache_evictions.set(self.cache_evictions.get() + n);
    }

    /// Adds another snapshot's totals onto this set. Addition commutes,
    /// so folding per-worker counters back in after a parallel batch
    /// yields thread-count-independent totals.
    pub fn merge(&self, other: &Counters) {
        self.rejected.set(self.rejected.get() + other.rejected);
        self.timing_violations
            .set(self.timing_violations.get() + other.timing_violations);
        self.area_violations.set(self.area_violations.get() + other.area_violations);
        self.transition_violations
            .set(self.transition_violations.get() + other.transition_violations);
        self.dvs_iterations.set(self.dvs_iterations.get() + other.dvs_iterations);
        self.cache_hits.set(self.cache_hits.get() + other.cache_hits);
        self.cache_misses.set(self.cache_misses.get() + other.cache_misses);
        self.evaluated.set(self.evaluated.get() + other.evaluated);
        self.cache_evictions.set(self.cache_evictions.get() + other.cache_evictions);
        for (cell, &v) in self.improve_applied.iter().zip(&other.improve_applied) {
            cell.set(cell.get() + v);
        }
        for (cell, &v) in self.improve_accepted.iter().zip(&other.improve_accepted) {
            cell.set(cell.get() + v);
        }
    }

    /// Freezes the current totals.
    pub fn snapshot(&self) -> Counters {
        Counters {
            rejected: self.rejected.get(),
            timing_violations: self.timing_violations.get(),
            area_violations: self.area_violations.get(),
            transition_violations: self.transition_violations.get(),
            dvs_iterations: self.dvs_iterations.get(),
            cache_hits: self.cache_hits.get(),
            cache_misses: self.cache_misses.get(),
            evaluated: self.evaluated.get(),
            cache_evictions: self.cache_evictions.get(),
            improve_applied: self.improve_applied.iter().map(Cell::get).collect(),
            improve_accepted: self.improve_accepted.iter().map(Cell::get).collect(),
        }
    }

    /// Overwrites the totals with checkpointed values. Operator vectors
    /// shorter than [`OPERATOR_COUNT`] leave the tail at zero.
    pub fn restore(&self, counters: &Counters) {
        self.rejected.set(counters.rejected);
        self.timing_violations.set(counters.timing_violations);
        self.area_violations.set(counters.area_violations);
        self.transition_violations.set(counters.transition_violations);
        self.dvs_iterations.set(counters.dvs_iterations);
        self.cache_hits.set(counters.cache_hits);
        self.cache_misses.set(counters.cache_misses);
        self.evaluated.set(counters.evaluated);
        self.cache_evictions.set(counters.cache_evictions);
        for (cell, &v) in self.improve_applied.iter().zip(&counters.improve_applied) {
            cell.set(v);
        }
        for (cell, &v) in self.improve_accepted.iter().zip(&counters.improve_accepted) {
            cell.set(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_restore_round_trip() {
        let set = CounterSet::new();
        set.add_rejected();
        set.note_violations(true, false, true);
        set.note_improve(2, true);
        set.note_improve(2, false);
        set.add_dvs_iterations(9);
        let snap = set.snapshot();
        assert_eq!(snap.rejected, 1);
        assert_eq!(snap.timing_violations, 1);
        assert_eq!(snap.area_violations, 0);
        assert_eq!(snap.transition_violations, 1);
        assert_eq!(snap.dvs_iterations, 9);
        assert_eq!(snap.improve_applied, vec![0, 0, 2, 0]);
        assert_eq!(snap.improve_accepted, vec![0, 0, 1, 0]);

        let other = CounterSet::new();
        other.restore(&snap);
        assert_eq!(other.snapshot(), snap);
    }

    #[test]
    fn cache_counters_round_trip_and_merge() {
        let set = CounterSet::new();
        set.add_cache_hits(3);
        set.add_cache_misses(5);
        set.add_evaluated(4);
        set.add_cache_evictions(2);
        let snap = set.snapshot();
        assert_eq!(snap.cache_hits, 3);
        assert_eq!(snap.cache_misses, 5);
        assert_eq!(snap.evaluated, 4);
        assert_eq!(snap.cache_evictions, 2);
        assert!((snap.cache_hit_rate() - 3.0 / 8.0).abs() < 1e-12);
        assert_eq!(Counters::default().cache_hit_rate(), 0.0);

        let other = CounterSet::new();
        other.restore(&snap);
        assert_eq!(other.snapshot(), snap);

        // Merging a worker snapshot adds component-wise.
        let worker = CounterSet::new();
        worker.add_rejected();
        worker.add_dvs_iterations(7);
        worker.add_evaluated(2);
        worker.note_improve(1, true);
        set.merge(&worker.snapshot());
        let merged = set.snapshot();
        assert_eq!(merged.rejected, 1);
        assert_eq!(merged.dvs_iterations, 7);
        assert_eq!(merged.evaluated, 6);
        assert_eq!(merged.improve_applied, vec![0, 1, 0, 0]);
        assert_eq!(merged.improve_accepted, vec![0, 1, 0, 0]);
    }
}
