//! The typed event model.

use serde::{Deserialize, Serialize};

use crate::timing::PhaseTiming;

/// Number of improvement operators tracked by [`Counters`] (the paper's
/// shut-down, area, timing and transition strategies, in that order).
pub const OPERATOR_COUNT: usize = 4;

/// Display names of the improvement operators, indexed like the
/// `improve_*` vectors of [`Counters`].
pub const OPERATOR_NAMES: [&str; OPERATOR_COUNT] = ["shutdown", "area", "timing", "transition"];

/// One telemetry event. Serialises externally tagged, so a JSONL trace
/// reads `{"Generation": {...}}` per line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// The run began (or resumed).
    RunStart(RunStart),
    /// A GA generation completed.
    Generation(GenerationEvent),
    /// Accumulated timing of one inner-loop phase.
    Phase(PhaseTiming),
    /// A non-fatal problem occurred.
    Warning(Warning),
    /// An accumulated trace span (collapsed-stack path + wall time).
    Span(SpanEvent),
    /// The run finished.
    Summary(RunSummary),
}

/// An accumulated wall-time span of a traced region, identified by a
/// flamegraph-style collapsed-stack path.
///
/// Spans carry the job's trace identifier end to end: the serve layer
/// mints one ID per job at submission, the synthesis core emits its
/// phase spans under that ID, and the journal persists it — so a status
/// response, a trace line and a journal record of the same job all
/// agree. `momsynth profile` folds these lines into a per-phase
/// self-time report.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanEvent {
    /// Identifier threading all spans of one traced unit of work
    /// (typically one job attempt). Empty for untraced runs.
    #[serde(default)]
    pub trace_id: String,
    /// `;`-separated path from the root span down to this region, e.g.
    /// `run;fitness_eval;voltage_scaling` — the collapsed-stack format
    /// flamegraph tooling expects.
    pub path: String,
    /// Total nanoseconds accumulated in this region (children
    /// included; self time is derived by subtracting child paths).
    pub nanos: u64,
    /// Number of individual spans folded into this total.
    pub spans: u64,
}

/// Identity of a starting synthesis run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunStart {
    /// Name of the system being synthesised.
    pub system: String,
    /// GA seed.
    pub seed: u64,
    /// `true` for the probability-aware flow, `false` for the
    /// probability-neglecting baseline.
    pub probability_aware: bool,
    /// Whether voltage scaling is enabled.
    pub dvs: bool,
    /// Number of operational modes.
    pub modes: u64,
    /// Genome length (mapping loci across all modes).
    pub genome_len: u64,
    /// When resuming from a checkpoint, the generation it froze.
    pub resumed_generation: Option<u64>,
    /// Provable Eq. 1 power lower bound p̄_LB of the pre-synthesis static
    /// analyzer, in mW (`0.0` in traces written before the analyzer
    /// existed).
    pub power_lower_bound_mw: f64,
    /// Fraction of (task, candidate PE) pairs the static analyzer proved
    /// infeasible and pruned from the genome domain, in `[0, 1]`.
    pub pruned_domain_ratio: f64,
    /// Trace identifier threading this run's spans, status records and
    /// journal entries together. Empty in traces written before tracing
    /// existed and for untraced runs.
    #[serde(default)]
    pub trace_id: String,
}

/// Cumulative run counters, carried by every [`GenerationEvent`] and
/// persisted in checkpoints so resumed traces stay continuous.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counters {
    /// Evaluations rejected (errored, panicked or non-finite fitness).
    pub rejected: u64,
    /// Evaluated candidates that violated a timing constraint.
    pub timing_violations: u64,
    /// Evaluated candidates that violated an area constraint.
    pub area_violations: u64,
    /// Evaluated candidates that violated a transition-time constraint.
    pub transition_violations: u64,
    /// Total PV-DVS inner-loop iterations spent.
    pub dvs_iterations: u64,
    /// Genomes whose cost was served by the evaluation cache.
    pub cache_hits: u64,
    /// Genomes that missed the evaluation cache.
    pub cache_misses: u64,
    /// Genomes actually run through the constructive inner loop. At most
    /// `cache_misses`: identical genomes within one batch are priced once.
    pub evaluated: u64,
    /// Entries evicted from the evaluation cache to make room. Absent
    /// (zero) in traces written before eviction accounting existed.
    #[serde(default)]
    pub cache_evictions: u64,
    /// Applications of each improvement operator (see [`OPERATOR_NAMES`]).
    pub improve_applied: Vec<u64>,
    /// Applications that actually changed the genome, per operator.
    pub improve_accepted: Vec<u64>,
}

impl Counters {
    /// Fraction of cost lookups answered from the evaluation cache,
    /// `0.0` when nothing was looked up.
    pub fn cache_hit_rate(&self) -> f64 {
        let lookups = self.cache_hits + self.cache_misses;
        if lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / lookups as f64
        }
    }
}

impl Default for Counters {
    fn default() -> Self {
        Self {
            rejected: 0,
            timing_violations: 0,
            area_violations: 0,
            transition_violations: 0,
            dvs_iterations: 0,
            cache_hits: 0,
            cache_misses: 0,
            evaluated: 0,
            cache_evictions: 0,
            improve_applied: vec![0; OPERATOR_COUNT],
            improve_accepted: vec![0; OPERATOR_COUNT],
        }
    }
}

/// Per-generation fitness statistics.
///
/// All fields except [`GenerationEvent::evals_per_sec`] are deterministic
/// for a fixed seed: a run and its checkpoint-resumed counterpart produce
/// identical generation events once [`GenerationEvent::normalized`]
/// zeroes the throughput. Live consumers (a job server's status endpoint,
/// a progress view) read throughput and cache efficiency directly from
/// the periodic event instead of waiting for the end-of-run
/// [`RunSummary`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GenerationEvent {
    /// Generation index (0 = initial population).
    pub generation: u64,
    /// Cumulative cost evaluations.
    pub evaluations: u64,
    /// Best cost in the run so far.
    pub best: f64,
    /// Mean cost of the current population.
    pub mean: f64,
    /// Worst cost of the current population.
    pub worst: f64,
    /// Generations without improvement so far.
    pub stagnation: u64,
    /// Live evaluation throughput since the run (or resume) started, in
    /// evaluations per second. Wall-clock derived: zeroed by
    /// [`GenerationEvent::normalized`] when comparing deterministic
    /// replays. Absent in traces written before this field existed.
    #[serde(default)]
    pub evals_per_sec: f64,
    /// Fraction of cost lookups served by the evaluation cache so far.
    /// Deterministic for a fixed seed (mirrors
    /// [`Counters::cache_hit_rate`]). Absent in older traces.
    #[serde(default)]
    pub cache_hit_rate: f64,
    /// Cumulative run counters at this generation.
    pub counters: Counters,
}

impl GenerationEvent {
    /// A copy with the wall-clock-derived throughput zeroed, for
    /// comparing the generation streams of deterministic replays (a run
    /// against its checkpoint-resumed counterpart). All other fields —
    /// `cache_hit_rate` included — are deterministic and survive.
    #[must_use]
    pub fn normalized(&self) -> Self {
        let mut g = self.clone();
        g.evals_per_sec = 0.0;
        g
    }
}

/// A non-fatal condition worth reporting.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Warning {
    /// Human-readable description.
    pub message: String,
}

/// An [`Event`] tagged with the job it belongs to.
///
/// A multi-job producer (the `momsynth serve` daemon) fans events from
/// concurrent synthesis runs into shared consumers — subscriber streams,
/// a combined log — which need to know *whose* generation just completed.
/// Per-job trace files stay plain [`Event`] lines so single-run tooling
/// and the resume tail-equivalence oracle keep working unchanged.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobEvent {
    /// Identifier of the job that produced the event.
    pub job: String,
    /// The underlying telemetry event.
    pub event: Event,
}

/// Power breakdown of one mode in a [`RunSummary`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModeSummary {
    /// Mode name.
    pub mode: String,
    /// Mode execution probability `Ψ_O`.
    pub probability: f64,
    /// Average dynamic power `p̄_O^dyn` in mW.
    pub dynamic_mw: f64,
    /// Static power `p̄_O^stat` of the powered components in mW.
    pub static_mw: f64,
    /// Total mode power in mW.
    pub total_mw: f64,
}

/// Machine-readable end-of-run metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Name of the synthesised system.
    pub system: String,
    /// `true` for the probability-aware flow.
    pub probability_aware: bool,
    /// Whether voltage scaling was enabled.
    pub dvs: bool,
    /// GA seed.
    pub seed: u64,
    /// Final probability-weighted average power p̄ (Eq. 1) in mW.
    pub average_power_mw: f64,
    /// Whether the best solution satisfies all constraints.
    pub feasible: bool,
    /// Per-mode dynamic/static power breakdown.
    pub modes: Vec<ModeSummary>,
    /// Why the optimisation stopped.
    pub stop_reason: String,
    /// Generations executed.
    pub generations: u64,
    /// Fitness evaluations performed.
    pub evaluations: u64,
    /// Evaluations rejected for faults.
    pub rejected: u64,
    /// Wall-clock optimisation time in seconds.
    pub wall_time_s: f64,
    /// Evaluation throughput (`evaluations / wall_time_s`).
    pub evals_per_sec: f64,
    /// Worker threads used for batch fitness evaluation.
    pub threads: u64,
    /// Fraction of cost lookups served by the evaluation cache.
    pub cache_hit_rate: f64,
    /// Provable Eq. 1 power lower bound p̄_LB of the pre-synthesis static
    /// analyzer, in mW.
    pub power_lower_bound_mw: f64,
    /// Relative optimality gap `(p̄ − p̄_LB) / p̄_LB` of the final
    /// solution against the static power lower bound (`0.0` when the
    /// bound is degenerate). Non-negative for every sound bound.
    pub optimality_gap: f64,
    /// Final cumulative counters.
    pub counters: Counters,
    /// Accumulated inner-loop phase timings.
    pub phases: Vec<PhaseTiming>,
}

impl RunSummary {
    /// A copy with every wall-clock-derived field zeroed, for comparing
    /// the summaries of deterministic replays (e.g. a run against its
    /// checkpoint-resumed counterpart). `threads` and `cache_hit_rate`
    /// survive normalisation: both are deterministic for a fixed seed.
    pub fn normalized(&self) -> Self {
        let mut s = self.clone();
        s.wall_time_s = 0.0;
        s.evals_per_sec = 0.0;
        s.phases = Vec::new();
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::Phase;

    #[test]
    fn events_round_trip_through_json() {
        let events = vec![
            Event::RunStart(RunStart {
                system: "s".into(),
                seed: 7,
                probability_aware: true,
                dvs: false,
                modes: 3,
                genome_len: 12,
                resumed_generation: Some(4),
                power_lower_bound_mw: 0.75,
                pruned_domain_ratio: 0.125,
                trace_id: "trace-1234".into(),
            }),
            Event::Generation(GenerationEvent {
                generation: 5,
                evaluations: 300,
                best: 1.25,
                mean: 2.5,
                worst: 9.0,
                stagnation: 1,
                evals_per_sec: 120.5,
                cache_hit_rate: 0.25,
                counters: Counters { rejected: 2, ..Counters::default() },
            }),
            Event::Phase(PhaseTiming {
                phase: Phase::ListScheduling,
                nanos: 12345,
                spans: 17,
                depth: 1,
            }),
            Event::Warning(Warning { message: "checkpoint not saved".into() }),
            Event::Span(SpanEvent {
                trace_id: "trace-1234".into(),
                path: "run;fitness_eval;voltage_scaling".into(),
                nanos: 98765,
                spans: 42,
            }),
        ];
        for event in events {
            let json = serde_json::to_string(&event).unwrap();
            let back: Event = serde_json::from_str(&json).unwrap();
            assert_eq!(back, event);
        }
    }

    #[test]
    fn generation_normalization_zeroes_only_throughput() {
        let g = GenerationEvent {
            generation: 3,
            evaluations: 90,
            best: 2.0,
            mean: 3.0,
            worst: 5.0,
            stagnation: 0,
            evals_per_sec: 750.0,
            cache_hit_rate: 0.5,
            counters: Counters::default(),
        };
        let norm = g.normalized();
        assert_eq!(norm.evals_per_sec, 0.0);
        assert_eq!(norm.cache_hit_rate, g.cache_hit_rate);
        assert_eq!(norm.best, g.best);
        assert_eq!(norm.counters, g.counters);
    }

    #[test]
    fn generation_events_without_live_progress_fields_still_parse() {
        // A trace line written before evals_per_sec/cache_hit_rate existed.
        let json = r#"{"Generation":{"generation":1,"evaluations":10,
            "best":1.0,"mean":2.0,"worst":3.0,"stagnation":0,
            "counters":{"rejected":0,"timing_violations":0,
            "area_violations":0,"transition_violations":0,
            "dvs_iterations":0,"cache_hits":0,"cache_misses":0,
            "evaluated":0,"improve_applied":[0,0,0,0],
            "improve_accepted":[0,0,0,0]}}}"#;
        let event: Event = serde_json::from_str(json).unwrap();
        let Event::Generation(g) = event else { panic!("not a generation") };
        assert_eq!(g.evals_per_sec, 0.0);
        assert_eq!(g.cache_hit_rate, 0.0);
        // Eviction accounting postdates this trace format too.
        assert_eq!(g.counters.cache_evictions, 0);
    }

    #[test]
    fn run_starts_without_trace_id_still_parse() {
        // A trace line written before span tracing existed.
        let json = r#"{"RunStart":{"system":"s","seed":1,
            "probability_aware":true,"dvs":false,"modes":2,
            "genome_len":8,"resumed_generation":null,
            "power_lower_bound_mw":0.0,"pruned_domain_ratio":0.0}}"#;
        let event: Event = serde_json::from_str(json).unwrap();
        let Event::RunStart(start) = event else { panic!("not a run start") };
        assert_eq!(start.trace_id, "");
    }

    #[test]
    fn span_events_are_externally_tagged_and_round_trip() {
        let span = SpanEvent {
            trace_id: "t-1".into(),
            path: "run;fitness_eval".into(),
            nanos: 1_000,
            spans: 3,
        };
        let json = serde_json::to_string(&Event::Span(span.clone())).unwrap();
        assert!(json.starts_with("{\"Span\""), "{json}");
        let back: Event = serde_json::from_str(&json).unwrap();
        assert_eq!(back, Event::Span(span));
    }

    #[test]
    fn events_are_externally_tagged_single_objects() {
        let json = serde_json::to_string(&Event::Warning(Warning { message: "m".into() }))
            .unwrap();
        assert!(json.starts_with("{\"Warning\""), "{json}");
    }

    #[test]
    fn summary_normalization_zeroes_wall_clock_fields() {
        let summary = RunSummary {
            system: "s".into(),
            probability_aware: true,
            dvs: true,
            seed: 0,
            average_power_mw: 3.5,
            feasible: true,
            modes: vec![ModeSummary {
                mode: "m".into(),
                probability: 1.0,
                dynamic_mw: 2.0,
                static_mw: 1.5,
                total_mw: 3.5,
            }],
            stop_reason: "stalled (no improvement)".into(),
            generations: 10,
            evaluations: 500,
            rejected: 0,
            wall_time_s: 1.25,
            evals_per_sec: 400.0,
            threads: 4,
            cache_hit_rate: 0.25,
            power_lower_bound_mw: 1.75,
            optimality_gap: 1.0,
            counters: Counters::default(),
            phases: vec![PhaseTiming {
                phase: Phase::FitnessEval,
                nanos: 99,
                spans: 500,
                depth: 0,
            }],
        };
        let norm = summary.normalized();
        assert_eq!(norm.wall_time_s, 0.0);
        assert_eq!(norm.evals_per_sec, 0.0);
        assert!(norm.phases.is_empty());
        assert_eq!(norm.average_power_mw, summary.average_power_mw);
        assert_eq!(norm.threads, summary.threads);
        assert_eq!(norm.cache_hit_rate, summary.cache_hit_rate);
        let json = serde_json::to_string(&Event::Summary(summary)).unwrap();
        let back: Event = serde_json::from_str(&json).unwrap();
        assert!(matches!(back, Event::Summary(_)));
    }
}
