//! Monotonic-clock phase timers for the synthesis inner loop.

use std::cell::Cell;
use std::time::Instant;

use serde::{Deserialize, Serialize};

/// An instrumented phase of the synthesis loop. `FitnessEval` is the
/// outer span (nest depth 0) covering one full candidate evaluation; the
/// remaining phases are its nested components (depth 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Phase {
    /// One full candidate evaluation (allocation through pricing).
    FitnessEval,
    /// Hardware core allocation derivation.
    CoreAllocation,
    /// List scheduling + communication mapping of all modes.
    ListScheduling,
    /// PV-DVS voltage scaling of all modes.
    VoltageScaling,
    /// Power reporting and penalty pricing.
    PowerPricing,
}

impl Phase {
    /// All phases, in [`Phase::index`] order.
    pub const ALL: [Self; 5] = [
        Self::FitnessEval,
        Self::CoreAllocation,
        Self::ListScheduling,
        Self::VoltageScaling,
        Self::PowerPricing,
    ];

    /// Number of phases.
    pub const COUNT: usize = Self::ALL.len();

    /// Dense index into accumulator arrays.
    pub fn index(self) -> usize {
        match self {
            Self::FitnessEval => 0,
            Self::CoreAllocation => 1,
            Self::ListScheduling => 2,
            Self::VoltageScaling => 3,
            Self::PowerPricing => 4,
        }
    }

    /// Nesting depth: 0 for the whole-evaluation span, 1 for its parts.
    pub fn depth(self) -> u8 {
        match self {
            Self::FitnessEval => 0,
            _ => 1,
        }
    }

    /// Stable lower-case name.
    pub fn name(self) -> &'static str {
        match self {
            Self::FitnessEval => "fitness_eval",
            Self::CoreAllocation => "core_allocation",
            Self::ListScheduling => "list_scheduling",
            Self::VoltageScaling => "voltage_scaling",
            Self::PowerPricing => "power_pricing",
        }
    }
}

/// Accumulated monotonic-clock spans of one phase.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseTiming {
    /// Which phase.
    pub phase: Phase,
    /// Total nanoseconds spent in this phase.
    pub nanos: u64,
    /// Number of spans measured.
    pub spans: u64,
    /// Nesting depth of the phase ([`Phase::depth`]).
    pub depth: u8,
}

/// Accumulates per-phase wall time with interior mutability, so shared
/// references (e.g. from a cost function taking `&self`) can measure.
///
/// When constructed disabled, [`PhaseAccumulator::measure`] runs the
/// closure without touching the clock — a single branch of overhead.
#[derive(Debug)]
pub struct PhaseAccumulator {
    enabled: bool,
    nanos: [Cell<u64>; Phase::COUNT],
    spans: [Cell<u64>; Phase::COUNT],
}

impl PhaseAccumulator {
    /// Creates an accumulator; `enabled` decides whether spans are timed.
    pub fn new(enabled: bool) -> Self {
        Self {
            enabled,
            nanos: std::array::from_fn(|_| Cell::new(0)),
            spans: std::array::from_fn(|_| Cell::new(0)),
        }
    }

    /// An accumulator that measures nothing.
    pub fn disabled() -> Self {
        Self::new(false)
    }

    /// Whether spans are being timed.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Turns measurement on.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Runs `f`, charging its wall time to `phase` when enabled.
    #[inline]
    pub fn measure<T>(&self, phase: Phase, f: impl FnOnce() -> T) -> T {
        if !self.enabled {
            return f();
        }
        let start = Instant::now();
        let out = f();
        let i = phase.index();
        self.nanos[i].set(self.nanos[i].get() + start.elapsed().as_nanos() as u64);
        self.spans[i].set(self.spans[i].get() + 1);
        out
    }

    /// Starts an RAII span charged to `phase` when the guard drops.
    /// Useful when a measured region runs to the end of a scope and a
    /// closure would be awkward.
    #[inline]
    pub fn measure_guard(&self, phase: Phase) -> PhaseGuard<'_> {
        PhaseGuard { acc: self, phase, start: self.enabled.then(Instant::now) }
    }

    /// Adds already-measured spans onto this accumulator, e.g. folding a
    /// parallel worker's timings back into the run-wide accumulator
    /// after a batch. No-op when this accumulator is disabled.
    pub fn absorb(&self, timings: &[PhaseTiming]) {
        if !self.enabled {
            return;
        }
        for t in timings {
            let i = t.phase.index();
            self.nanos[i].set(self.nanos[i].get() + t.nanos);
            self.spans[i].set(self.spans[i].get() + t.spans);
        }
    }

    /// Accumulated timings of every phase that measured at least one span.
    pub fn timings(&self) -> Vec<PhaseTiming> {
        Phase::ALL
            .iter()
            .filter(|p| self.spans[p.index()].get() > 0)
            .map(|&phase| PhaseTiming {
                phase,
                nanos: self.nanos[phase.index()].get(),
                spans: self.spans[phase.index()].get(),
                depth: phase.depth(),
            })
            .collect()
    }
}

/// An in-flight span from [`PhaseAccumulator::measure_guard`]; charges
/// its elapsed time on drop. Does nothing when the accumulator is
/// disabled.
#[derive(Debug)]
pub struct PhaseGuard<'a> {
    acc: &'a PhaseAccumulator,
    phase: Phase,
    start: Option<Instant>,
}

impl Drop for PhaseGuard<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let i = self.phase.index();
            self.acc.nanos[i].set(self.acc.nanos[i].get() + start.elapsed().as_nanos() as u64);
            self.acc.spans[i].set(self.acc.spans[i].get() + 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_indices_are_dense_and_consistent() {
        for (i, phase) in Phase::ALL.iter().enumerate() {
            assert_eq!(phase.index(), i);
        }
        assert_eq!(Phase::FitnessEval.depth(), 0);
        for phase in &Phase::ALL[1..] {
            assert_eq!(phase.depth(), 1);
        }
    }

    #[test]
    fn disabled_accumulator_measures_nothing() {
        let acc = PhaseAccumulator::disabled();
        let v = acc.measure(Phase::ListScheduling, || 41 + 1);
        assert_eq!(v, 42);
        assert!(acc.timings().is_empty());
    }

    #[test]
    fn enabled_accumulator_counts_spans_and_time() {
        let acc = PhaseAccumulator::new(true);
        for _ in 0..3 {
            acc.measure(Phase::VoltageScaling, || std::hint::black_box(0u64));
        }
        acc.measure(Phase::FitnessEval, || ());
        let timings = acc.timings();
        assert_eq!(timings.len(), 2);
        let vs = timings.iter().find(|t| t.phase == Phase::VoltageScaling).unwrap();
        assert_eq!(vs.spans, 3);
        assert_eq!(vs.depth, 1);
        let fe = timings.iter().find(|t| t.phase == Phase::FitnessEval).unwrap();
        assert_eq!(fe.spans, 1);
        assert_eq!(fe.depth, 0);
    }

    #[test]
    fn guard_charges_its_span_on_drop() {
        let acc = PhaseAccumulator::new(true);
        {
            let _g = acc.measure_guard(Phase::PowerPricing);
            std::hint::black_box(0u64);
        }
        let timings = acc.timings();
        assert_eq!(timings.len(), 1);
        assert_eq!(timings[0].phase, Phase::PowerPricing);
        assert_eq!(timings[0].spans, 1);

        let off = PhaseAccumulator::disabled();
        drop(off.measure_guard(Phase::PowerPricing));
        assert!(off.timings().is_empty());
    }

    #[test]
    fn absorb_folds_worker_timings_in() {
        let worker = PhaseAccumulator::new(true);
        worker.measure(Phase::ListScheduling, || std::hint::black_box(0u64));
        worker.measure(Phase::ListScheduling, || std::hint::black_box(0u64));

        let main = PhaseAccumulator::new(true);
        main.measure(Phase::ListScheduling, || std::hint::black_box(0u64));
        main.absorb(&worker.timings());
        let ls = main
            .timings()
            .into_iter()
            .find(|t| t.phase == Phase::ListScheduling)
            .unwrap();
        assert_eq!(ls.spans, 3);

        let off = PhaseAccumulator::disabled();
        off.absorb(&worker.timings());
        assert!(off.timings().is_empty());
    }

    #[test]
    fn phase_serializes_as_bare_string() {
        let json = serde_json::to_string(&Phase::CoreAllocation).unwrap();
        assert_eq!(json, "\"CoreAllocation\"");
        let back: Phase = serde_json::from_str(&json).unwrap();
        assert_eq!(back, Phase::CoreAllocation);
    }
}
