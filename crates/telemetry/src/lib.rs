//! Structured telemetry for synthesis runs.
//!
//! The GA co-synthesis loop is driven by quantities worth watching: the
//! per-generation fitness statistics and penalty counters, the efficacy
//! of the four improvement operators, and the wall-clock split between
//! core allocation, list scheduling, voltage scaling and power pricing.
//! This crate defines a typed event model for those quantities and a
//! [`Sink`] abstraction that is **zero-cost when disabled**: producers
//! check [`Sink::enabled`] before building an event, so a run without an
//! attached sink (or with the [`NullSink`]) pays only a branch.
//!
//! # Event model
//!
//! Events serialise as externally tagged JSON objects, one per line in a
//! JSONL trace (`{"Generation": {...}}`, `{"Summary": {...}}`, …):
//!
//! * [`RunStart`] — run identity: system, seed, flow flags, genome size;
//! * [`GenerationEvent`] — per-generation fitness statistics plus the
//!   cumulative [`Counters`] and live progress (`evals_per_sec`,
//!   `cache_hit_rate`). Apart from the wall-clock-derived throughput —
//!   zeroed by [`GenerationEvent::normalized`] — every field is
//!   deterministic, so the traces of a run and its checkpoint-resumed
//!   counterpart are comparable once normalised;
//! * [`PhaseTiming`] — accumulated monotonic-clock spans of one inner
//!   [`Phase`];
//! * [`Warning`] — a non-fatal condition (e.g. a failed checkpoint save);
//! * [`SpanEvent`] — an accumulated trace span: a flamegraph-style
//!   collapsed-stack path (`run;fitness_eval;voltage_scaling`) plus the
//!   job-wide trace ID, consumed by `momsynth profile`;
//! * [`RunSummary`] — the machine-readable end-of-run metrics: final
//!   p̄ per Eq. 1 of the paper, per-mode dynamic/static power breakdown,
//!   stop reason, wall time and evaluation throughput.
//!
//! # Sinks
//!
//! | sink | purpose |
//! |------|---------|
//! | [`NullSink`] | discard everything; `enabled() == false` |
//! | [`JsonlSink`] | append one JSON object per event to a file |
//! | [`MemorySink`] | collect events in memory (tests, harnesses) |
//! | [`ProgressSink`] | human one-line-per-generation view on stderr |
//! | [`WarningSink`] | print only [`Warning`] events to stderr |
//! | [`Fanout`] | broadcast to several sinks |
//!
//! # Example
//!
//! ```
//! use momsynth_telemetry::{Counters, Event, GenerationEvent, MemorySink, Sink};
//!
//! let sink = MemorySink::new();
//! if sink.enabled() {
//!     sink.record(&Event::Generation(GenerationEvent {
//!         generation: 0,
//!         evaluations: 50,
//!         best: 1.5,
//!         mean: 2.0,
//!         worst: 4.0,
//!         stagnation: 0,
//!         evals_per_sec: 0.0,
//!         cache_hit_rate: 0.0,
//!         counters: Counters::default(),
//!     }));
//! }
//! assert_eq!(sink.events().len(), 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod counters;
mod event;
mod sink;
mod timing;

pub use counters::CounterSet;
pub use event::{
    Counters, Event, GenerationEvent, JobEvent, ModeSummary, RunStart, RunSummary, SpanEvent,
    Warning, OPERATOR_COUNT, OPERATOR_NAMES,
};
pub use sink::{Fanout, JsonlSink, MemorySink, NullSink, ProgressSink, Sink, WarningSink, NULL};
pub use timing::{Phase, PhaseAccumulator, PhaseGuard, PhaseTiming};
