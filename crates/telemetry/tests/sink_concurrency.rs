//! Property-based concurrency tests of the shared sinks: many writer
// Not a loom model: proptest-driven stress with static atomics (loom
// atomics are not const-constructible). The loom coverage of these
// sinks lives in `loom_fanout.rs`.
#![cfg(not(loom))]
//! threads hammering one [`Fanout`] of a [`JsonlSink`] and a
//! [`MemorySink`] must never tear an event — every JSONL line parses as
//! a complete event and the in-memory copy holds exactly the multiset
//! that was written.

use momsynth_sync::sync::atomic::{AtomicU64, Ordering};
use momsynth_sync::sync::Arc;

use proptest::prelude::*;

use momsynth_telemetry::{Event, Fanout, JsonlSink, MemorySink, Sink, Warning};

/// Delegating adapter so one [`MemorySink`] can both live inside a
/// [`Fanout`] and be inspected after the writers join.
struct SharedMemory(Arc<MemorySink>);

impl Sink for SharedMemory {
    fn record(&self, event: &Event) {
        self.0.record(event);
    }
}

/// A fresh scratch file per proptest case (cases run sequentially, but
/// a rejected case must not collide with its successor).
fn scratch_path() -> std::path::PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let mut path = std::env::temp_dir();
    path.push(format!(
        "momsynth_sink_concurrency_{}_{}.jsonl",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    path
}

proptest! {
    // Thread-spawning cases are expensive; a few dozen random shapes is
    // plenty to catch a torn write.
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn concurrent_writers_never_tear_events(
        seed_batches in proptest::collection::vec(
            proptest::collection::vec(any::<u64>(), 1..40),
            2..5,
        ),
    ) {
        // Message bodies of varying length derived from the seeds, so
        // line lengths differ across writers and cases.
        let batches: Vec<Vec<String>> = seed_batches
            .iter()
            .map(|batch| {
                batch
                    .iter()
                    .map(|s| format!("{s:016x}{}", "x".repeat((s % 64) as usize)))
                    .collect()
            })
            .collect();
        let path = scratch_path();
        let memory = Arc::new(MemorySink::new());
        let mut fanout = Fanout::new();
        fanout.push(Box::new(JsonlSink::create(&path).expect("temp file")));
        fanout.push(Box::new(SharedMemory(Arc::clone(&memory))));
        let fanout = Arc::new(fanout);

        std::thread::scope(|scope| {
            for (w, batch) in batches.iter().enumerate() {
                let fanout = Arc::clone(&fanout);
                scope.spawn(move || {
                    for (i, text) in batch.iter().enumerate() {
                        fanout.record(&Event::Warning(Warning {
                            message: format!("{w}:{i}:{text}"),
                        }));
                    }
                });
            }
        });
        fanout.flush();

        let expected: usize = batches.iter().map(Vec::len).sum();

        // Every JSONL line is one complete event — a torn write would
        // leave a line that no longer parses.
        let text = std::fs::read_to_string(&path).expect("trace readable");
        let parsed: Vec<Event> = text
            .lines()
            .map(|line| serde_json::from_str(line).expect("complete JSONL line"))
            .collect();
        prop_assert_eq!(parsed.len(), expected);

        // The in-memory sink holds exactly the written multiset.
        let mut got: Vec<String> = memory
            .events()
            .iter()
            .map(|e| match e {
                Event::Warning(w) => w.message.clone(),
                other => panic!("unexpected event {other:?}"),
            })
            .collect();
        let mut want: Vec<String> = batches
            .iter()
            .enumerate()
            .flat_map(|(w, batch)| {
                batch.iter().enumerate().map(move |(i, text)| format!("{w}:{i}:{text}"))
            })
            .collect();
        got.sort();
        want.sort();
        prop_assert_eq!(got, want);

        // File lines must be the same multiset too (order may differ
        // between sinks under concurrency, content may not).
        let mut from_file: Vec<String> = parsed
            .iter()
            .map(|e| match e {
                Event::Warning(w) => w.message.clone(),
                other => panic!("unexpected event {other:?}"),
            })
            .collect();
        from_file.sort();
        let mut want_again: Vec<String> = got;
        want_again.sort();
        prop_assert_eq!(from_file, want_again);

        std::fs::remove_file(&path).ok();
    }
}
