//! Loom models for the telemetry fan-out path: concurrent writers
//! through a shared [`Fanout`] must deliver every event to every
//! member sink, whole, with an exact lock-free recorded count.
//!
//! Run with `RUSTFLAGS="--cfg loom" cargo test -p momsynth-telemetry
//! --test loom_fanout --release`; add `--cfg loom_mutation` to arm the
//! seeded lost-update in `MemorySink`'s recorded counter and assert
//! loom catches it.

#![cfg(loom)]

use momsynth_sync::sync::Arc;
use momsynth_sync::thread;
use momsynth_telemetry::{Event, Fanout, MemorySink, Sink, Warning};

fn warning(message: &str) -> Event {
    Event::Warning(Warning { message: message.into() })
}

/// Two threads record through one shared sink; both events must land
/// and the lock-free hint must agree.
fn memory_sink_model() {
    let sink = Arc::new(MemorySink::new());
    let writers: Vec<_> = ["a", "b"]
        .into_iter()
        .map(|tag| {
            let sink = Arc::clone(&sink);
            thread::spawn(move || sink.record(&warning(tag)))
        })
        .collect();
    for w in writers {
        w.join().unwrap();
    }
    assert_eq!(sink.events().len(), 2, "no event may be lost or torn");
    assert_eq!(sink.recorded_hint(), 2, "the lock-free count must be exact");
}

#[cfg(not(loom_mutation))]
#[test]
fn concurrent_memory_sink_records_are_atomic() {
    momsynth_sync::model(memory_sink_model);
}

/// With `--cfg loom_mutation` the recorded counter is a non-atomic
/// load+store; the model must fail, proving detection power.
#[cfg(loom_mutation)]
#[test]
fn seeded_lost_update_in_recorded_hint_is_caught() {
    let result = std::panic::catch_unwind(|| momsynth_sync::model(memory_sink_model));
    assert!(
        result.is_err(),
        "loom failed to detect the seeded lost-update in MemorySink::record"
    );
}

/// Delegating wrapper so the model keeps handles to sinks owned by the
/// fan-out.
struct Shared(Arc<MemorySink>);

impl Sink for Shared {
    fn record(&self, event: &Event) {
        self.0.record(event);
    }
}

#[cfg(not(loom_mutation))]
#[test]
fn fanout_delivers_every_event_to_every_member() {
    momsynth_sync::model(|| {
        let members = [Arc::new(MemorySink::new()), Arc::new(MemorySink::new())];
        let mut fanout = Fanout::new();
        for member in &members {
            fanout.push(Box::new(Shared(Arc::clone(member))));
        }
        let fanout = Arc::new(fanout);
        let writers: Vec<_> = ["x", "y"]
            .into_iter()
            .map(|tag| {
                let fanout = Arc::clone(&fanout);
                thread::spawn(move || fanout.record(&warning(tag)))
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        // Each member saw both events exactly once; members may
        // disagree on order (delivery is not globally serialized).
        for member in &members {
            let mut tags: Vec<String> = member
                .events()
                .iter()
                .map(|e| match e {
                    Event::Warning(w) => w.message.clone(),
                    other => panic!("unexpected event {other:?}"),
                })
                .collect();
            tags.sort();
            assert_eq!(tags, ["x", "y"], "every member sees every event once");
        }
    });
}
