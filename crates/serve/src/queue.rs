//! Bounded submission queue with typed back-pressure and priority
//! shedding.
//!
//! Ordering is strict priority (higher first), FIFO within a priority
//! (submission sequence). When the queue is full, a new submission
//! either sheds the lowest-priority queued entry (if the newcomer
//! outranks it — graceful degradation) or is rejected with a typed
//! retry-after hint (back-pressure). Submissions never hang and never
//! panic on a full queue.

use std::time::Instant;

/// One queued job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueueEntry {
    /// Job identifier.
    pub id: String,
    /// Scheduling priority (higher runs first).
    pub priority: u8,
    /// Submission sequence (FIFO tie-breaker).
    pub seq: u64,
    /// Earliest instant a worker may start this entry (retry backoff);
    /// `None` means immediately.
    pub not_before: Option<Instant>,
}

/// What happened to a submission.
#[derive(Debug, Clone, PartialEq)]
pub enum PushOutcome {
    /// The entry was enqueued; the queue had room.
    Enqueued,
    /// The queue was full; the named lowest-priority entry was shed to
    /// make room for this higher-priority submission.
    EnqueuedShedding(String),
    /// The queue is full of equal-or-higher-priority work: the caller
    /// should retry after roughly this many seconds.
    Rejected {
        /// Suggested client back-off in seconds.
        retry_after_s: f64,
    },
}

/// The bounded priority queue.
#[derive(Debug)]
pub struct PendingQueue {
    capacity: usize,
    entries: Vec<QueueEntry>,
}

impl PendingQueue {
    /// An empty queue holding at most `capacity` entries (min 1).
    pub fn new(capacity: usize) -> Self {
        Self { capacity: capacity.max(1), entries: Vec::new() }
    }

    /// Number of queued entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Offers an entry. Never blocks: a full queue sheds a strictly
    /// lower-priority entry or rejects the newcomer with a retry hint.
    pub fn push(&mut self, entry: QueueEntry) -> PushOutcome {
        if self.entries.len() < self.capacity {
            self.entries.push(entry);
            return PushOutcome::Enqueued;
        }
        // Full: find the weakest queued entry — lowest priority, and the
        // youngest (highest seq) among those, so older equal-priority
        // work is preserved.
        let weakest = self
            .entries
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| (e.priority, std::cmp::Reverse(e.seq)))
            .map(|(i, e)| (i, e.priority));
        match weakest {
            Some((index, weakest_priority)) if entry.priority > weakest_priority => {
                let shed = self.entries.swap_remove(index);
                self.entries.push(entry);
                PushOutcome::EnqueuedShedding(shed.id)
            }
            _ => PushOutcome::Rejected { retry_after_s: self.retry_after_s() },
        }
    }

    /// Re-enqueues a retry without shedding or rejection: retries were
    /// already admitted once and must not be lost to back-pressure. The
    /// capacity bound only applies to *new* submissions.
    pub fn push_retry(&mut self, entry: QueueEntry) {
        self.entries.push(entry);
    }

    /// Pops the highest-priority entry whose backoff has expired
    /// (priority desc, then seq asc). `None` when nothing is due.
    pub fn pop_due(&mut self, now: Instant) -> Option<QueueEntry> {
        let index = self
            .entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.not_before.is_none_or(|t| t <= now))
            .min_by_key(|(_, e)| (std::cmp::Reverse(e.priority), e.seq))
            .map(|(i, _)| i)?;
        Some(self.entries.swap_remove(index))
    }

    /// The earliest `not_before` among entries still backing off.
    pub fn earliest_not_before(&self) -> Option<Instant> {
        self.entries.iter().filter_map(|e| e.not_before).min()
    }

    /// Removes an entry by job id (cancellation while queued).
    pub fn remove(&mut self, id: &str) -> Option<QueueEntry> {
        let index = self.entries.iter().position(|e| e.id == id)?;
        Some(self.entries.swap_remove(index))
    }

    /// Suggested client back-off: scales with queue depth, clamped to
    /// a sane interactive range.
    fn retry_after_s(&self) -> f64 {
        (self.entries.len() as f64 * 0.5).clamp(0.5, 30.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: &str, priority: u8, seq: u64) -> QueueEntry {
        QueueEntry { id: id.into(), priority, seq, not_before: None }
    }

    #[test]
    fn pops_by_priority_then_fifo() {
        let mut q = PendingQueue::new(8);
        q.push(entry("a", 1, 1));
        q.push(entry("b", 5, 2));
        q.push(entry("c", 5, 3));
        q.push(entry("d", 0, 4));
        let now = Instant::now();
        let order: Vec<String> =
            std::iter::from_fn(|| q.pop_due(now).map(|e| e.id)).collect();
        assert_eq!(order, vec!["b", "c", "a", "d"]);
    }

    #[test]
    fn full_queue_rejects_equal_priority_with_retry_hint() {
        let mut q = PendingQueue::new(2);
        assert_eq!(q.push(entry("a", 3, 1)), PushOutcome::Enqueued);
        assert_eq!(q.push(entry("b", 3, 2)), PushOutcome::Enqueued);
        match q.push(entry("c", 3, 3)) {
            PushOutcome::Rejected { retry_after_s } => {
                assert!(retry_after_s >= 0.5, "{retry_after_s}");
            }
            other => panic!("expected rejection, got {other:?}"),
        }
        assert_eq!(q.len(), 2, "rejected submissions leave the queue unchanged");
    }

    #[test]
    fn full_queue_sheds_strictly_lower_priority_youngest_first() {
        let mut q = PendingQueue::new(3);
        q.push(entry("old-low", 1, 1));
        q.push(entry("young-low", 1, 2));
        q.push(entry("high", 7, 3));
        assert_eq!(
            q.push(entry("urgent", 5, 4)),
            PushOutcome::EnqueuedShedding("young-low".into()),
            "the youngest lowest-priority entry goes first"
        );
        assert_eq!(
            q.push(entry("urgent2", 5, 5)),
            PushOutcome::EnqueuedShedding("old-low".into())
        );
        // Now everything queued outranks or equals priority 5.
        assert!(matches!(q.push(entry("late", 5, 6)), PushOutcome::Rejected { .. }));
    }

    #[test]
    fn backoff_entries_are_skipped_until_due() {
        let mut q = PendingQueue::new(4);
        let now = Instant::now();
        let later = now + std::time::Duration::from_secs(60);
        q.push_retry(QueueEntry {
            id: "retry".into(),
            priority: 9,
            seq: 1,
            not_before: Some(later),
        });
        q.push(entry("fresh", 0, 2));
        // The backing-off entry outranks but is not due: pop skips it.
        assert_eq!(q.pop_due(now).unwrap().id, "fresh");
        assert!(q.pop_due(now).is_none());
        assert_eq!(q.earliest_not_before(), Some(later));
        assert_eq!(q.pop_due(later).unwrap().id, "retry");
    }

    #[test]
    fn cancellation_removes_queued_entries() {
        let mut q = PendingQueue::new(4);
        q.push(entry("a", 0, 1));
        q.push(entry("b", 0, 2));
        assert_eq!(q.remove("a").unwrap().id, "a");
        assert!(q.remove("a").is_none());
        assert_eq!(q.len(), 1);
    }
}
