//! Synthesis-as-a-service: a crash-safe resident job server for
//! multi-mode co-synthesis.
//!
//! The server accepts system specifications as jobs, runs them through
//! [`momsynth_core::Synthesizer`] on a bounded worker pool, and makes
//! every accepted job's fate durable:
//!
//! * **Durable journal** — every lifecycle transition is written with an
//!   fsync + atomic-rename protocol ([`Journal`]); a SIGKILL at any
//!   point leaves each job either in a terminal state or resumable.
//! * **Crash recovery** — on restart, non-terminal jobs are re-enqueued
//!   and resume from their periodic [`momsynth_core::Checkpoint`], so an
//!   interrupted run continues as an exact trajectory tail (the same
//!   guarantee `momsynth run --resume` gives, applied automatically).
//! * **Back-pressure** — the submission queue is bounded; when it is
//!   full of equal-or-higher-priority work, submissions are rejected
//!   with a typed retry-after hint instead of queuing without bound.
//! * **Graceful degradation** — a higher-priority submission to a full
//!   queue sheds the lowest-priority queued job (recorded as
//!   [`JobState::Shed`]) rather than failing the important work.
//! * **Retry policy** — transient failures (worker panics, checkpoint
//!   I/O) retry with exponential backoff; permanent ones (provably
//!   infeasible specs, verification breaches) fail fast.
//! * **Graceful shutdown** — SIGTERM/Ctrl-C checkpoints every running
//!   job and leaves it `Running` in the journal for the next start.
//!
//! * **Observability** — every scheduler, journal and synthesis
//!   instrument lives in one [`momsynth_metrics::Registry`]
//!   ([`ServeMetrics`]): queue depth, admissions/sheds/rejections,
//!   worker utilisation, journal write + fsync and recovery-scan
//!   latencies, and per-terminal-state job lifecycle latencies.
//!   Snapshots are served over the protocol (`metrics`), exposed in
//!   Prometheus text format ([`spawn_exposition`]), and journaled —
//!   per job at its terminal transition and periodically for the whole
//!   server. Each job carries a trace id threaded from submission
//!   through the GA's span events to its journal record.
//!
//! Clients speak a line-delimited JSON protocol ([`protocol`]) over a
//! Unix-domain socket or stdin/stdout ([`socket`]); live telemetry
//! streams to subscribers as job-tagged events.

pub mod gate;
pub mod job;
pub mod journal;
pub mod metrics;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod sink;
pub mod socket;

pub use gate::WorkGate;
pub use job::{JobProgress, JobRecord, JobSpec, JobState};
pub use journal::{Journal, JournalError, JournalTimers};
pub use metrics::{spawn_exposition, ServeMetrics};
pub use queue::{PendingQueue, PushOutcome, QueueEntry};
pub use sink::SubscriberHub;
pub use server::{JobStatus, Server, ServerConfig, SubmitRejection};
