//! Transports for the job-server protocol: a Unix-domain socket for
//! resident operation and a stdin/stdout oneshot mode for scripting.

use std::io::{BufRead, BufReader, Write};
use momsynth_sync::sync::atomic::{AtomicBool, Ordering};
use momsynth_sync::sync::{mpsc, Arc};
use std::time::Duration;

use crate::protocol::{handle_line, to_line, Reply};
use crate::server::Server;

/// Forwards streamed subscription lines to `out` until the subscribed
/// job is terminal, the peer hangs up, or `stop` is raised.
fn pump_stream(
    server: &Server,
    out: &mut impl Write,
    rx: &mpsc::Receiver<String>,
    job: Option<&str>,
    stop: &AtomicBool,
) {
    loop {
        match rx.recv_timeout(Duration::from_millis(100)) {
            Ok(line) => {
                if writeln!(out, "{line}").and_then(|()| out.flush()).is_err() {
                    return;
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => return,
        }
        if stop.load(Ordering::Acquire) {
            return;
        }
        if let Some(id) = job {
            let terminal = server
                .status(id)
                .is_none_or(|s| s.record.state.is_terminal());
            if terminal {
                // Drain whatever the worker already broadcast.
                while let Ok(line) = rx.try_recv() {
                    if writeln!(out, "{line}").is_err() {
                        return;
                    }
                }
                let _ = out.flush();
                return;
            }
        }
    }
}

/// Serves the protocol on `input`/`output` until EOF or a `shutdown`
/// command (oneshot/scripting mode). Returns whether a `shutdown`
/// command was received.
pub fn serve_stdio(
    server: &Server,
    input: impl std::io::Read,
    mut output: impl Write,
    stop: &AtomicBool,
) -> bool {
    let reader = BufReader::new(input);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        if stop.load(Ordering::Acquire) {
            break;
        }
        match handle_line(server, &line) {
            Reply::Line(v) => {
                if writeln!(output, "{}", to_line(&v)).and_then(|()| output.flush()).is_err() {
                    break;
                }
            }
            Reply::Stream { ack, rx, job } => {
                if writeln!(output, "{}", to_line(&ack)).and_then(|()| output.flush()).is_err() {
                    break;
                }
                pump_stream(server, &mut output, &rx, job.as_deref(), stop);
            }
            Reply::Shutdown(v) => {
                let _ = writeln!(output, "{}", to_line(&v)).and_then(|()| output.flush());
                return true;
            }
        }
    }
    false
}

/// Accepts connections on a Unix-domain socket at `path` and serves the
/// protocol to each on its own thread, until `stop` is raised (SIGTERM,
/// Ctrl-C, or a client's `shutdown` command). Removes a stale socket
/// file before binding and cleans up on exit.
///
/// # Errors
///
/// Fails when the socket cannot be bound.
#[cfg(unix)]
pub fn serve_unix(
    server: &Arc<Server>,
    path: &std::path::Path,
    stop: &Arc<AtomicBool>,
) -> std::io::Result<()> {
    use std::os::unix::net::UnixListener;

    std::fs::remove_file(path).ok();
    let listener = UnixListener::bind(path)?;
    // Nonblocking accept so the loop can observe `stop` promptly: a
    // blocking accept would pin the thread until the next client.
    listener.set_nonblocking(true)?;
    let mut connections: Vec<std::thread::JoinHandle<()>> = Vec::new();

    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _addr)) => {
                let server = Arc::clone(server);
                let stop = Arc::clone(stop);
                connections.push(std::thread::spawn(move || {
                    // A read deadline keeps idle connections from
                    // outliving a server shutdown.
                    stream
                        .set_read_timeout(Some(Duration::from_millis(200)))
                        .ok();
                    serve_connection(&server, &stream, &stop);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
        connections.retain(|c| !c.is_finished());
    }
    for connection in connections {
        let _ = connection.join();
    }
    std::fs::remove_file(path).ok();
    Ok(())
}

/// Serves one Unix-socket connection line by line. A `shutdown` command
/// raises `stop`, ending the accept loop and every other connection.
#[cfg(unix)]
fn serve_connection(
    server: &Arc<Server>,
    stream: &std::os::unix::net::UnixStream,
    stop: &Arc<AtomicBool>,
) {
    let mut reader = BufReader::new(stream);
    let mut writer = stream;
    let mut line = String::new();
    while !stop.load(Ordering::Acquire) {
        match reader.read_line(&mut line) {
            Ok(0) => return,
            Ok(_) => {}
            // A timed-out read may have appended a partial line; keep it
            // and let the next read complete it.
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) =>
            {
                continue;
            }
            Err(_) => return,
        }
        let request = std::mem::take(&mut line);
        if request.trim().is_empty() {
            continue;
        }
        match handle_line(server, &request) {
            Reply::Line(v) => {
                if writeln!(writer, "{}", to_line(&v)).and_then(|()| writer.flush()).is_err() {
                    return;
                }
            }
            Reply::Stream { ack, rx, job } => {
                if writeln!(writer, "{}", to_line(&ack)).and_then(|()| writer.flush()).is_err() {
                    return;
                }
                pump_stream(server, &mut writer, &rx, job.as_deref(), stop);
            }
            Reply::Shutdown(v) => {
                let _ = writeln!(writer, "{}", to_line(&v)).and_then(|()| writer.flush());
                stop.store(true, Ordering::Release);
                return;
            }
        }
    }
}
