//! The scheduler work gate: one mutex-guarded state block, a condition
//! variable announcing new work, and the shutdown latch — the admission
//! half of the server's Mutex+Condvar protocol, factored out so the
//! loom models in `tests/loom_queue.rs` check the exact production
//! type.
//!
//! The protocol rules the models prove:
//!
//! - consumers re-check their predicate under the lock before every
//!   wait, so a notification arriving while no one waits is harmless;
//! - producers call [`WorkGate::notify_work`] after **every** push
//!   (even when the queue was non-empty), because with several
//!   consumers a single coalesced notification can strand a waiter —
//!   this is exactly the `loom_mutation` seeded bug;
//! - correctness never relies on the timed backstop the worker loop
//!   uses for retry-backoff expiry: the models wait unbounded.

use std::time::Duration;

use momsynth_sync::sync::atomic::{AtomicBool, Ordering};
use momsynth_sync::sync::{Condvar, Mutex, MutexGuard};

/// Mutex-guarded scheduler state plus the work-announcement condition
/// variable and the shutdown latch.
///
/// Generic over the state block so the loom models can drive a bare
/// [`crate::queue::PendingQueue`] through the identical code path the
/// server uses with its full `Sched` block.
pub struct WorkGate<S> {
    state: Mutex<S>,
    work_ready: Condvar,
    shutdown: AtomicBool,
}

impl<S> WorkGate<S> {
    /// A gate around `state`, not yet shut down.
    pub fn new(state: S) -> Self {
        Self {
            state: Mutex::new(state),
            work_ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
        }
    }

    /// Locks the state block. A poisoned lock is a bug upstream (a
    /// panic while holding the scheduler state); propagate it loudly.
    pub fn lock(&self) -> MutexGuard<'_, S> {
        self.state.lock().expect("work-gate state poisoned")
    }

    /// Blocks on the work condition until notified. The caller must
    /// re-check its predicate afterwards (condition variables admit
    /// spurious wakeups and stale notifications).
    pub fn wait_for_work<'a>(&self, guard: MutexGuard<'a, S>) -> MutexGuard<'a, S> {
        self.work_ready.wait(guard).expect("work-gate state poisoned")
    }

    /// Like [`Self::wait_for_work`] with a timeout backstop; the worker
    /// loop uses this so retry-backoff expiries are observed without a
    /// dedicated timer thread. Correctness must never depend on the
    /// timeout (the loom models wait unbounded).
    pub fn wait_for_work_timeout<'a>(
        &self,
        guard: MutexGuard<'a, S>,
        timeout: Duration,
    ) -> MutexGuard<'a, S> {
        let (guard, _) = self
            .work_ready
            .wait_timeout(guard, timeout)
            .expect("work-gate state poisoned");
        guard
    }

    /// Announces that work may be available. `queued` is the queue
    /// depth observed when the work was produced; the correct protocol
    /// ignores it and wakes every waiter on every push.
    ///
    /// The `loom_mutation` variant applies the tempting "only the
    /// 0→1 transition needs a wakeup" coalescing, which loses
    /// notifications when a second item is pushed before the first is
    /// popped — `tests/loom_queue.rs` proves loom catches the
    /// resulting stranded-consumer deadlock.
    pub fn notify_work(&self, queued: usize) {
        #[cfg(loom_mutation)]
        {
            if queued == 1 {
                self.work_ready.notify_one();
            }
        }
        #[cfg(not(loom_mutation))]
        {
            let _ = queued;
            self.work_ready.notify_all();
        }
    }

    /// Latches shutdown and wakes every waiter so blocked consumers
    /// observe it promptly. Release pairs with the Acquire in
    /// [`Self::is_shutting_down`]: a consumer that sees the latch also
    /// sees every write made before shutdown began.
    pub fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        self.work_ready.notify_all();
    }

    /// Whether shutdown has been requested (Acquire; see
    /// [`Self::begin_shutdown`]).
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }
}

impl<S> std::fmt::Debug for WorkGate<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkGate")
            .field("shutdown", &self.is_shutting_down())
            .finish_non_exhaustive()
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use momsynth_sync::sync::Arc;
    use std::collections::VecDeque;

    #[test]
    fn gate_round_trips_items_between_threads() {
        let gate = Arc::new(WorkGate::new(VecDeque::new()));
        let consumer = {
            let gate = Arc::clone(&gate);
            momsynth_sync::thread::spawn(move || {
                let mut q = gate.lock();
                loop {
                    if let Some(v) = q.pop_front() {
                        return v;
                    }
                    q = gate.wait_for_work_timeout(q, Duration::from_millis(50));
                }
            })
        };
        {
            let mut q = gate.lock();
            q.push_back(7u32);
            let queued = q.len();
            drop(q);
            gate.notify_work(queued);
        }
        assert_eq!(consumer.join().unwrap(), 7);
    }

    #[test]
    fn shutdown_latch_is_sticky_and_wakes_waiters() {
        let gate = Arc::new(WorkGate::new(()));
        assert!(!gate.is_shutting_down());
        let waiter = {
            let gate = Arc::clone(&gate);
            momsynth_sync::thread::spawn(move || {
                let mut guard = gate.lock();
                while !gate.is_shutting_down() {
                    guard = gate.wait_for_work_timeout(guard, Duration::from_millis(50));
                }
            })
        };
        gate.begin_shutdown();
        waiter.join().unwrap();
        assert!(gate.is_shutting_down());
    }
}
