//! Server-level instruments and the Prometheus-style exposition
//! listener.
//!
//! [`ServeMetrics`] bundles every instrument the job server maintains —
//! scheduler gauges, admission and retry counters, journal I/O and job
//! lifecycle latency histograms — around one shared
//! [`momsynth_metrics::Registry`]. Every handle is a cheap clone of an
//! atomic cell; when the registry is disabled each operation is a single
//! branch, so a server run with metrics off does no extra work.
//!
//! [`spawn_exposition`] serves the registry over a minimal HTTP/1.1
//! listener in Prometheus text exposition format, so a stock Prometheus
//! scrape config (or `curl`) can watch a resident server.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use momsynth_sync::sync::atomic::{AtomicBool, Ordering};
use momsynth_sync::sync::Arc;
use std::time::{Duration, Instant};

use momsynth_metrics::{
    Counter, Gauge, Histogram, MetricsSnapshot, Registry, DEFAULT_DURATION_BOUNDS_S,
    DEFAULT_LATENCY_BOUNDS_S,
};

use crate::job::JobState;

/// The terminal states instrumented per label (everything
/// [`JobState::is_terminal`] accepts).
const TERMINAL_STATES: [JobState; 5] = [
    JobState::Verified,
    JobState::Failed,
    JobState::Cancelled,
    JobState::TimedOut,
    JobState::Shed,
];

/// All server-side instruments, pre-registered against one registry so
/// a scrape taken before any job ran already shows the full taxonomy.
#[derive(Debug, Clone)]
pub struct ServeMetrics {
    registry: Registry,
    started: Instant,
    /// Jobs currently waiting in the submission queue.
    pub queue_depth: Gauge,
    /// Worker slots currently executing a job attempt.
    pub workers_busy: Gauge,
    /// Seconds this server process has been up (set at snapshot time).
    pub uptime: Gauge,
    /// Submissions accepted into the queue.
    pub jobs_submitted: Counter,
    /// Submissions rejected by back-pressure (or during shutdown).
    pub jobs_rejected: Counter,
    /// Queued jobs evicted by a higher-priority submission.
    pub jobs_shed: Counter,
    /// Attempts re-queued after a transient failure (retry/backoff).
    pub jobs_retried: Counter,
    /// Admission-to-first-attempt latency.
    pub queue_wait: Histogram,
    /// Whole durable-write latency (tmp + fsync + backup + rename).
    pub journal_write: Histogram,
    /// The fsync portion of a durable write.
    pub journal_fsync: Histogram,
    /// Recovery scan (`Journal::load_all`) latency at startup.
    pub recovery_scan: Histogram,
    /// Per-terminal-state counter and submission-to-terminal latency.
    terminal: Vec<(JobState, Counter, Histogram)>,
}

impl ServeMetrics {
    /// Registers every server instrument family against `registry`.
    /// With a disabled registry every handle is a no-op.
    pub fn new(registry: &Registry) -> Self {
        let terminal = TERMINAL_STATES
            .iter()
            .map(|&state| {
                let label = state.to_string();
                let labels: &[(&str, &str)] = &[("state", label.as_str())];
                (
                    state,
                    registry.counter(
                        "momsynth_jobs_terminal_total",
                        "Jobs that reached a terminal state, by state",
                        labels,
                    ),
                    registry.histogram(
                        "momsynth_job_duration_seconds",
                        "Submission-to-terminal-state latency, by terminal state",
                        &DEFAULT_DURATION_BOUNDS_S,
                        labels,
                    ),
                )
            })
            .collect();
        Self {
            registry: registry.clone(),
            started: Instant::now(),
            queue_depth: registry.gauge(
                "momsynth_queue_depth",
                "Jobs waiting in the submission queue",
                &[],
            ),
            workers_busy: registry.gauge(
                "momsynth_workers_busy",
                "Worker slots currently executing a job attempt",
                &[],
            ),
            uptime: registry.gauge(
                "momsynth_server_uptime_seconds",
                "Seconds since the server started",
                &[],
            ),
            jobs_submitted: registry.counter(
                "momsynth_jobs_submitted_total",
                "Submissions accepted into the queue",
                &[],
            ),
            jobs_rejected: registry.counter(
                "momsynth_jobs_rejected_total",
                "Submissions rejected by back-pressure or shutdown",
                &[],
            ),
            jobs_shed: registry.counter(
                "momsynth_jobs_shed_total",
                "Queued jobs evicted by higher-priority submissions",
                &[],
            ),
            jobs_retried: registry.counter(
                "momsynth_jobs_retried_total",
                "Attempts re-queued after a transient failure",
                &[],
            ),
            queue_wait: registry.histogram(
                "momsynth_job_queue_wait_seconds",
                "Admission-to-first-attempt latency",
                &DEFAULT_DURATION_BOUNDS_S,
                &[],
            ),
            journal_write: registry.histogram(
                "momsynth_journal_write_seconds",
                "Durable journal write latency (fsync + atomic rename)",
                &DEFAULT_LATENCY_BOUNDS_S,
                &[],
            ),
            journal_fsync: registry.histogram(
                "momsynth_journal_fsync_seconds",
                "fsync portion of a durable journal write",
                &DEFAULT_LATENCY_BOUNDS_S,
                &[],
            ),
            recovery_scan: registry.histogram(
                "momsynth_journal_recovery_scan_seconds",
                "Journal recovery scan latency at startup",
                &DEFAULT_LATENCY_BOUNDS_S,
                &[],
            ),
            terminal,
        }
    }

    /// The registry behind these instruments.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Seconds since the server started.
    pub fn uptime_s(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Records one job reaching terminal `state`; `age_s` is its
    /// submission-to-now latency when the submission time is known.
    pub fn job_terminal(&self, state: JobState, age_s: Option<f64>) {
        if let Some((_, counter, duration)) =
            self.terminal.iter().find(|(s, _, _)| *s == state)
        {
            counter.inc();
            if let Some(age) = age_s {
                duration.observe(age);
            }
        }
    }

    /// A point-in-time snapshot of every instrument (uptime refreshed
    /// first, so scrapes and journal snapshots carry it).
    pub fn snapshot(&self) -> MetricsSnapshot {
        #[allow(clippy::cast_possible_truncation)]
        self.uptime.set(self.started.elapsed().as_secs() as i64);
        self.registry.snapshot()
    }
}

/// Binds `addr` (e.g. `127.0.0.1:9464`; port 0 picks a free port) and
/// serves `GET /metrics` in Prometheus text exposition format until
/// `shutdown` is raised. Returns the bound address and the listener
/// thread's handle.
///
/// # Errors
///
/// Propagates the bind failure.
pub fn spawn_exposition(
    addr: &str,
    metrics: ServeMetrics,
    shutdown: Arc<AtomicBool>,
) -> std::io::Result<(SocketAddr, std::thread::JoinHandle<()>)> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let handle = std::thread::Builder::new()
        .name("momsynth-metrics-http".into())
        .spawn(move || loop {
            if shutdown.load(Ordering::Acquire) {
                return;
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    // One scrape at a time: exposition is tiny and a
                    // failed client must never take the server down.
                    if let Err(e) = serve_scrape(stream, &metrics) {
                        eprintln!("warning: metrics scrape failed: {e}");
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(25));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(25)),
            }
        })?;
    Ok((local, handle))
}

/// Answers one HTTP request on `stream`: the exposition text for
/// `GET /metrics` (or `/`), 404 otherwise.
fn serve_scrape(stream: TcpStream, metrics: &ServeMetrics) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 || header == "\r\n" || header == "\n" {
            break;
        }
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let mut stream = stream;
    if method == "GET" && (path == "/metrics" || path == "/") {
        let body = metrics.snapshot().to_prometheus();
        write!(
            stream,
            "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len(),
        )?;
    } else {
        let body = "not found\n";
        write!(
            stream,
            "HTTP/1.1 404 Not Found\r\nContent-Type: text/plain\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len(),
        )?;
    }
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    #[test]
    fn disabled_registry_yields_noop_instruments() {
        let metrics = ServeMetrics::new(&Registry::disabled());
        metrics.jobs_submitted.inc();
        metrics.queue_depth.set(7);
        metrics.queue_wait.observe(1.0);
        metrics.job_terminal(JobState::Verified, Some(2.0));
        let snapshot = metrics.snapshot();
        assert!(snapshot.counters.is_empty());
        assert!(snapshot.gauges.is_empty());
        assert!(snapshot.histograms.is_empty());
    }

    #[test]
    fn enabled_metrics_pre_register_every_family() {
        let metrics = ServeMetrics::new(&Registry::new());
        let snapshot = metrics.snapshot();
        let text = snapshot.to_prometheus();
        for family in [
            "momsynth_queue_depth",
            "momsynth_workers_busy",
            "momsynth_server_uptime_seconds",
            "momsynth_jobs_submitted_total",
            "momsynth_jobs_rejected_total",
            "momsynth_jobs_shed_total",
            "momsynth_jobs_retried_total",
            "momsynth_jobs_terminal_total",
            "momsynth_job_duration_seconds",
            "momsynth_job_queue_wait_seconds",
            "momsynth_journal_write_seconds",
            "momsynth_journal_fsync_seconds",
            "momsynth_journal_recovery_scan_seconds",
        ] {
            assert!(text.contains(family), "exposition must mention {family}");
        }
        for state in ["verified", "failed", "cancelled", "timed-out", "shed"] {
            assert!(
                text.contains(&format!("state=\"{state}\"")),
                "terminal label {state} must be pre-registered"
            );
        }
    }

    #[test]
    fn terminal_bookkeeping_counts_and_times_by_state() {
        let metrics = ServeMetrics::new(&Registry::new());
        metrics.job_terminal(JobState::Verified, Some(1.5));
        metrics.job_terminal(JobState::Verified, None);
        metrics.job_terminal(JobState::Failed, Some(0.25));
        let snapshot = metrics.snapshot();
        assert_eq!(
            snapshot.counter_value("momsynth_jobs_terminal_total", &[("state", "verified")]),
            Some(2)
        );
        assert_eq!(
            snapshot.counter_value("momsynth_jobs_terminal_total", &[("state", "failed")]),
            Some(1)
        );
        let verified = snapshot
            .histogram_sample("momsynth_job_duration_seconds", &[("state", "verified")])
            .expect("duration family");
        assert_eq!(verified.count, 1, "only known ages are observed");
    }

    #[test]
    fn exposition_listener_answers_scrapes_and_404s() {
        let metrics = ServeMetrics::new(&Registry::new());
        metrics.jobs_submitted.inc();
        let shutdown = Arc::new(AtomicBool::new(false));
        let (addr, handle) =
            spawn_exposition("127.0.0.1:0", metrics, Arc::clone(&shutdown)).unwrap();

        let scrape = |path: &str| -> String {
            let mut stream = TcpStream::connect(addr).unwrap();
            write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
            let mut body = String::new();
            stream.read_to_string(&mut body).unwrap();
            body
        };
        let ok = scrape("/metrics");
        assert!(ok.starts_with("HTTP/1.1 200 OK"), "{ok}");
        assert!(ok.contains("momsynth_jobs_submitted_total 1"), "{ok}");
        assert!(ok.contains("momsynth_server_uptime_seconds"), "{ok}");
        let missing = scrape("/nope");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");

        shutdown.store(true, Ordering::Release);
        handle.join().unwrap();
    }
}
