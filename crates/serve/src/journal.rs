//! The crash-safe job journal: one directory tree holding everything a
//! restarted server needs to account for every job it ever accepted.
//!
//! ```text
//! <root>/
//!   jobs/<id>.json         lifecycle record, rewritten atomically on
//!                          every transition (fsync + rename, previous
//!                          good record kept as `.bak`)
//!   specs/<id>.json        the submitted spec, written once
//!   checkpoints/<id>.json  Checkpoint v3 of the in-flight run
//!   traces/<id>.jsonl      telemetry trace, appended across attempts
//!   results/<id>.json      final solution report of a verified job
//!   metrics/<id>.json      metrics snapshot taken when the job went
//!                          terminal; metrics/server.json is the
//!                          periodic whole-server snapshot
//! ```
//!
//! Records are the source of truth for recovery: a torn primary falls
//! back to its `.bak` sibling, so a crash mid-write (or external
//! corruption) never loses a job's lifecycle.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::Instant;

use momsynth_metrics::{Histogram, MetricsSnapshot};

use crate::job::{JobRecord, JobSpec};

/// A failure while reading or writing the journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalError {
    /// The offending path.
    pub path: PathBuf,
    /// What went wrong.
    pub reason: String,
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "journal error on `{}`: {}", self.path.display(), self.reason)
    }
}

impl std::error::Error for JournalError {}

/// Latency instruments for durable writes. Defaults to disabled
/// handles, so an un-instrumented journal pays only a branch per write.
#[derive(Debug, Clone, Default)]
pub struct JournalTimers {
    /// Whole durable-write latency (tmp + fsync + backup + rename).
    pub write: Histogram,
    /// The fsync portion alone.
    pub fsync: Histogram,
}

/// Handle to a journal directory tree. Cloneable and thread-safe: all
/// state lives on disk, and every write is atomic.
#[derive(Debug, Clone)]
pub struct Journal {
    root: PathBuf,
    timers: JournalTimers,
}

/// `path` with `suffix` appended to its final component.
fn sibling(path: &Path, suffix: &str) -> PathBuf {
    let mut s = path.as_os_str().to_owned();
    s.push(suffix);
    PathBuf::from(s)
}

/// Durable atomic write: contents go to an fsync'd temporary sibling,
/// the previous file (if any) is hard-linked to `.bak`, then the
/// temporary is renamed over the target. `timers` observe the whole
/// write and its fsync portion (no-ops when metrics are disabled).
fn write_durable(
    path: &Path,
    contents: &str,
    timers: &JournalTimers,
) -> Result<(), JournalError> {
    let started = Instant::now();
    let err = |reason: String| JournalError { path: path.to_owned(), reason };
    let tmp = sibling(path, ".tmp");
    let mut file = std::fs::File::create(&tmp).map_err(|e| err(e.to_string()))?;
    file.write_all(contents.as_bytes()).map_err(|e| err(e.to_string()))?;
    let fsync_started = Instant::now();
    file.sync_all().map_err(|e| err(e.to_string()))?;
    timers.fsync.observe(fsync_started.elapsed().as_secs_f64());
    drop(file);
    if path.exists() {
        let bak = sibling(path, ".bak");
        std::fs::remove_file(&bak).ok();
        std::fs::hard_link(path, &bak).ok();
    }
    let outcome = std::fs::rename(&tmp, path).map_err(|e| err(e.to_string()));
    timers.write.observe(started.elapsed().as_secs_f64());
    outcome
}

/// Reads and parses `path`, falling back to the `.bak` sibling when the
/// primary is missing, torn or corrupt. Returns the value and whether
/// the fallback was used.
fn read_resilient<T: serde::de::DeserializeOwned>(
    path: &Path,
) -> Result<(T, bool), JournalError> {
    let parse = |p: &Path| -> Result<T, String> {
        let text = std::fs::read_to_string(p).map_err(|e| e.to_string())?;
        serde_json::from_str(&text).map_err(|e| e.to_string())
    };
    match parse(path) {
        Ok(v) => Ok((v, false)),
        Err(primary_reason) => match parse(&sibling(path, ".bak")) {
            Ok(v) => Ok((v, true)),
            Err(_) => Err(JournalError { path: path.to_owned(), reason: primary_reason }),
        },
    }
}

impl Journal {
    /// Opens (creating if needed) the journal tree rooted at `root`.
    ///
    /// # Errors
    ///
    /// Fails when the directories cannot be created.
    pub fn open(root: &Path) -> Result<Self, JournalError> {
        for sub in ["jobs", "specs", "checkpoints", "traces", "results", "metrics"] {
            let dir = root.join(sub);
            std::fs::create_dir_all(&dir)
                .map_err(|e| JournalError { path: dir.clone(), reason: e.to_string() })?;
        }
        Ok(Self { root: root.to_owned(), timers: JournalTimers::default() })
    }

    /// Attaches latency instruments to every subsequent durable write.
    pub fn set_timers(&mut self, timers: JournalTimers) {
        self.timers = timers;
    }

    /// The journal's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Path of a job's lifecycle record.
    pub fn record_path(&self, id: &str) -> PathBuf {
        self.root.join("jobs").join(format!("{id}.json"))
    }

    /// Path of a job's submitted spec.
    pub fn spec_path(&self, id: &str) -> PathBuf {
        self.root.join("specs").join(format!("{id}.json"))
    }

    /// Path of a job's synthesis checkpoint.
    pub fn checkpoint_path(&self, id: &str) -> PathBuf {
        self.root.join("checkpoints").join(format!("{id}.json"))
    }

    /// Path of a job's telemetry trace (JSONL, appended across attempts).
    pub fn trace_path(&self, id: &str) -> PathBuf {
        self.root.join("traces").join(format!("{id}.jsonl"))
    }

    /// Path of a verified job's solution report.
    pub fn result_path(&self, id: &str) -> PathBuf {
        self.root.join("results").join(format!("{id}.json"))
    }

    /// Path of the metrics snapshot taken when job `id` went terminal.
    pub fn metrics_path(&self, id: &str) -> PathBuf {
        self.root.join("metrics").join(format!("{id}.json"))
    }

    /// Path of the periodically refreshed whole-server metrics snapshot.
    pub fn server_metrics_path(&self) -> PathBuf {
        self.root.join("metrics").join("server.json")
    }

    /// Durably writes a job's lifecycle record.
    ///
    /// # Errors
    ///
    /// Propagates write failures; callers decide whether a failed
    /// journal write is transient.
    pub fn write_record(&self, record: &JobRecord) -> Result<(), JournalError> {
        let path = self.record_path(&record.id);
        let json = serde_json::to_string_pretty(record)
            .map_err(|e| JournalError { path: path.clone(), reason: e.to_string() })?;
        write_durable(&path, &json, &self.timers)
    }

    /// Durably writes a job's spec (once, at submission).
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn write_spec(&self, id: &str, spec: &JobSpec) -> Result<(), JournalError> {
        let path = self.spec_path(id);
        let json = serde_json::to_string_pretty(spec)
            .map_err(|e| JournalError { path: path.clone(), reason: e.to_string() })?;
        write_durable(&path, &json, &self.timers)
    }

    /// Durably writes a verified job's solution report.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn write_result(&self, id: &str, report: &serde_json::Value) -> Result<(), JournalError> {
        let path = self.result_path(id);
        let json = serde_json::to_string_pretty(report)
            .map_err(|e| JournalError { path: path.clone(), reason: e.to_string() })?;
        write_durable(&path, &json, &self.timers)
    }

    /// Durably writes a metrics snapshot to `path` (a job's terminal
    /// snapshot or the periodic server snapshot).
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn write_metrics(
        &self,
        path: &Path,
        snapshot: &MetricsSnapshot,
    ) -> Result<(), JournalError> {
        let json = serde_json::to_string_pretty(snapshot)
            .map_err(|e| JournalError { path: path.to_owned(), reason: e.to_string() })?;
        write_durable(path, &json, &self.timers)
    }

    /// Loads a journaled metrics snapshot, if present.
    pub fn load_metrics(&self, path: &Path) -> Option<MetricsSnapshot> {
        read_resilient(path).ok().map(|(v, _)| v)
    }

    /// Loads a job's spec, tolerating a torn primary.
    ///
    /// # Errors
    ///
    /// Fails when neither the primary nor the backup parses.
    pub fn load_spec(&self, id: &str) -> Result<JobSpec, JournalError> {
        read_resilient(&self.spec_path(id)).map(|(spec, _)| spec)
    }

    /// Loads a verified job's solution report, if present.
    pub fn load_result(&self, id: &str) -> Option<serde_json::Value> {
        read_resilient(&self.result_path(id)).ok().map(|(v, _)| v)
    }

    /// Scans the journal and returns every job record, with a list of
    /// recovery notes (records read from a `.bak`, unreadable files).
    /// Unreadable records are reported, never silently dropped on the
    /// floor — but they cannot be resumed.
    pub fn load_all(&self) -> (Vec<JobRecord>, Vec<String>) {
        let mut records = Vec::new();
        let mut notes = Vec::new();
        let dir = self.root.join("jobs");
        let entries = match std::fs::read_dir(&dir) {
            Ok(entries) => entries,
            Err(e) => {
                notes.push(format!("cannot scan `{}`: {e}", dir.display()));
                return (records, notes);
            }
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or_default();
            if !name.ends_with(".json") || name.ends_with(".tmp") {
                continue;
            }
            match read_resilient::<JobRecord>(&path) {
                Ok((record, false)) => records.push(record),
                Ok((record, true)) => {
                    notes.push(format!(
                        "record `{}` was torn; recovered from backup at state `{}`",
                        path.display(),
                        record.state
                    ));
                    records.push(record);
                }
                Err(e) => notes.push(format!("unreadable job record: {e}")),
            }
        }
        records.sort_by_key(|r| r.seq);
        (records, notes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobState;

    fn tmp_root(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("momsynth_journal_{}_{name}", std::process::id()));
        std::fs::remove_dir_all(&p).ok();
        p
    }

    #[test]
    fn records_survive_a_torn_primary() {
        let root = tmp_root("torn");
        let journal = Journal::open(&root).unwrap();
        let mut record = JobRecord::new("job-000001".into(), 1, 3);
        journal.write_record(&record).unwrap();
        record.transition(JobState::Running, "attempt 1");
        journal.write_record(&record).unwrap();

        // Tear the primary: load_all falls back to the previous good
        // record and reports the recovery.
        let path = journal.record_path("job-000001");
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() / 3]).unwrap();
        let (records, notes) = journal.load_all();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].state, JobState::Queued, "backup is the previous state");
        assert_eq!(notes.len(), 1);
        assert!(notes[0].contains("recovered"), "{}", notes[0]);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn load_all_returns_records_in_submission_order() {
        let root = tmp_root("order");
        let journal = Journal::open(&root).unwrap();
        for seq in [3u64, 1, 2] {
            let record = JobRecord::new(format!("job-{seq:06}"), seq, 0);
            journal.write_record(&record).unwrap();
        }
        let (records, notes) = journal.load_all();
        assert!(notes.is_empty(), "{notes:?}");
        let seqs: Vec<u64> = records.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3]);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn unreadable_records_are_reported_not_dropped_silently() {
        let root = tmp_root("garbage");
        let journal = Journal::open(&root).unwrap();
        std::fs::write(journal.record_path("job-000009"), "not json").unwrap();
        let (records, notes) = journal.load_all();
        assert!(records.is_empty());
        assert_eq!(notes.len(), 1);
        assert!(notes[0].contains("unreadable"), "{}", notes[0]);
        std::fs::remove_dir_all(&root).ok();
    }
}
