//! The resident job server: worker pool, scheduling state, watchdog,
//! crash recovery and graceful shutdown.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use momsynth_sync::sync::atomic::{AtomicBool, Ordering};
use momsynth_sync::sync::{mpsc, Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use momsynth_core::{
    invariant_breach, Checkpoint, CheckpointSpec, StopReason, SynthControl, SynthesisError,
    Synthesizer,
};
use momsynth_metrics::{MetricsSink, MetricsSnapshot, Registry};
use momsynth_telemetry::{Event, Fanout, JsonlSink, RunSummary, Sink, Warning};

use crate::gate::WorkGate;
use crate::job::{JobProgress, JobRecord, JobSpec, JobState};
use crate::journal::{Journal, JournalTimers};
use crate::metrics::ServeMetrics;
use crate::queue::{PendingQueue, PushOutcome, QueueEntry};
use crate::sink::{ServeSink, SubscriberHub};

/// Server tuning knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerConfig {
    /// Journal directory (created if missing).
    pub root: PathBuf,
    /// Worker slots running synthesis jobs concurrently (min 1).
    pub workers: usize,
    /// Bound of the submission queue; beyond it, back-pressure applies.
    pub queue_capacity: usize,
    /// Checkpoint a running job every this many generations.
    pub checkpoint_every: usize,
    /// Additionally checkpoint when this much wall-clock time passed
    /// since the last save (bounds the crash-recovery window).
    pub checkpoint_every_seconds: Option<f64>,
    /// Retries after a transient failure before the job fails for good.
    pub max_retries: u32,
    /// Base of the exponential retry backoff, in seconds (attempt `n`
    /// waits `base * 2^(n-1)`).
    pub retry_backoff_s: f64,
    /// Whether the in-process metrics registry is enabled. Disabled,
    /// every instrument is a no-op handle and the server does no
    /// metrics work at all.
    pub metrics: bool,
}

impl ServerConfig {
    /// Defaults rooted at `root`: 2 workers, queue of 16, checkpoint
    /// every 5 generations or 2 seconds, 2 retries with 1 s base backoff.
    pub fn new(root: PathBuf) -> Self {
        Self {
            root,
            workers: 2,
            queue_capacity: 16,
            checkpoint_every: 5,
            checkpoint_every_seconds: Some(2.0),
            max_retries: 2,
            retry_backoff_s: 1.0,
            metrics: true,
        }
    }
}

/// Why a submission was not accepted. Typed back-pressure: the client
/// should retry after `retry_after_s` seconds.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitRejection {
    /// Suggested client back-off in seconds.
    pub retry_after_s: f64,
    /// Human-readable reason.
    pub reason: String,
}

impl std::fmt::Display for SubmitRejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} (retry after {:.1} s)", self.reason, self.retry_after_s)
    }
}

impl std::error::Error for SubmitRejection {}

/// A job's externally visible state: the journal record plus live
/// progress when the job is (or was) running.
#[derive(Debug, Clone, PartialEq)]
pub struct JobStatus {
    /// The lifecycle record.
    pub record: JobRecord,
    /// Latest per-generation progress, if any generation completed.
    pub progress: Option<JobProgress>,
}

/// Why a job's stop flag was raised (the GA only reports `Cancelled`,
/// so the server remembers which actor asked).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StopCause {
    Cancel,
    Timeout,
    Shutdown,
}

/// Book-keeping for a job currently owned by a worker.
#[derive(Debug)]
struct RunningHandle {
    stop: Arc<AtomicBool>,
    cause: Option<StopCause>,
    deadline: Option<Instant>,
}

/// Mutable scheduling state, guarded by one mutex.
#[derive(Debug)]
struct Sched {
    pending: PendingQueue,
    jobs: HashMap<String, JobRecord>,
    progress: HashMap<String, Arc<Mutex<Option<JobProgress>>>>,
    running: HashMap<String, RunningHandle>,
    next_seq: u64,
}

/// State shared between the public handle, workers and the watchdog.
#[derive(Debug)]
struct Shared {
    config: ServerConfig,
    journal: Journal,
    /// Scheduler state + work announcement + shutdown latch. The
    /// admission/shed protocol on this gate is loom-checked in
    /// `tests/loom_queue.rs`.
    gate: WorkGate<Sched>,
    hub: Arc<SubscriberHub>,
    recovery_notes: Vec<String>,
    metrics: ServeMetrics,
}

impl Shared {
    /// Applies and persists a state transition. Journal-write failures
    /// are reported on stderr but never block the state machine — the
    /// in-memory state stays authoritative until the next successful
    /// write.
    ///
    /// This is the single site where jobs go terminal, so terminal
    /// bookkeeping (per-state counters, lifecycle latency, the per-job
    /// metrics snapshot) lives here and fires exactly once per job.
    fn transition(&self, sched: &mut Sched, id: &str, state: JobState, note: &str) {
        if let Some(record) = sched.jobs.get_mut(id) {
            record.transition(state, note);
            let snapshot = record.clone();
            if let Err(e) = self.journal.write_record(&snapshot) {
                eprintln!("warning: {e}");
            }
            if state.is_terminal() {
                self.metrics.job_terminal(state, snapshot.age_s());
                if self.metrics.registry().is_enabled() {
                    let metrics_snapshot = self.metrics.snapshot();
                    let path = self.journal.metrics_path(id);
                    if let Err(e) = self.journal.write_metrics(&path, &metrics_snapshot) {
                        eprintln!("warning: {e}");
                    }
                }
            }
        }
    }

    /// Mirrors the pending-queue length into its gauge.
    fn note_queue_depth(&self, sched: &Sched) {
        self.metrics.queue_depth.set(i64::try_from(sched.pending.len()).unwrap_or(i64::MAX));
    }
}

/// The resident job server. Dropping the handle shuts it down
/// gracefully (checkpointing all running jobs).
#[derive(Debug)]
pub struct Server {
    shared: Arc<Shared>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Opens the journal at `config.root`, recovers every non-terminal
    /// job it finds (re-enqueued; in-flight runs resume from their
    /// checkpoints), and starts the worker pool and watchdog.
    ///
    /// # Errors
    ///
    /// Fails when the journal directory cannot be created.
    pub fn start(config: ServerConfig) -> Result<Self, crate::journal::JournalError> {
        let registry =
            if config.metrics { Registry::new() } else { Registry::disabled() };
        let metrics = ServeMetrics::new(&registry);
        let mut journal = Journal::open(&config.root)?;
        journal.set_timers(JournalTimers {
            write: metrics.journal_write.clone(),
            fsync: metrics.journal_fsync.clone(),
        });
        let scan_started = Instant::now();
        let (records, mut notes) = journal.load_all();
        metrics.recovery_scan.observe(scan_started.elapsed().as_secs_f64());

        let mut sched = Sched {
            pending: PendingQueue::new(config.queue_capacity),
            jobs: HashMap::new(),
            progress: HashMap::new(),
            running: HashMap::new(),
            next_seq: 1,
        };
        for mut record in records {
            sched.next_seq = sched.next_seq.max(record.seq + 1);
            if !record.state.is_terminal() {
                let from = record.state;
                record.transition(JobState::Queued, &format!("recovered from `{from}`"));
                if let Err(e) = journal.write_record(&record) {
                    notes.push(format!("cannot persist recovery of `{}`: {e}", record.id));
                }
                // Recovered jobs bypass the capacity bound: they were
                // admitted before the crash and must not be lost to
                // back-pressure now.
                sched.pending.push_retry(QueueEntry {
                    id: record.id.clone(),
                    priority: record.priority,
                    seq: record.seq,
                    not_before: None,
                });
                notes.push(format!("recovered `{}` (was `{from}`)", record.id));
            }
            sched.jobs.insert(record.id.clone(), record);
        }
        metrics.queue_depth.set(i64::try_from(sched.pending.len()).unwrap_or(i64::MAX));

        let shared = Arc::new(Shared {
            config: config.clone(),
            journal,
            gate: WorkGate::new(sched),
            hub: Arc::new(SubscriberHub::default()),
            recovery_notes: notes,
            metrics,
        });

        let mut threads = Vec::new();
        for index in 0..config.workers.max(1) {
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("momsynth-worker-{index}"))
                    .spawn(move || worker_loop(&shared))
                    // lint: allow(unwrap-in-serve-path) startup, before any request
                    .expect("spawn worker"),
            );
        }
        {
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name("momsynth-watchdog".into())
                    .spawn(move || watchdog_loop(&shared))
                    // lint: allow(unwrap-in-serve-path) startup, before any request
                    .expect("spawn watchdog"),
            );
        }
        Ok(Self { shared, threads })
    }

    /// What recovery found when the journal was opened (restart
    /// diagnostics; empty on a fresh journal).
    pub fn recovery_notes(&self) -> &[String] {
        &self.shared.recovery_notes
    }

    /// The journal this server persists to.
    pub fn journal(&self) -> &Journal {
        &self.shared.journal
    }

    /// Submits a job. Returns its id, or a typed rejection when the
    /// queue is full of equal-or-higher-priority work (back-pressure)
    /// or the server is shutting down.
    ///
    /// # Errors
    ///
    /// [`SubmitRejection`] carries the suggested retry delay.
    pub fn submit(&self, spec: &JobSpec) -> Result<String, SubmitRejection> {
        if self.shared.gate.is_shutting_down() {
            self.shared.metrics.jobs_rejected.inc();
            return Err(SubmitRejection {
                retry_after_s: 5.0,
                reason: "server is shutting down".into(),
            });
        }
        let mut sched = self.lock_sched();
        let seq = sched.next_seq;
        let id = format!("job-{seq:06}");
        let outcome = sched.pending.push(QueueEntry {
            id: id.clone(),
            priority: spec.priority,
            seq,
            not_before: None,
        });
        let shed = match outcome {
            PushOutcome::Rejected { retry_after_s } => {
                self.shared.metrics.jobs_rejected.inc();
                return Err(SubmitRejection {
                    retry_after_s,
                    reason: "submission queue is full".into(),
                });
            }
            PushOutcome::Enqueued => None,
            PushOutcome::EnqueuedShedding(shed) => Some(shed),
        };
        sched.next_seq += 1;
        if let Err(e) = self.shared.journal.write_spec(&id, spec) {
            // Without a durable spec the job could never survive a
            // restart; reject rather than accept a half-recorded job.
            sched.pending.remove(&id);
            self.shared.metrics.jobs_rejected.inc();
            self.shared.note_queue_depth(&sched);
            return Err(SubmitRejection {
                retry_after_s: 1.0,
                reason: format!("cannot persist job spec: {e}"),
            });
        }
        let record = JobRecord::new(id.clone(), seq, spec.priority);
        if let Err(e) = self.shared.journal.write_record(&record) {
            sched.pending.remove(&id);
            self.shared.metrics.jobs_rejected.inc();
            self.shared.note_queue_depth(&sched);
            return Err(SubmitRejection {
                retry_after_s: 1.0,
                reason: format!("cannot persist job record: {e}"),
            });
        }
        sched.jobs.insert(id.clone(), record);
        self.shared.metrics.jobs_submitted.inc();
        if let Some(shed_id) = shed {
            self.shared.metrics.jobs_shed.inc();
            self.shared.transition(
                &mut sched,
                &shed_id,
                JobState::Shed,
                &format!("evicted by higher-priority `{id}`"),
            );
        }
        self.shared.note_queue_depth(&sched);
        let queued = sched.pending.len();
        drop(sched);
        self.shared.gate.notify_work(queued);
        Ok(id)
    }

    /// A job's current status, or `None` for an unknown id.
    pub fn status(&self, id: &str) -> Option<JobStatus> {
        let sched = self.lock_sched();
        let record = sched.jobs.get(id)?.clone();
        let progress = sched
            .progress
            .get(id)
            .and_then(|p| *p.lock().expect("progress poisoned"));
        Some(JobStatus { record, progress })
    }

    /// All jobs, in submission order.
    pub fn list(&self) -> Vec<JobStatus> {
        let sched = self.lock_sched();
        let mut statuses: Vec<JobStatus> = sched
            .jobs
            .values()
            .map(|record| JobStatus {
                record: record.clone(),
                progress: sched
                    .progress
                    .get(&record.id)
                    .and_then(|p| *p.lock().expect("progress poisoned")),
            })
            .collect();
        statuses.sort_by_key(|s| s.record.seq);
        statuses
    }

    /// A verified job's solution report, if it exists.
    pub fn result(&self, id: &str) -> Option<serde_json::Value> {
        self.shared.journal.load_result(id)
    }

    /// Cancels a job: removed immediately while queued, cooperatively
    /// stopped while running. Idempotent on terminal jobs. Returns the
    /// state observed at call time, or `None` for an unknown id.
    pub fn cancel(&self, id: &str) -> Option<JobState> {
        let mut sched = self.lock_sched();
        let state = sched.jobs.get(id)?.state;
        match state {
            JobState::Queued => {
                sched.pending.remove(id);
                self.shared.note_queue_depth(&sched);
                self.shared.transition(&mut sched, id, JobState::Cancelled, "while queued");
            }
            JobState::Analyzing | JobState::Running => {
                if let Some(handle) = sched.running.get_mut(id) {
                    if handle.cause.is_none() {
                        handle.cause = Some(StopCause::Cancel);
                        // Release pairs with the GA loop's Acquire load:
                        // the cause recorded above must be visible to
                        // whoever observes the cancellation.
                        handle.stop.store(true, Ordering::Release);
                    }
                }
            }
            _ => {}
        }
        Some(state)
    }

    /// The server-side instrument bundle (cheap handle clones around
    /// one shared registry). Disabled when `config.metrics` is false.
    pub fn metrics(&self) -> ServeMetrics {
        self.shared.metrics.clone()
    }

    /// A point-in-time snapshot of every server and synthesis
    /// instrument (empty when metrics are disabled).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// Jobs currently waiting in the submission queue.
    pub fn queue_depth(&self) -> usize {
        self.lock_sched().pending.len()
    }

    /// Seconds since this server started.
    pub fn uptime_s(&self) -> f64 {
        self.shared.metrics.uptime_s()
    }

    /// Subscribes to job-tagged telemetry events (serialized
    /// [`momsynth_telemetry::JobEvent`] lines). `job` restricts the
    /// stream to one job id.
    pub fn subscribe(&self, job: Option<String>) -> mpsc::Receiver<String> {
        self.shared.hub.subscribe(job)
    }

    /// Blocks until `id` reaches a terminal state or `timeout` expires.
    /// Returns the final status, or `None` on timeout or unknown id.
    pub fn wait_terminal(&self, id: &str, timeout: Duration) -> Option<JobStatus> {
        let deadline = Instant::now() + timeout;
        loop {
            let status = self.status(id)?;
            if status.record.state.is_terminal() {
                return Some(status);
            }
            if Instant::now() >= deadline {
                return None;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// Blocks until every known job is terminal or `timeout` expires.
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            {
                let sched = self.lock_sched();
                if sched.jobs.values().all(|r| r.state.is_terminal()) {
                    return true;
                }
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// Graceful shutdown: stops accepting work, cooperatively cancels
    /// all running jobs (each saves a final checkpoint and stays
    /// `Running` in the journal, so a restart resumes it), and joins
    /// every thread.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        {
            let mut sched = self.lock_sched();
            for handle in sched.running.values_mut() {
                if handle.cause.is_none() {
                    handle.cause = Some(StopCause::Shutdown);
                    // Release: the recorded cause must travel with the
                    // flag (see `cancel`).
                    handle.stop.store(true, Ordering::Release);
                }
            }
        }
        // Latches the shutdown flag (Release) and wakes every worker.
        self.shared.gate.begin_shutdown();
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
    }

    fn lock_sched(&self) -> MutexGuard<'_, Sched> {
        self.shared.gate.lock()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if !self.threads.is_empty() {
            self.shutdown_in_place();
        }
    }
}

/// Worker: pop the highest-priority due job, run it, repeat until
/// shutdown.
fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let entry = {
            let mut sched = shared.gate.lock();
            loop {
                if shared.gate.is_shutting_down() {
                    return;
                }
                let now = Instant::now();
                if let Some(entry) = sched.pending.pop_due(now) {
                    shared.note_queue_depth(&sched);
                    break entry;
                }
                // Wake for the earliest backoff expiry, or periodically
                // as a shutdown/spurious-wakeup backstop.
                let wait = sched
                    .pending
                    .earliest_not_before()
                    .map(|t| t.saturating_duration_since(now))
                    .filter(|d| !d.is_zero())
                    .unwrap_or(Duration::from_millis(100));
                sched = shared.gate.wait_for_work_timeout(sched, wait);
            }
        };
        run_job(shared, &entry);
    }
}

/// Watchdog: raises the stop flag of running jobs past their deadline,
/// and refreshes the journaled whole-server metrics snapshot roughly
/// once a second.
fn watchdog_loop(shared: &Arc<Shared>) {
    let mut ticks: u64 = 0;
    while !shared.gate.is_shutting_down() {
        {
            let mut sched = shared.gate.lock();
            let now = Instant::now();
            for handle in sched.running.values_mut() {
                if handle.cause.is_none()
                    && handle.deadline.is_some_and(|d| now >= d)
                {
                    handle.cause = Some(StopCause::Timeout);
                    // Release: the recorded cause must travel with the
                    // flag (see `cancel`).
                    handle.stop.store(true, Ordering::Release);
                }
            }
        }
        ticks += 1;
        if ticks.is_multiple_of(50) && shared.metrics.registry().is_enabled() {
            let snapshot = shared.metrics.snapshot();
            let path = shared.journal.server_metrics_path();
            if let Err(e) = shared.journal.write_metrics(&path, &snapshot) {
                eprintln!("warning: {e}");
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Decrements the busy-workers gauge on every exit path of `run_job`.
struct BusyGuard(momsynth_metrics::Gauge);

impl Drop for BusyGuard {
    fn drop(&mut self) {
        self.0.sub(1);
    }
}

/// Executes one attempt of one job, driving its record to the next
/// state (terminal, retry-queued, or left `Running` across a graceful
/// shutdown).
fn run_job(shared: &Arc<Shared>, entry: &QueueEntry) {
    let id = &entry.id;
    let stop = Arc::new(AtomicBool::new(false));
    shared.metrics.workers_busy.add(1);
    let _busy = BusyGuard(shared.metrics.workers_busy.clone());
    let (progress, trace_id) = {
        let mut sched = shared.gate.lock();
        sched.running.insert(
            id.clone(),
            RunningHandle { stop: Arc::clone(&stop), cause: None, deadline: None },
        );
        let (attempt, trace_id, queue_wait_s) = match sched.jobs.get_mut(id) {
            Some(record) => {
                record.attempts += 1;
                let wait = if record.attempts == 1 { record.age_s() } else { None };
                (record.attempts, record.trace_id.clone(), wait)
            }
            None => (1, String::new(), None),
        };
        if let Some(wait) = queue_wait_s {
            shared.metrics.queue_wait.observe(wait);
        }
        shared.transition(&mut sched, id, JobState::Analyzing, &format!("attempt {attempt}"));
        let progress = sched
            .progress
            .entry(id.clone())
            .or_insert_with(|| Arc::new(Mutex::new(None)));
        (Arc::clone(progress), trace_id)
    };

    // Load the durable spec; a journal that lost it is a permanent
    // failure (nothing to retry against).
    let spec = match shared.journal.load_spec(id) {
        Ok(spec) => spec,
        Err(e) => {
            finish(shared, id, JobState::Failed, Some(format!("spec unreadable: {e}")), None);
            return;
        }
    };
    let config = spec.config();
    let system = spec.system.clone();

    // Resume from the job's checkpoint when one exists (crash recovery
    // or a retried attempt); a torn checkpoint falls back to `.bak`.
    let cp_path = shared.journal.checkpoint_path(id);
    let mut resume_note = None;
    let resume = if cp_path.exists() {
        match Checkpoint::load_resilient(&cp_path) {
            Ok((cp, note)) => {
                resume_note = note;
                Some(cp)
            }
            Err(e) => {
                resume_note = Some(format!(
                    "checkpoint unreadable ({e}); restarting job `{id}` from scratch"
                ));
                None
            }
        }
    } else {
        None
    };

    // Arm the per-attempt deadline and flip to Running.
    {
        let mut sched = shared.gate.lock();
        if let Some(handle) = sched.running.get_mut(id) {
            handle.deadline =
                spec.timeout_seconds.map(|s| Instant::now() + Duration::from_secs_f64(s));
        }
        let note = match resume.as_ref() {
            Some(cp) => format!("resuming from generation {}", cp.generation),
            None => String::new(),
        };
        shared.transition(&mut sched, id, JobState::Running, &note);
    }

    // Worker-owned sink: durable JSONL trace (appended across attempts)
    // + live progress/subscriber fan-out + core-loop instruments.
    let mut sink = Fanout::new();
    match JsonlSink::append(&shared.journal.trace_path(id)) {
        Ok(jsonl) => sink.push(Box::new(jsonl)),
        Err(e) => eprintln!("warning: cannot open trace for `{id}`: {e}"),
    }
    sink.push(Box::new(ServeSink::new(
        id.clone(),
        Arc::clone(&progress),
        Arc::clone(&shared.hub),
    )));
    if shared.metrics.registry().is_enabled() {
        sink.push(Box::new(MetricsSink::new(shared.metrics.registry())));
    }
    if let Some(note) = resume_note {
        sink.record(&Event::Warning(Warning { message: note }));
    }

    let checkpoint = CheckpointSpec {
        path: cp_path,
        every: shared.config.checkpoint_every,
        every_seconds: shared.config.checkpoint_every_seconds,
    };
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        Synthesizer::new(&system, config.clone()).run_controlled(SynthControl {
            stop: Some(&stop),
            checkpoint: Some(checkpoint),
            resume,
            sink: Some(&sink),
            trace_id: Some(trace_id.clone()).filter(|t| !t.is_empty()),
        })
    }));
    sink.flush();
    drop(sink);

    // Why did we stop? The GA only reports `Cancelled`; the handle
    // remembers which actor raised the flag.
    let cause = {
        let mut sched = shared.gate.lock();
        sched.running.remove(id).and_then(|h| h.cause)
    };

    match outcome {
        Err(panic) => {
            let message = panic_message(&panic);
            transient_failure(shared, entry, &format!("worker panicked: {message}"));
        }
        Ok(Err(SynthesisError::Checkpoint(e))) => {
            // An unusable checkpoint would fail every retry the same
            // way: drop it so the next attempt restarts from scratch.
            let cp = shared.journal.checkpoint_path(id);
            std::fs::remove_file(&cp).ok();
            let mut bak = cp.into_os_string();
            bak.push(".bak");
            std::fs::remove_file(bak).ok();
            transient_failure(shared, entry, &format!("checkpoint error: {e}"));
        }
        // Infeasible and Unschedulable are properties of the spec:
        // retrying cannot change them, so fail fast and permanently.
        Ok(Err(e)) => {
            finish(shared, id, JobState::Failed, Some(e.to_string()), None);
        }
        Ok(Ok(result)) => {
            if result.stop_reason == StopReason::Cancelled {
                match cause {
                    Some(StopCause::Cancel) => {
                        finish(shared, id, JobState::Cancelled, None, None);
                    }
                    Some(StopCause::Timeout) => {
                        finish(
                            shared,
                            id,
                            JobState::TimedOut,
                            Some("per-job wall-clock timeout".into()),
                            None,
                        );
                    }
                    // Graceful shutdown: the run already flushed a final
                    // checkpoint; the record stays `Running` so a
                    // restart resumes the trajectory tail.
                    Some(StopCause::Shutdown) | None => {}
                }
                return;
            }
            // Completed: gate `Verified` on feasibility plus the
            // independent checker.
            let breach = invariant_breach(&system, &result.best);
            if !result.best.is_feasible() {
                finish(
                    shared,
                    id,
                    JobState::Failed,
                    Some("best solution violates constraints".into()),
                    None,
                );
            } else if let Some(report) = breach {
                finish(
                    shared,
                    id,
                    JobState::Failed,
                    Some(format!("verification failed: {report}")),
                    None,
                );
            } else {
                let summary = result.summary(&system, &config);
                if let Err(e) = shared.journal.write_result(id, &result.report(&system)) {
                    eprintln!("warning: {e}");
                }
                finish(shared, id, JobState::Verified, None, Some(summary));
            }
        }
    }
}

/// Applies a terminal transition.
fn finish(
    shared: &Arc<Shared>,
    id: &str,
    state: JobState,
    error: Option<String>,
    summary: Option<RunSummary>,
) {
    let mut sched = shared.gate.lock();
    sched.running.remove(id);
    if let Some(record) = sched.jobs.get_mut(id) {
        record.error = error;
        record.summary = summary;
    }
    let note = sched.jobs.get(id).and_then(|r| r.error.clone()).unwrap_or_default();
    shared.transition(&mut sched, id, state, &note);
}

/// Retry policy for transient failures (panics, checkpoint I/O):
/// exponential backoff up to `max_retries`, then permanent failure.
fn transient_failure(shared: &Arc<Shared>, entry: &QueueEntry, message: &str) {
    let mut sched = shared.gate.lock();
    sched.running.remove(&entry.id);
    let attempts = sched.jobs.get(&entry.id).map_or(1, |r| r.attempts);
    if attempts > shared.config.max_retries {
        if let Some(record) = sched.jobs.get_mut(&entry.id) {
            record.error = Some(format!("retries exhausted after attempt {attempts}: {message}"));
        }
        let note = format!("retries exhausted: {message}");
        shared.transition(&mut sched, &entry.id, JobState::Failed, &note);
        return;
    }
    let backoff = shared.config.retry_backoff_s * f64::from(1u32 << (attempts - 1).min(16));
    let note = format!("transient failure on attempt {attempts}, retrying in {backoff:.2} s: {message}");
    shared.metrics.jobs_retried.inc();
    shared.transition(&mut sched, &entry.id, JobState::Queued, &note);
    sched.pending.push_retry(QueueEntry {
        id: entry.id.clone(),
        priority: entry.priority,
        seq: entry.seq,
        not_before: Some(Instant::now() + Duration::from_secs_f64(backoff)),
    });
    shared.note_queue_depth(&sched);
    let queued = sched.pending.len();
    drop(sched);
    shared.gate.notify_work(queued);
}

/// Best-effort extraction of a panic payload message.
fn panic_message(panic: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}
