//! Job model: submission specs, lifecycle states and journal records.

use serde::{Deserialize, Serialize};

use momsynth_core::SynthesisConfig;
use momsynth_model::System;
use momsynth_telemetry::RunSummary;

/// A synthesis request as submitted by a client. Everything but the
/// system spec is optional and defaults to the field type's zero value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// The system specification to synthesise (the same JSON document
    /// `momsynth run` loads from a file).
    pub system: System,
    /// Scheduling priority: higher runs first, and when the submission
    /// queue is full a higher-priority job sheds the lowest-priority
    /// queued one. Defaults to 0 (lowest).
    #[serde(default)]
    pub priority: u8,
    /// GA seed (defaults to 0).
    #[serde(default)]
    pub seed: u64,
    /// Use the small/fast preset instead of the full configuration.
    #[serde(default)]
    pub quick: bool,
    /// Enable voltage scaling.
    #[serde(default)]
    pub dvs: bool,
    /// Run the probability-neglecting baseline flow.
    #[serde(default)]
    pub neglect: bool,
    /// Worker threads for batch fitness evaluation (0 = automatic).
    #[serde(default)]
    pub threads: usize,
    /// Optimisation wall-clock budget in seconds (the run stops
    /// gracefully with its best-so-far when exceeded).
    #[serde(default)]
    pub max_seconds: Option<f64>,
    /// Optimisation evaluation budget.
    #[serde(default)]
    pub max_evaluations: Option<usize>,
    /// Hard wall-clock timeout for one attempt of this job: the server
    /// cancels the run and marks the job `TimedOut` when exceeded.
    #[serde(default)]
    pub timeout_seconds: Option<f64>,
}

impl JobSpec {
    /// A minimal spec for `system` with all defaults.
    pub fn new(system: System) -> Self {
        Self {
            system,
            priority: 0,
            seed: 0,
            quick: false,
            dvs: false,
            neglect: false,
            threads: 0,
            max_seconds: None,
            max_evaluations: None,
            timeout_seconds: None,
        }
    }

    /// The [`SynthesisConfig`] this spec describes.
    pub fn config(&self) -> SynthesisConfig {
        let mut cfg = if self.quick {
            SynthesisConfig::fast_preset(self.seed)
        } else {
            SynthesisConfig::new(self.seed)
        };
        cfg.probability_aware = !self.neglect;
        if self.dvs {
            cfg = cfg.with_dvs();
        }
        cfg.threads = self.threads;
        cfg.ga.max_seconds = self.max_seconds;
        cfg.ga.max_evaluations = self.max_evaluations;
        cfg
    }
}

/// Lifecycle state of a job. The journal records every transition, so
/// after a crash each job is in a well-defined state:
///
/// ```text
/// Queued ──► Analyzing ──► Running ──► Verified
///   │   ▲                  │  │ │
///   │   └──────────────────┘  │ └────► Failed / TimedOut
///   │      (transient retry,  │
///   │       crash recovery)   └──────► Cancelled
///   └────► Shed / Cancelled
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobState {
    /// Accepted and waiting for a worker slot (also the state a
    /// transient failure returns to while awaiting its retry).
    Queued,
    /// A worker is validating the spec and preparing the run.
    Analyzing,
    /// The synthesis loop is executing (checkpointed periodically).
    Running,
    /// Terminal: the run completed, the solution is feasible and the
    /// independent verifier accepted it.
    Verified,
    /// Terminal: permanent failure (provably infeasible spec,
    /// unschedulable result, verification breach, retries exhausted).
    Failed,
    /// Terminal: cancelled by a client.
    Cancelled,
    /// Terminal: the per-attempt wall-clock timeout expired.
    TimedOut,
    /// Terminal: evicted from a full queue by a higher-priority
    /// submission (graceful degradation).
    Shed,
}

impl JobState {
    /// Whether the state is terminal (the job will never run again).
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            Self::Verified | Self::Failed | Self::Cancelled | Self::TimedOut | Self::Shed
        )
    }
}

impl std::fmt::Display for JobState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Self::Queued => "queued",
            Self::Analyzing => "analyzing",
            Self::Running => "running",
            Self::Verified => "verified",
            Self::Failed => "failed",
            Self::Cancelled => "cancelled",
            Self::TimedOut => "timed-out",
            Self::Shed => "shed",
        };
        f.write_str(s)
    }
}

/// The durable journal record of one job: everything needed to resume
/// or account for it after a crash. Written atomically on every state
/// transition; in-memory-only data (live progress, retry deadlines)
/// deliberately stays out.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    /// Stable job identifier (`job-<seq>`).
    pub id: String,
    /// Monotonic submission sequence number (FIFO tie-breaker).
    pub seq: u64,
    /// Scheduling priority copied from the spec.
    pub priority: u8,
    /// Trace/span correlation id minted at submission and threaded
    /// through the synthesis run, its telemetry trace and the journal
    /// (empty for records written before tracing existed).
    #[serde(default)]
    pub trace_id: String,
    /// Submission wall-clock time in Unix milliseconds (0 for records
    /// written before tracing existed).
    #[serde(default)]
    pub submitted_unix_ms: u64,
    /// Current lifecycle state.
    pub state: JobState,
    /// Attempts started so far (1 on the first run).
    pub attempts: u32,
    /// Audit trail of transitions, oldest first (state plus cause).
    #[serde(default)]
    pub transitions: Vec<String>,
    /// Terminal error description, if the job failed.
    #[serde(default)]
    pub error: Option<String>,
    /// End-of-run metrics, present once the job is `Verified`.
    #[serde(default)]
    pub summary: Option<RunSummary>,
}

/// Current wall-clock time in Unix milliseconds (0 on a pre-1970
/// clock).
pub(crate) fn unix_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .ok()
        .and_then(|d| u64::try_from(d.as_millis()).ok())
        .unwrap_or(0)
}

impl JobRecord {
    /// A fresh `Queued` record for a new submission, stamped with the
    /// submission time and a journal-unique trace id.
    pub fn new(id: String, seq: u64, priority: u8) -> Self {
        let submitted_unix_ms = unix_ms();
        let trace_id = format!("{id}-{submitted_unix_ms:x}");
        Self {
            id,
            seq,
            priority,
            trace_id,
            submitted_unix_ms,
            state: JobState::Queued,
            attempts: 0,
            transitions: vec!["queued".to_owned()],
            error: None,
            summary: None,
        }
    }

    /// Seconds since this job was submitted, when the submission time
    /// is known (`None` for pre-tracing records).
    pub fn age_s(&self) -> Option<f64> {
        if self.submitted_unix_ms == 0 {
            return None;
        }
        let elapsed_ms = unix_ms().saturating_sub(self.submitted_unix_ms);
        #[allow(clippy::cast_precision_loss)]
        Some(elapsed_ms as f64 / 1000.0)
    }

    /// Applies a state transition, appending `note` to the audit trail.
    pub fn transition(&mut self, state: JobState, note: &str) {
        self.state = state;
        self.transitions.push(if note.is_empty() {
            state.to_string()
        } else {
            format!("{state}: {note}")
        });
    }
}

/// Live progress of a running job, fed by the telemetry stream and kept
/// in memory only (the checkpoint is the durable copy).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct JobProgress {
    /// Last completed generation.
    pub generation: u64,
    /// Cumulative cost evaluations.
    pub evaluations: u64,
    /// Best cost so far.
    pub best: f64,
    /// Live evaluation throughput in evaluations per second.
    pub evals_per_sec: f64,
    /// Fraction of cost lookups served by the evaluation cache.
    pub cache_hit_rate: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminal_states_are_exactly_the_five_end_states() {
        for state in [
            JobState::Queued,
            JobState::Analyzing,
            JobState::Running,
        ] {
            assert!(!state.is_terminal(), "{state}");
        }
        for state in [
            JobState::Verified,
            JobState::Failed,
            JobState::Cancelled,
            JobState::TimedOut,
            JobState::Shed,
        ] {
            assert!(state.is_terminal(), "{state}");
        }
    }

    #[test]
    fn records_round_trip_and_keep_an_audit_trail() {
        let mut record = JobRecord::new("job-000001".into(), 1, 7);
        record.transition(JobState::Analyzing, "");
        record.transition(JobState::Running, "attempt 1");
        record.transition(JobState::Verified, "");
        let json = serde_json::to_string(&record).unwrap();
        let back: JobRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, record);
        assert_eq!(back.transitions.len(), 4);
        assert!(back.state.is_terminal());
    }

    #[test]
    fn new_records_carry_a_trace_id_and_submission_time() {
        let record = JobRecord::new("job-000042".into(), 42, 0);
        assert!(record.trace_id.starts_with("job-000042-"), "{}", record.trace_id);
        assert!(record.submitted_unix_ms > 0);
        let age = record.age_s().expect("fresh records know their age");
        assert!((0.0..60.0).contains(&age), "{age}");
    }

    #[test]
    fn pre_tracing_records_parse_with_empty_trace_context() {
        let json = r#"{
            "id": "job-000001", "seq": 1, "priority": 0,
            "state": "Queued", "attempts": 0
        }"#;
        let record: JobRecord = serde_json::from_str(json).unwrap();
        assert_eq!(record.trace_id, "");
        assert_eq!(record.submitted_unix_ms, 0);
        assert_eq!(record.age_s(), None, "unknown submission time has no age");
    }

    #[test]
    fn specs_parse_with_defaults_for_everything_but_the_system() {
        let mut params = momsynth_gen::suite::GeneratorParams::new("spec", 1);
        params.modes = 2;
        params.tasks_per_mode = (3, 4);
        let system = momsynth_gen::suite::generate(&params);
        let json = format!(
            "{{\"system\": {}}}",
            serde_json::to_string(&system).unwrap()
        );
        let spec: JobSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec.priority, 0);
        assert_eq!(spec.seed, 0);
        assert!(!spec.quick);
        assert!(spec.timeout_seconds.is_none());
        let cfg = spec.config();
        assert!(cfg.probability_aware);
        assert!(cfg.dvs.is_none());
    }
}
