//! Telemetry plumbing between a running job and the server: live
//! progress updates and job-tagged event streaming to subscribers.

use momsynth_sync::sync::{mpsc, Arc, Mutex};

use momsynth_telemetry::{Event, JobEvent, Sink};

use crate::job::JobProgress;

/// A subscriber's sending half. Dead receivers are pruned lazily on the
/// next broadcast.
#[derive(Debug)]
pub(crate) struct Subscriber {
    /// Restrict the stream to one job; `None` receives everything.
    pub job: Option<String>,
    /// Serialized [`JobEvent`] lines are pushed here.
    pub tx: mpsc::Sender<String>,
}

/// Shared registry of event subscribers. Public so the loom models in
/// `tests/loom_queue.rs` can check the subscribe/broadcast race on the
/// production type.
#[derive(Debug, Default)]
pub struct SubscriberHub {
    subscribers: Mutex<Vec<Subscriber>>,
}

impl SubscriberHub {
    /// Registers a subscriber and returns its receiving half.
    #[allow(clippy::missing_panics_doc)] // lock poisoning is a bug upstream
    pub fn subscribe(&self, job: Option<String>) -> mpsc::Receiver<String> {
        let (tx, rx) = mpsc::channel();
        self.subscribers
            .lock()
            .expect("subscriber registry poisoned")
            .push(Subscriber { job, tx });
        rx
    }

    /// Sends one job-tagged event line to every matching subscriber,
    /// dropping the ones that hung up.
    pub fn broadcast(&self, job: &str, line: &str) {
        let mut subs = self.subscribers.lock().expect("subscriber registry poisoned");
        subs.retain(|s| {
            if s.job.as_deref().is_some_and(|j| j != job) {
                return true;
            }
            s.tx.send(line.to_owned()).is_ok()
        });
    }

    /// Number of live subscribers.
    pub fn len(&self) -> usize {
        self.subscribers.lock().expect("subscriber registry poisoned").len()
    }

    /// Whether no subscriber is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The per-job worker-side sink: owned by the worker thread running the
/// job, it mirrors generation events into the server's in-memory
/// progress table and fans job-tagged copies out to subscribers. Used
/// alongside a [`momsynth_telemetry::JsonlSink`] (the durable trace) in
/// a [`momsynth_telemetry::Fanout`].
pub(crate) struct ServeSink {
    job: String,
    progress: Arc<Mutex<Option<JobProgress>>>,
    hub: Arc<SubscriberHub>,
}

impl ServeSink {
    /// A sink feeding `progress` and `hub` for job `job`.
    pub fn new(
        job: String,
        progress: Arc<Mutex<Option<JobProgress>>>,
        hub: Arc<SubscriberHub>,
    ) -> Self {
        Self { job, progress, hub }
    }
}

impl std::fmt::Debug for ServeSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeSink").field("job", &self.job).finish()
    }
}

impl Sink for ServeSink {
    fn record(&self, event: &Event) {
        if let Event::Generation(g) = event {
            *self.progress.lock().expect("progress poisoned") = Some(JobProgress {
                generation: g.generation,
                evaluations: g.evaluations,
                best: g.best,
                evals_per_sec: g.evals_per_sec,
                cache_hit_rate: g.cache_hit_rate,
            });
        }
        let tagged = JobEvent { job: self.job.clone(), event: event.clone() };
        if let Ok(line) = serde_json::to_string(&tagged) {
            self.hub.broadcast(&self.job, &line);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use momsynth_telemetry::Warning;

    #[test]
    fn broadcast_filters_by_job_and_prunes_dead_subscribers() {
        let hub = Arc::new(SubscriberHub::default());
        let all = hub.subscribe(None);
        let only_a = hub.subscribe(Some("a".into()));
        let dead = hub.subscribe(None);
        drop(dead);

        hub.broadcast("a", "line-a");
        hub.broadcast("b", "line-b");
        assert_eq!(all.try_recv().unwrap(), "line-a");
        assert_eq!(all.try_recv().unwrap(), "line-b");
        assert_eq!(only_a.try_recv().unwrap(), "line-a");
        assert!(only_a.try_recv().is_err(), "job filter must hold");
        assert_eq!(hub.len(), 2, "hung-up subscriber must be pruned");
    }

    #[test]
    fn serve_sink_updates_progress_and_tags_events() {
        use momsynth_telemetry::{Counters, GenerationEvent};
        let hub = Arc::new(SubscriberHub::default());
        let rx = hub.subscribe(None);
        let progress = Arc::new(Mutex::new(None));
        let sink = ServeSink::new("job-1".into(), progress.clone(), hub);

        sink.record(&Event::Warning(Warning { message: "w".into() }));
        sink.record(&Event::Generation(GenerationEvent {
            generation: 4,
            evaluations: 80,
            best: 2.5,
            mean: 3.0,
            worst: 4.0,
            stagnation: 0,
            evals_per_sec: 100.0,
            cache_hit_rate: 0.5,
            counters: Counters::default(),
        }));

        let p = progress.lock().unwrap().expect("generation updates progress");
        assert_eq!(p.generation, 4);
        assert_eq!(p.evals_per_sec, 100.0);

        let first: JobEvent = serde_json::from_str(&rx.try_recv().unwrap()).unwrap();
        assert_eq!(first.job, "job-1");
        assert!(matches!(first.event, Event::Warning(_)));
        let second: JobEvent = serde_json::from_str(&rx.try_recv().unwrap()).unwrap();
        assert!(matches!(second.event, Event::Generation(_)));
    }
}
