//! The line-delimited JSON request protocol spoken over the Unix socket
//! and in `--oneshot` stdio mode.
//!
//! Every request is one JSON object on one line carrying a `cmd` field;
//! every response is one JSON object on one line carrying `ok` plus
//! command-specific fields. Back-pressure rejections are typed:
//! `{"ok": false, "error": ..., "retry_after_s": ...}`.
//!
//! | `cmd`       | request fields           | success response            |
//! |-------------|--------------------------|-----------------------------|
//! | `ping`      |                          | `{"ok":true,"pong":true}`   |
//! | `submit`    | `spec` (a job spec)      | `{"ok":true,"id":...}`      |
//! | `status`    | `id`                     | `{"ok":true,"job":{...}}`   |
//! | `list`      |                          | `{"ok":true,"jobs":[...]}`  |
//! | `result`    | `id`                     | `{"ok":true,"result":{...}}`|
//! | `cancel`    | `id`                     | `{"ok":true,"state":...}`   |
//! | `wait`      | `id`, `timeout_s`?       | `{"ok":true,"job":{...}}`   |
//! | `subscribe` | `id`?                    | ack, then event lines       |
//! | `metrics`   | `format`? (`"text"`)     | `{"ok":true,"metrics":{...}}`|
//! | `shutdown`  |                          | `{"ok":true}`, server stops |
//!
//! `status`, `list` and `metrics` responses additionally carry a
//! `server` block (`{"queue_depth": ..., "uptime_s": ...}`); each job
//! value carries its `trace_id` and `age_s` (seconds since submission).

use momsynth_sync::sync::mpsc;
use std::time::Duration;

use serde_json::{json, Value};

use crate::job::JobSpec;
use crate::server::{JobStatus, Server};

/// How a request line is answered.
#[derive(Debug)]
pub enum Reply {
    /// One response line.
    Line(Value),
    /// An ack line followed by streamed event lines from the receiver
    /// (a `subscribe` request). `job` is the id filter, if any.
    Stream {
        /// The ack line to send before streaming.
        ack: Value,
        /// Serialized `JobEvent` lines.
        rx: mpsc::Receiver<String>,
        /// Stop streaming once this job is terminal (`None`: stream
        /// until the connection closes or the server stops).
        job: Option<String>,
    },
    /// One response line, then the transport should initiate a graceful
    /// server shutdown.
    Shutdown(Value),
}

/// Compact single-line JSON rendering of a response value. ([`Value`]'s
/// `Display` is a diagnostic format, not valid JSON.)
pub fn to_line(value: &Value) -> String {
    serde_json::to_string(value)
        .unwrap_or_else(|_| r#"{"ok":false,"error":"serialization failure"}"#.to_owned())
}

/// JSON rendering of a job's status.
pub fn status_value(status: &JobStatus) -> Value {
    json!({
        "id": status.record.id,
        "seq": status.record.seq,
        "priority": status.record.priority,
        "trace_id": status.record.trace_id,
        "age_s": status.record.age_s(),
        "state": status.record.state.to_string(),
        "attempts": status.record.attempts,
        "transitions": status.record.transitions,
        "error": status.record.error,
        "summary": status.record.summary,
        "progress": status.progress,
    })
}

/// The server-health block attached to `status`, `list` and `metrics`
/// responses.
fn server_block(server: &Server) -> Value {
    json!({
        "queue_depth": server.queue_depth(),
        "uptime_s": server.uptime_s(),
    })
}

fn error_line(message: impl std::fmt::Display) -> Reply {
    Reply::Line(json!({"ok": false, "error": message.to_string()}))
}

fn str_field<'a>(request: &'a Value, name: &str) -> Option<&'a str> {
    request.get(name).and_then(Value::as_str)
}

/// Handles one request line against `server` and returns the reply.
/// Malformed requests produce an `ok: false` line, never a panic or a
/// dropped connection.
pub fn handle_line(server: &Server, line: &str) -> Reply {
    let request: Value = match serde_json::from_str(line) {
        Ok(v) => v,
        Err(e) => return error_line(format!("malformed request: {e}")),
    };
    let Some(cmd) = str_field(&request, "cmd") else {
        return error_line("missing `cmd` field");
    };
    match cmd {
        "ping" => Reply::Line(json!({"ok": true, "pong": true})),
        "submit" => {
            let Some(spec_value) = request.get("spec") else {
                return error_line("submit requires a `spec` field");
            };
            let spec: JobSpec = match serde_json::from_value(spec_value) {
                Ok(spec) => spec,
                Err(e) => return error_line(format!("invalid job spec: {e}")),
            };
            match server.submit(&spec) {
                Ok(id) => Reply::Line(json!({"ok": true, "id": id})),
                Err(rejection) => Reply::Line(json!({
                    "ok": false,
                    "error": rejection.reason,
                    "retry_after_s": rejection.retry_after_s,
                })),
            }
        }
        "status" => {
            let Some(id) = str_field(&request, "id") else {
                return error_line("status requires an `id` field");
            };
            match server.status(id) {
                Some(status) => Reply::Line(json!({
                    "ok": true,
                    "job": status_value(&status),
                    "server": server_block(server),
                })),
                None => error_line(format!("unknown job `{id}`")),
            }
        }
        "list" => {
            let jobs: Vec<Value> = server.list().iter().map(status_value).collect();
            Reply::Line(json!({
                "ok": true,
                "jobs": jobs,
                "server": server_block(server),
            }))
        }
        "metrics" => {
            let snapshot = server.metrics_snapshot();
            let reply = if str_field(&request, "format") == Some("text") {
                json!({
                    "ok": true,
                    "metrics": snapshot,
                    "text": snapshot.to_prometheus(),
                    "server": server_block(server),
                })
            } else {
                json!({
                    "ok": true,
                    "metrics": snapshot,
                    "server": server_block(server),
                })
            };
            Reply::Line(reply)
        }
        "result" => {
            let Some(id) = str_field(&request, "id") else {
                return error_line("result requires an `id` field");
            };
            match server.result(id) {
                Some(result) => Reply::Line(json!({"ok": true, "result": result})),
                None => error_line(format!("no result for job `{id}`")),
            }
        }
        "cancel" => {
            let Some(id) = str_field(&request, "id") else {
                return error_line("cancel requires an `id` field");
            };
            match server.cancel(id) {
                Some(state) => {
                    Reply::Line(json!({"ok": true, "state": state.to_string()}))
                }
                None => error_line(format!("unknown job `{id}`")),
            }
        }
        "wait" => {
            let Some(id) = str_field(&request, "id") else {
                return error_line("wait requires an `id` field");
            };
            let timeout_s =
                request.get("timeout_s").and_then(Value::as_f64).unwrap_or(600.0);
            match server.wait_terminal(id, Duration::from_secs_f64(timeout_s.max(0.0))) {
                Some(status) => {
                    Reply::Line(json!({"ok": true, "job": status_value(&status)}))
                }
                None => error_line(format!(
                    "job `{id}` not terminal within {timeout_s} s (or unknown)"
                )),
            }
        }
        "subscribe" => {
            let job = str_field(&request, "id").map(str::to_owned);
            let rx = server.subscribe(job.clone());
            Reply::Stream { ack: json!({"ok": true, "subscribed": true}), rx, job }
        }
        "shutdown" => Reply::Shutdown(json!({"ok": true, "shutting_down": true})),
        other => error_line(format!("unknown command `{other}`")),
    }
}
