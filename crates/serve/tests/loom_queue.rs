//! Loom models for the server's admission/shed protocol on
//! [`WorkGate`] + [`PendingQueue`], and for the subscriber hub.
//!
//! Properties proved:
//!
//! - **No shed-vs-admit double count.** Racing submissions into a full
//!   queue leave the queue, the shed set and the rejection count in
//!   exact agreement: every submission is admitted, shed or rejected
//!   exactly once.
//! - **No lost wakeup.** Producers that notify after every push always
//!   wake enough unbounded-waiting consumers to drain the queue — with
//!   no reliance on the worker loop's timed backstop. The
//!   `loom_mutation` variant coalesces notifications ("only the 0→1
//!   transition wakes") and must deadlock under loom.
//! - **Subscriber hub.** Subscribing races a broadcast without losing
//!   the subscription: a later broadcast always reaches the
//!   subscriber.
//!
//! Run with `RUSTFLAGS="--cfg loom" cargo test -p momsynth-serve
//! --test loom_queue --release`; add `--cfg loom_mutation` for the
//! seeded lost-notification check.

#![cfg(loom)]

use momsynth_serve::{PendingQueue, PushOutcome, QueueEntry, SubscriberHub, WorkGate};
use momsynth_sync::sync::atomic::{AtomicU64, Ordering};
use momsynth_sync::sync::Arc;
use momsynth_sync::thread;

fn entry(id: &str, priority: u8, seq: u64) -> QueueEntry {
    QueueEntry { id: id.into(), priority, seq, not_before: None }
}

/// Two submitters race into a capacity-1 queue through the production
/// admission path: the low-priority job is either shed by the high one
/// (low arrived first) or rejected (high arrived first). In every
/// interleaving the high-priority job wins the slot and the
/// shed/reject counters account for the loser exactly once.
#[cfg(not(loom_mutation))]
#[test]
fn shed_and_admit_never_double_count() {
    momsynth_sync::model(|| {
        let gate = Arc::new(WorkGate::new(PendingQueue::new(1)));
        let shed = Arc::new(AtomicU64::new(0));
        let rejected = Arc::new(AtomicU64::new(0));
        let submitters: Vec<_> = [("low", 1u8, 1u64), ("high", 5, 2)]
            .into_iter()
            .map(|(id, priority, seq)| {
                let gate = Arc::clone(&gate);
                let shed = Arc::clone(&shed);
                let rejected = Arc::clone(&rejected);
                let entry = entry(id, priority, seq);
                thread::spawn(move || {
                    let mut queue = gate.lock();
                    let outcome = queue.push(entry);
                    let queued = queue.len();
                    drop(queue);
                    // Counters are bumped outside the lock, like the
                    // server's metrics: the model proves the atomic
                    // bookkeeping still balances.
                    match outcome {
                        PushOutcome::Enqueued => gate.notify_work(queued),
                        PushOutcome::EnqueuedShedding(_) => {
                            shed.fetch_add(1, Ordering::Relaxed);
                            gate.notify_work(queued);
                        }
                        PushOutcome::Rejected { .. } => {
                            rejected.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                })
            })
            .collect();
        for s in submitters {
            s.join().unwrap();
        }
        let queue = gate.lock();
        let shed = shed.load(Ordering::Relaxed);
        let rejected = rejected.load(Ordering::Relaxed);
        assert_eq!(queue.len(), 1, "exactly one submission holds the slot");
        assert_eq!(
            queue.len() as u64 + shed + rejected,
            2,
            "every submission is admitted, shed or rejected exactly once"
        );
        assert_eq!(shed + rejected, 1, "the low-priority job lost exactly once");
    });
}

/// The wakeup model shared by the pass/mutation tests: two consumers
/// wait **unbounded** for one item each while a producer pushes two
/// items, notifying after every push. With per-push notification every
/// interleaving drains the queue; with the `loom_mutation` coalescing
/// ("only when the queue was empty") a consumer can be stranded after
/// the second push and loom reports the deadlock.
fn wakeup_model() {
    let gate = Arc::new(WorkGate::new(PendingQueue::new(4)));
    let consumers: Vec<_> = (0..2)
        .map(|_| {
            let gate = Arc::clone(&gate);
            thread::spawn(move || {
                let mut queue = gate.lock();
                loop {
                    let now = std::time::Instant::now();
                    if let Some(e) = queue.pop_due(now) {
                        return e.seq;
                    }
                    // Unbounded wait: correctness must come from the
                    // producer's notifications, not a timed backstop.
                    queue = gate.wait_for_work(queue);
                }
            })
        })
        .collect();
    let producer = {
        let gate = Arc::clone(&gate);
        thread::spawn(move || {
            for seq in [1u64, 2] {
                let mut queue = gate.lock();
                queue.push_retry(entry("job", 0, seq));
                let queued = queue.len();
                drop(queue);
                gate.notify_work(queued);
            }
        })
    };
    producer.join().unwrap();
    let mut seqs: Vec<u64> = consumers.into_iter().map(|c| c.join().unwrap()).collect();
    seqs.sort_unstable();
    assert_eq!(seqs, vec![1, 2], "both items are consumed exactly once");
}

#[cfg(not(loom_mutation))]
#[test]
fn every_push_notification_prevents_stranded_consumers() {
    momsynth_sync::model(wakeup_model);
}

/// A subscription racing a broadcast is never lost: the subscriber may
/// or may not see the in-flight line, but a broadcast sent after both
/// threads joined always reaches it.
#[cfg(not(loom_mutation))]
#[test]
fn racing_subscription_is_never_lost() {
    momsynth_sync::model(|| {
        let hub = Arc::new(SubscriberHub::default());
        let subscriber = {
            let hub = Arc::clone(&hub);
            thread::spawn(move || hub.subscribe(None))
        };
        let broadcaster = {
            let hub = Arc::clone(&hub);
            thread::spawn(move || hub.broadcast("job", "early"))
        };
        broadcaster.join().unwrap();
        let rx = subscriber.join().unwrap();
        hub.broadcast("job", "late");
        let mut lines = Vec::new();
        while let Ok(line) = rx.try_recv() {
            lines.push(line);
        }
        assert_eq!(hub.len(), 1, "the subscription must survive the race");
        assert!(
            lines == ["late"] || lines == ["early", "late"],
            "the post-join broadcast must always arrive, got {lines:?}"
        );
    });
}

/// With `--cfg loom_mutation`, `WorkGate::notify_work` coalesces to
/// "notify only on the 0→1 transition"; the second push then strands a
/// waiting consumer forever, and loom must report the deadlock.
#[cfg(loom_mutation)]
#[test]
fn seeded_coalesced_notification_is_caught() {
    let result = std::panic::catch_unwind(|| momsynth_sync::model(wakeup_model));
    let message = match result {
        Ok(()) => panic!("loom missed the seeded notification coalescing in WorkGate"),
        Err(payload) => payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_owned()))
            .unwrap_or_default(),
    };
    assert!(
        message.contains("deadlock"),
        "expected a stranded-consumer deadlock, got: {message}"
    );
}
