//! Torn-write fuzz for the journal's `.bak` fallback: truncate and
//! corrupt the primary at **every byte boundary** and assert the
//! resilient readers recover the previous good copy or fail with a
//! typed error — never panic, never silently drop a job.
//!
//! This is the crash model the journal's fsync-then-rename protocol
//! defends against (DESIGN.md §17): a crash between the rename and the
//! next write can leave any prefix (power loss mid-page) or any
//! flipped byte (bad sector) in the primary.

use std::path::PathBuf;

use momsynth_serve::{JobRecord, JobSpec, Journal};

fn tmp_root(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("momsynth_torn_{}_{name}", std::process::id()));
    std::fs::remove_dir_all(&p).ok();
    p
}

fn sample_spec() -> JobSpec {
    let mut params = momsynth_gen::suite::GeneratorParams::new("torn", 11);
    params.modes = 2;
    params.tasks_per_mode = (4, 5);
    let system = momsynth_gen::suite::generate(&params);
    JobSpec::new(system)
}

/// Truncating the record primary at every byte boundary: `load_all`
/// recovers the backup copy (with a recovery note) for every torn
/// prefix, and reads the primary cleanly only at full length.
#[test]
fn record_truncated_at_every_boundary_recovers_or_reports() {
    let root = tmp_root("record_trunc");
    let journal = Journal::open(&root).unwrap();
    let mut record = JobRecord::new("job-000001".into(), 1, 3);
    journal.write_record(&record).unwrap();
    record.transition(momsynth_serve::JobState::Analyzing, "attempt 1");
    journal.write_record(&record).unwrap(); // keeps v1 as `.bak`

    let path = journal.record_path("job-000001");
    let full = std::fs::read(&path).unwrap();
    for cut in 0..=full.len() {
        std::fs::write(&path, &full[..cut]).unwrap();
        let (records, notes) = journal.load_all();
        assert_eq!(
            records.len(),
            1,
            "a torn primary with a good backup must never lose the job (cut={cut})"
        );
        if cut == full.len() {
            assert_eq!(records[0].state, momsynth_serve::JobState::Analyzing);
            assert!(notes.is_empty(), "a clean primary needs no recovery: {notes:?}");
        } else {
            assert_eq!(
                records[0].state,
                momsynth_serve::JobState::Queued,
                "fallback must be the previous good record (cut={cut})"
            );
            assert!(
                notes.iter().any(|n| n.contains("torn")),
                "recovery must be reported, not silent (cut={cut}): {notes:?}"
            );
        }
    }
    std::fs::remove_dir_all(&root).ok();
}

/// Flipping every byte of the record primary: `load_all` either still
/// parses the primary (the flip landed in a value and stayed valid) or
/// falls back to the backup — it never panics and never returns zero
/// jobs.
#[test]
fn record_corrupted_at_every_byte_never_panics_or_drops() {
    let root = tmp_root("record_flip");
    let journal = Journal::open(&root).unwrap();
    let record = JobRecord::new("job-000002".into(), 2, 1);
    journal.write_record(&record).unwrap();
    journal.write_record(&record).unwrap(); // `.bak` = same good copy

    let path = journal.record_path("job-000002");
    let full = std::fs::read(&path).unwrap();
    for at in 0..full.len() {
        let mut bytes = full.clone();
        bytes[at] ^= 0xff; // also exercises invalid UTF-8
        std::fs::write(&path, &bytes).unwrap();
        let (records, _notes) = journal.load_all();
        assert_eq!(
            records.len(),
            1,
            "a single flipped byte must never lose the job (at={at})"
        );
        assert_eq!(records[0].id, "job-000002");
    }
    std::fs::remove_dir_all(&root).ok();
}

/// A spec written once has no `.bak`; truncating it at every boundary
/// must yield a typed `JournalError` from `load_spec` (the server then
/// fails the job permanently) — never a panic.
#[test]
fn spec_without_backup_fails_typed_at_every_truncation() {
    let root = tmp_root("spec_trunc");
    let journal = Journal::open(&root).unwrap();
    let spec = sample_spec();
    journal.write_spec("job-000003", &spec).unwrap();

    let path = journal.spec_path("job-000003");
    let full = std::fs::read(&path).unwrap();
    for cut in 0..full.len() {
        std::fs::write(&path, &full[..cut]).unwrap();
        let err = journal
            .load_spec("job-000003")
            .expect_err("a torn spec with no backup must fail (cut={cut})");
        assert!(
            err.to_string().contains("job-000003"),
            "the error must name the torn file: {err}"
        );
    }
    // Restored to full length, the spec loads again.
    std::fs::write(&path, &full).unwrap();
    journal.load_spec("job-000003").unwrap();
    std::fs::remove_dir_all(&root).ok();
}

/// A spec overwritten once (same bytes) keeps a `.bak`; every
/// truncation of the primary then recovers instead of failing.
#[test]
fn spec_with_backup_recovers_at_every_truncation() {
    let root = tmp_root("spec_bak");
    let journal = Journal::open(&root).unwrap();
    let spec = sample_spec();
    journal.write_spec("job-000004", &spec).unwrap();
    journal.write_spec("job-000004", &spec).unwrap();

    let path = journal.spec_path("job-000004");
    let full = std::fs::read(&path).unwrap();
    for cut in 0..full.len() {
        std::fs::write(&path, &full[..cut]).unwrap();
        let loaded = journal
            .load_spec("job-000004")
            .expect("the backup must cover every torn prefix");
        assert_eq!(loaded.system.name(), spec.system.name());
    }
    std::fs::remove_dir_all(&root).ok();
}
