//! Integration tests of the resident job server: end-to-end synthesis,
//! typed back-pressure, priority shedding, cancellation, timeouts,
//! transient-failure retry and restart recovery.

use std::path::PathBuf;
use momsynth_sync::sync::atomic::AtomicBool;
use std::time::{Duration, Instant};

use momsynth_core::{CheckpointSpec, SynthControl, Synthesizer};
use momsynth_gen::suite::{generate, GeneratorParams};
use momsynth_model::System;
use momsynth_serve::{socket, JobSpec, JobState, Server, ServerConfig};
use momsynth_telemetry::{Event, MemorySink};

fn small_system(name: &str, seed: u64) -> System {
    let mut params = GeneratorParams::new(name, seed);
    params.modes = 2;
    params.tasks_per_mode = (4, 6);
    generate(&params)
}

/// A system big enough that its quick run takes long enough to observe
/// `Running` (and to cancel, time out or interrupt it).
fn slow_system(name: &str, seed: u64) -> System {
    let mut params = GeneratorParams::new(name, seed);
    params.modes = 3;
    params.tasks_per_mode = (8, 10);
    generate(&params)
}

fn quick_spec(system: System) -> JobSpec {
    let mut spec = JobSpec::new(system);
    spec.quick = true;
    spec.max_evaluations = Some(60);
    spec
}

fn slow_spec(system: System) -> JobSpec {
    let mut spec = JobSpec::new(system);
    spec.quick = true;
    spec
}

fn tmp_root(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("momsynth_serve_{}_{name}", std::process::id()));
    std::fs::remove_dir_all(&p).ok();
    p
}

fn config(root: PathBuf) -> ServerConfig {
    let mut config = ServerConfig::new(root);
    config.checkpoint_every = 1;
    config.retry_backoff_s = 0.05;
    config
}

/// Polls `status` until `pred` holds or `timeout` expires.
fn wait_for(
    server: &Server,
    id: &str,
    timeout: Duration,
    pred: impl Fn(&momsynth_serve::JobStatus) -> bool,
) -> momsynth_serve::JobStatus {
    let deadline = Instant::now() + timeout;
    loop {
        let status = server.status(id).expect("job exists");
        if pred(&status) {
            return status;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting on `{id}`; last status: {status:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn submitted_jobs_run_to_verified_with_durable_results() {
    let root = tmp_root("verified");
    let server = Server::start(config(root.clone())).unwrap();
    let a = server.submit(&quick_spec(small_system("serve-a", 1))).unwrap();
    let b = server.submit(&quick_spec(small_system("serve-b", 2))).unwrap();
    assert_ne!(a, b);

    assert!(server.wait_idle(Duration::from_secs(120)), "jobs must finish");
    for id in [&a, &b] {
        let status = server.status(id).unwrap();
        assert_eq!(status.record.state, JobState::Verified, "{:?}", status.record);
        assert!(status.record.summary.is_some(), "verified jobs carry a summary");
        let progress = status.progress.expect("progress was reported");
        assert!(progress.evaluations > 0);
        let result = server.result(id).expect("verified jobs persist a result");
        assert_eq!(result.get("feasible").and_then(|v| v.as_bool()), Some(true));
        assert!(server.journal().trace_path(id).exists(), "trace is durable");
    }
    server.shutdown();
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn full_queues_reject_with_retry_hints_and_shed_for_priority() {
    let root = tmp_root("backpressure");
    let mut cfg = config(root.clone());
    cfg.workers = 1;
    cfg.queue_capacity = 1;
    let server = Server::start(cfg).unwrap();

    // Occupy the single worker, then the single queue slot.
    let running = server.submit(&slow_spec(slow_system("serve-busy", 3))).unwrap();
    wait_for(&server, &running, Duration::from_secs(30), |s| {
        s.record.state != JobState::Queued
    });
    let queued = server.submit(&quick_spec(small_system("serve-q", 4))).unwrap();

    // Equal priority: typed rejection with a retry hint, nothing lost.
    let rejection = server
        .submit(&quick_spec(small_system("serve-rejected", 5)))
        .expect_err("a full queue must reject equal-priority work");
    assert!(rejection.retry_after_s > 0.0, "{rejection:?}");
    assert_eq!(server.status(&queued).unwrap().record.state, JobState::Queued);

    // Higher priority: the queued lowest-priority job is shed.
    let mut urgent_spec = quick_spec(small_system("serve-urgent", 6));
    urgent_spec.priority = 9;
    let urgent = server.submit(&urgent_spec).expect("higher priority must be admitted");
    let shed = server.status(&queued).unwrap();
    assert_eq!(shed.record.state, JobState::Shed, "{:?}", shed.record);
    assert!(
        shed.record.transitions.last().unwrap().contains(&urgent),
        "the shed record names its evictor: {:?}",
        shed.record.transitions
    );

    assert_eq!(server.cancel(&running), Some(JobState::Running));
    assert!(server.wait_idle(Duration::from_secs(120)));
    assert_eq!(server.status(&urgent).unwrap().record.state, JobState::Verified);
    server.shutdown();
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn cancellation_is_immediate_when_queued_and_cooperative_when_running() {
    let root = tmp_root("cancel");
    let mut cfg = config(root.clone());
    cfg.workers = 1;
    let server = Server::start(cfg).unwrap();

    let running = server.submit(&slow_spec(slow_system("serve-run", 7))).unwrap();
    wait_for(&server, &running, Duration::from_secs(30), |s| {
        s.record.state == JobState::Running
    });
    let queued = server.submit(&quick_spec(small_system("serve-queued", 8))).unwrap();

    assert_eq!(server.cancel(&queued), Some(JobState::Queued));
    assert_eq!(server.status(&queued).unwrap().record.state, JobState::Cancelled);

    assert_eq!(server.cancel(&running), Some(JobState::Running));
    let status = server
        .wait_terminal(&running, Duration::from_secs(60))
        .expect("cancel must terminate the job");
    assert_eq!(status.record.state, JobState::Cancelled);
    // Idempotent on terminal jobs.
    assert_eq!(server.cancel(&running), Some(JobState::Cancelled));
    server.shutdown();
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn per_job_timeouts_mark_jobs_timed_out() {
    let root = tmp_root("timeout");
    let server = Server::start(config(root.clone())).unwrap();
    let mut spec = slow_spec(slow_system("serve-deadline", 9));
    spec.timeout_seconds = Some(0.2);
    let id = server.submit(&spec).unwrap();
    let status = server
        .wait_terminal(&id, Duration::from_secs(60))
        .expect("the watchdog must stop the job");
    assert_eq!(status.record.state, JobState::TimedOut, "{:?}", status.record);
    assert!(status.record.error.as_deref().unwrap_or("").contains("timeout"));
    server.shutdown();
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn unusable_checkpoints_are_retried_transiently_and_self_heal() {
    let root = tmp_root("retry");
    let server = Server::start(config(root.clone())).unwrap();

    // Plant a checkpoint from a *different* system at the path the next
    // job (deterministically `job-000001`) will resume from: attempt 1
    // fails with a checkpoint error, the server drops the bad file and
    // retries, attempt 2 verifies.
    let alien = small_system("serve-alien", 77);
    let cp_path = server.journal().checkpoint_path("job-000001");
    Synthesizer::new(&alien, momsynth_core::SynthesisConfig::fast_preset(77))
        .run_controlled(SynthControl {
            checkpoint: Some(CheckpointSpec::every_generations(cp_path.clone(), 1)),
            ..SynthControl::default()
        })
        .expect("alien run");
    assert!(cp_path.exists());

    let id = server.submit(&quick_spec(small_system("serve-heal", 10))).unwrap();
    assert_eq!(id, "job-000001");
    let status = server
        .wait_terminal(&id, Duration::from_secs(120))
        .expect("the retry must converge");
    assert_eq!(status.record.state, JobState::Verified, "{:?}", status.record);
    assert_eq!(status.record.attempts, 2, "{:?}", status.record.transitions);
    assert!(
        status.record.transitions.iter().any(|t| t.contains("transient failure")),
        "{:?}",
        status.record.transitions
    );
    server.shutdown();
    std::fs::remove_dir_all(&root).ok();
}

/// Graceful shutdown leaves in-flight jobs `Running` with a fresh
/// checkpoint; a restarted server re-enqueues and resumes them, and the
/// stitched trace equals an uninterrupted run of the same spec — the
/// exact-trajectory-tail guarantee, at the server layer.
#[test]
fn restart_resumes_interrupted_jobs_as_an_exact_trajectory_tail() {
    let root = tmp_root("restart");
    let system = slow_system("serve-resume", 11);
    let spec = slow_spec(system.clone());

    let server = Server::start(config(root.clone())).unwrap();
    let id = server.submit(&spec).unwrap();
    wait_for(&server, &id, Duration::from_secs(60), |s| {
        s.record.state == JobState::Running
            && s.progress.is_some_and(|p| p.generation >= 2)
    });
    server.shutdown();

    // The journal still says Running: the job survives the stop.
    let (records, _) = momsynth_serve::Journal::open(&root).unwrap().load_all();
    assert_eq!(records.len(), 1);
    assert_eq!(records[0].state, JobState::Running);

    let server = Server::start(config(root.clone())).unwrap();
    assert!(
        server.recovery_notes().iter().any(|n| n.contains(&id)),
        "{:?}",
        server.recovery_notes()
    );
    let status = server
        .wait_terminal(&id, Duration::from_secs(300))
        .expect("recovered job must finish");
    assert_eq!(status.record.state, JobState::Verified, "{:?}", status.record);
    assert!(
        status.record.transitions.iter().any(|t| t.contains("recovered")),
        "{:?}",
        status.record.transitions
    );
    let report = server.result(&id).expect("recovered job persists a result");
    let trace = std::fs::read_to_string(server.journal().trace_path(&id)).unwrap();
    server.shutdown();

    // Oracle: one uninterrupted run of the same spec.
    let sink = MemorySink::new();
    let full = Synthesizer::new(&system, spec.config())
        .run_controlled(SynthControl { sink: Some(&sink), ..SynthControl::default() })
        .expect("uninterrupted run");

    // Final answers agree exactly.
    assert_eq!(
        report.get("average_power_mw").and_then(|v| v.as_f64()),
        Some(full.best.power.average.as_milli()),
    );
    assert_eq!(
        report.get("generations").and_then(|v| v.as_u64()),
        Some(full.generations as u64),
    );

    // And the stitched per-generation trajectory (attempt 1 + resumed
    // attempt 2, deduplicated on the overlap generation) is the
    // uninterrupted one, event for event.
    let mut stitched: Vec<momsynth_telemetry::GenerationEvent> = Vec::new();
    for line in trace.lines() {
        if let Ok(Event::Generation(g)) = serde_json::from_str::<Event>(line) {
            stitched.retain(|seen| seen.generation != g.generation);
            stitched.push(g.normalized());
        }
    }
    stitched.sort_by_key(|g| g.generation);
    let expected: Vec<momsynth_telemetry::GenerationEvent> = sink
        .events()
        .iter()
        .filter_map(|e| match e {
            Event::Generation(g) => Some(g.normalized()),
            _ => None,
        })
        .collect();
    assert!(!stitched.is_empty());
    assert_eq!(stitched, expected, "resumed trace must be an exact tail");
    std::fs::remove_dir_all(&root).ok();
}

/// One job observed end to end: the trace id handed out in `status`
/// must be the id threaded through every span in the durable trace and
/// the id in the journalled record; the `metrics` protocol request, the
/// HTTP exposition endpoint and the per-job journalled snapshot must
/// all report the lifecycle the job just went through.
#[test]
fn trace_ids_and_metrics_agree_across_status_trace_journal_and_scrape() {
    use std::io::{Read, Write};
    use momsynth_sync::sync::atomic::Ordering;
    use momsynth_sync::sync::Arc;

    let root = tmp_root("observability");
    let server = Server::start(config(root.clone())).unwrap();
    let id = server.submit(&quick_spec(small_system("serve-obs", 13))).unwrap();
    assert!(server.wait_idle(Duration::from_secs(120)), "job must finish");

    // (1) The status response carries the job's trace id.
    let status = server.status(&id).unwrap();
    assert_eq!(status.record.state, JobState::Verified, "{:?}", status.record);
    let trace_id = status.record.trace_id.clone();
    assert!(trace_id.starts_with(&format!("{id}-")), "{trace_id}");

    // (2) Every span in the durable trace threads the same id, and the
    // run announces it up front.
    let trace = std::fs::read_to_string(server.journal().trace_path(&id)).unwrap();
    let (mut run_starts, mut spans) = (0u32, 0u32);
    for line in trace.lines() {
        match serde_json::from_str::<Event>(line).expect("every trace line parses") {
            Event::RunStart(start) => {
                assert_eq!(start.trace_id, trace_id, "{line}");
                run_starts += 1;
            }
            Event::Span(span) => {
                assert_eq!(span.trace_id, trace_id, "{line}");
                assert!(span.path.starts_with("run"), "{}", span.path);
                spans += 1;
            }
            _ => {}
        }
    }
    assert!(run_starts >= 1, "the run start is on the trace");
    assert!(spans >= 2, "phase spans are on the trace: {trace}");

    // (3) The journalled record reloads with the same trace id.
    let (records, _) = momsynth_serve::Journal::open(&root).unwrap().load_all();
    let record = records.iter().find(|r| r.id == id).expect("record journalled");
    assert_eq!(record.trace_id, trace_id);

    // (4) The protocol agrees: `status` echoes the trace id, `metrics`
    // reports the lifecycle, the text variant is scrape-ready.
    let input = format!(
        "{}\n{}\n{}\n",
        format_args!(r#"{{"cmd":"status","id":"{id}"}}"#),
        r#"{"cmd":"metrics"}"#,
        r#"{"cmd":"metrics","format":"text"}"#,
    );
    let mut output = Vec::new();
    let stop = AtomicBool::new(false);
    socket::serve_stdio(&server, input.as_bytes(), &mut output, &stop);
    let lines: Vec<serde_json::Value> = String::from_utf8(output)
        .unwrap()
        .lines()
        .map(|l| serde_json::from_str(l).unwrap())
        .collect();
    assert_eq!(lines.len(), 3);
    let job = lines[0].get("job").expect("status reply");
    assert_eq!(job.get("trace_id").and_then(|v| v.as_str()), Some(trace_id.as_str()));
    let server_block = lines[0].get("server").expect("server health block");
    assert_eq!(server_block.get("queue_depth").and_then(|v| v.as_u64()), Some(0));
    assert!(server_block.get("uptime_s").and_then(|v| v.as_f64()).unwrap_or(-1.0) >= 0.0);

    let counter = |name: &str| -> u64 {
        lines[1]["metrics"]["counters"]
            .as_array()
            .expect("counters array")
            .iter()
            .filter(|c| c.get("name").and_then(|v| v.as_str()) == Some(name))
            .filter_map(|c| c.get("value").and_then(|v| v.as_u64()))
            .sum()
    };
    assert_eq!(counter("momsynth_jobs_submitted_total"), 1);
    assert_eq!(counter("momsynth_jobs_terminal_total"), 1);
    assert!(counter("momsynth_evaluations_total") > 0, "core loop is instrumented");
    let histogram_count = |name: &str| -> u64 {
        lines[1]["metrics"]["histograms"]
            .as_array()
            .expect("histograms array")
            .iter()
            .filter(|h| h.get("name").and_then(|v| v.as_str()) == Some(name))
            .filter_map(|h| h.get("count").and_then(|v| v.as_u64()))
            .sum()
    };
    assert!(histogram_count("momsynth_run_phase_seconds") > 0, "phase latencies recorded");
    assert!(histogram_count("momsynth_journal_write_seconds") > 0, "journal writes timed");
    let text = lines[2].get("text").and_then(|v| v.as_str()).expect("text exposition");
    assert!(text.contains("# TYPE momsynth_jobs_submitted_total counter"), "{text}");

    // (5) A live HTTP scrape of the same registry tells the same story.
    let shutdown = Arc::new(AtomicBool::new(false));
    let (addr, handle) =
        momsynth_serve::spawn_exposition("127.0.0.1:0", server.metrics(), Arc::clone(&shutdown))
            .unwrap();
    let mut conn = std::net::TcpStream::connect(addr).unwrap();
    write!(conn, "GET /metrics HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n").unwrap();
    let mut scrape = String::new();
    conn.read_to_string(&mut scrape).unwrap();
    assert!(scrape.starts_with("HTTP/1.1 200 OK"), "{scrape}");
    assert!(scrape.contains("momsynth_jobs_submitted_total 1"), "{scrape}");
    assert!(scrape.contains("state=\"verified\""), "{scrape}");
    shutdown.store(true, Ordering::Release);
    handle.join().unwrap();

    // (6) Going terminal journalled a per-job metrics snapshot.
    let snapshot_path = server.journal().metrics_path(&id);
    assert!(snapshot_path.exists(), "terminal transition snapshots metrics");
    let snapshot: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&snapshot_path).unwrap()).unwrap();
    assert!(
        snapshot["counters"].as_array().is_some_and(|c| !c.is_empty()),
        "journalled snapshot is populated"
    );

    server.shutdown();
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn the_stdio_protocol_round_trips_submit_wait_result() {
    let root = tmp_root("stdio");
    let server = Server::start(config(root.clone())).unwrap();
    let spec = quick_spec(small_system("serve-proto", 12));
    let submit = format!(r#"{{"cmd":"submit","spec":{}}}"#, serde_json::to_string(&spec).unwrap());
    let input = format!(
        "{}\n{submit}\n{}\n{}\n{}\n{}\n",
        r#"{"cmd":"ping"}"#,
        r#"{"cmd":"wait","id":"job-000001","timeout_s":120}"#,
        r#"{"cmd":"result","id":"job-000001"}"#,
        r#"{"cmd":"bogus"}"#,
        r#"{"cmd":"shutdown"}"#,
    );
    let mut output = Vec::new();
    let stop = AtomicBool::new(false);
    let saw_shutdown = socket::serve_stdio(&server, input.as_bytes(), &mut output, &stop);
    assert!(saw_shutdown, "the shutdown command must be honoured");
    server.shutdown();

    let text = String::from_utf8(output).unwrap();
    let lines: Vec<serde_json::Value> =
        text.lines().map(|l| serde_json::from_str(l).unwrap()).collect();
    assert_eq!(lines.len(), 6, "{text}");
    assert_eq!(lines[0].get("pong").and_then(|v| v.as_bool()), Some(true));
    assert_eq!(lines[1].get("id").and_then(|v| v.as_str()), Some("job-000001"));
    assert_eq!(
        lines[2]
            .get("job")
            .and_then(|j| j.get("state"))
            .and_then(|v| v.as_str()),
        Some("verified"),
        "{text}"
    );
    assert_eq!(
        lines[3]
            .get("result")
            .and_then(|r| r.get("feasible"))
            .and_then(|v| v.as_bool()),
        Some(true)
    );
    assert_eq!(lines[4].get("ok").and_then(|v| v.as_bool()), Some(false));
    assert_eq!(lines[5].get("shutting_down").and_then(|v| v.as_bool()), Some(true));
    std::fs::remove_dir_all(&root).ok();
}
