//! Static schedules for a single operational mode.
//!
//! A [`Schedule`] fixes, for one mode, the start and finish times of every
//! task and of every remote communication (the scheduling function `Sε^O`
//! of the paper), together with the resource each activity occupies and the
//! order of activities per resource. The per-resource sequences are what
//! the voltage-scaling layer needs to rebuild the schedule's constraint
//! graph without re-running the scheduler.

use serde::{Deserialize, Serialize};

use momsynth_model::ids::{ClId, CommId, ModeId, PeId, TaskId, TaskTypeId};
use momsynth_model::task_graph::TaskGraph;
use momsynth_model::units::Seconds;
use momsynth_model::System;

/// An activity: either a task or a (remote) communication.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ActivityId {
    /// A computational task.
    Task(TaskId),
    /// A communication edge routed over a link.
    Comm(CommId),
}

/// The resource an activity executes on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ResourceKey {
    /// A software PE: one sequential execution server.
    SwPe(PeId),
    /// One instance of a hardware core: `(pe, task type, instance index)`.
    HwCore(PeId, TaskTypeId, usize),
    /// A communication link.
    Link(ClId),
}

impl ResourceKey {
    /// Returns the PE this resource belongs to, if it is a PE resource.
    pub fn pe(&self) -> Option<PeId> {
        match self {
            Self::SwPe(pe) | Self::HwCore(pe, _, _) => Some(*pe),
            Self::Link(_) => None,
        }
    }

    /// Returns the link this resource is, if it is a link.
    pub fn link(&self) -> Option<ClId> {
        match self {
            Self::Link(cl) => Some(*cl),
            _ => None,
        }
    }
}

/// A scheduled task entry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduledTask {
    /// The task.
    pub task: TaskId,
    /// The PE executing the task.
    pub pe: PeId,
    /// The exact resource (software server or hardware core instance).
    pub resource: ResourceKey,
    /// Start time within the mode's hyper-period.
    pub start: Seconds,
    /// Nominal execution time at `V_max` on the mapped PE.
    pub exec_time: Seconds,
}

impl ScheduledTask {
    /// Finish time (`start + exec_time`).
    pub fn finish(&self) -> Seconds {
        self.start + self.exec_time
    }
}

/// A scheduled remote communication entry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduledComm {
    /// The communication edge.
    pub comm: CommId,
    /// The link carrying the transfer.
    pub cl: ClId,
    /// Start time within the mode's hyper-period.
    pub start: Seconds,
    /// Transfer duration.
    pub duration: Seconds,
}

impl ScheduledComm {
    /// Finish time (`start + duration`).
    pub fn finish(&self) -> Seconds {
        self.start + self.duration
    }
}

/// A complete static schedule of one mode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    mode: ModeId,
    tasks: Vec<ScheduledTask>,
    /// Indexed by [`CommId`]; `None` marks a PE-local transfer (free).
    comms: Vec<Option<ScheduledComm>>,
    /// Execution order per resource, as produced by the scheduler.
    sequences: Vec<(ResourceKey, Vec<ActivityId>)>,
}

impl Schedule {
    /// Assembles a schedule from its parts. Intended for the scheduler and
    /// for tests; invariants (entries sorted by task id, sequences
    /// time-ordered) are the caller's responsibility.
    pub fn from_parts(
        mode: ModeId,
        tasks: Vec<ScheduledTask>,
        comms: Vec<Option<ScheduledComm>>,
        sequences: Vec<(ResourceKey, Vec<ActivityId>)>,
    ) -> Self {
        Self { mode, tasks, comms, sequences }
    }

    /// Returns the mode this schedule implements.
    pub fn mode(&self) -> ModeId {
        self.mode
    }

    /// Returns the scheduled entry of `task`.
    ///
    /// # Panics
    ///
    /// Panics if `task` is out of range.
    pub fn task(&self, task: TaskId) -> &ScheduledTask {
        &self.tasks[task.index()]
    }

    /// Iterates over all scheduled tasks in task-id order.
    pub fn tasks(&self) -> impl Iterator<Item = &ScheduledTask> + '_ {
        self.tasks.iter()
    }

    /// Returns the scheduled entry of `comm`, or `None` for a local transfer.
    ///
    /// # Panics
    ///
    /// Panics if `comm` is out of range.
    pub fn comm(&self, comm: CommId) -> Option<&ScheduledComm> {
        self.comms[comm.index()].as_ref()
    }

    /// Iterates over all remote communications.
    pub fn remote_comms(&self) -> impl Iterator<Item = &ScheduledComm> + '_ {
        self.comms.iter().flatten()
    }

    /// Returns the per-resource execution sequences.
    pub fn sequences(&self) -> &[(ResourceKey, Vec<ActivityId>)] {
        &self.sequences
    }

    /// Returns the time the last activity finishes.
    pub fn makespan(&self) -> Seconds {
        let task_end = self.tasks.iter().map(ScheduledTask::finish).fold(Seconds::ZERO, Seconds::max);
        let comm_end = self
            .remote_comms()
            .map(ScheduledComm::finish)
            .fold(Seconds::ZERO, Seconds::max);
        task_end.max(comm_end)
    }

    /// Total lateness against effective deadlines: `Σ max(0, finish − min(θ, φ))`,
    /// plus any overrun of the hyper-period by communications. Zero means
    /// the schedule is timing-feasible.
    pub fn total_lateness(&self, graph: &TaskGraph) -> Seconds {
        let mut late = Seconds::ZERO;
        for entry in &self.tasks {
            let deadline = graph.effective_deadline(entry.task);
            late += (entry.finish() - deadline).clamp_non_negative();
        }
        for comm in self.remote_comms() {
            late += (comm.finish() - graph.period()).clamp_non_negative();
        }
        late
    }

    /// Returns `true` when every task meets `min(θ, φ)` and every
    /// communication fits inside the hyper-period.
    pub fn is_timing_feasible(&self, graph: &TaskGraph) -> bool {
        self.total_lateness(graph) <= Seconds::new(1e-12)
    }

    /// Renders a textual Gantt chart (one row per resource) for inspection
    /// in examples and debugging sessions.
    pub fn to_gantt_string(&self, system: &System) -> String {
        let mut out = String::new();
        let graph = system.omsm().mode(self.mode).graph();
        out.push_str(&format!(
            "mode {} `{}` (period {:.3})\n",
            self.mode,
            graph.name(),
            graph.period()
        ));
        for (res, acts) in &self.sequences {
            let label = match res {
                ResourceKey::SwPe(pe) => format!("{} [{}]", system.arch().pe(*pe).name(), pe),
                ResourceKey::HwCore(pe, ty, inst) => format!(
                    "{} [{}] core {}#{}",
                    system.arch().pe(*pe).name(),
                    pe,
                    system.tech().type_name(*ty),
                    inst
                ),
                ResourceKey::Link(cl) => format!("{} [{}]", system.arch().cl(*cl).name(), cl),
            };
            out.push_str(&format!("  {label}:\n"));
            for act in acts {
                match act {
                    ActivityId::Task(t) => {
                        let e = self.task(*t);
                        out.push_str(&format!(
                            "    {:<12} {:>10.6}s .. {:>10.6}s  ({})\n",
                            graph.task(*t).name(),
                            e.start.value(),
                            e.finish().value(),
                            t
                        ));
                    }
                    ActivityId::Comm(c) => {
                        if let Some(e) = self.comm(*c) {
                            let edge = graph.comm(*c);
                            out.push_str(&format!(
                                "    {:<12} {:>10.6}s .. {:>10.6}s  ({}->{})\n",
                                format!("xfer {c}"),
                                e.start.value(),
                                e.finish().value(),
                                edge.src(),
                                edge.dst()
                            ));
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use momsynth_model::{TaskGraphBuilder, ids::TaskTypeId};

    fn chain_graph() -> TaskGraph {
        let mut b = TaskGraphBuilder::new("chain", Seconds::new(1.0));
        let a = b.add_task("a", TaskTypeId::new(0));
        let c = b.add_task_with_deadline("c", TaskTypeId::new(0), Seconds::new(0.5));
        b.add_comm(a, c, 10.0).unwrap();
        b.build().unwrap()
    }

    fn sample_schedule(c_start: f64) -> Schedule {
        let t0 = ScheduledTask {
            task: TaskId::new(0),
            pe: PeId::new(0),
            resource: ResourceKey::SwPe(PeId::new(0)),
            start: Seconds::ZERO,
            exec_time: Seconds::new(0.2),
        };
        let comm = ScheduledComm {
            comm: CommId::new(0),
            cl: ClId::new(0),
            start: Seconds::new(0.2),
            duration: Seconds::new(0.05),
        };
        let t1 = ScheduledTask {
            task: TaskId::new(1),
            pe: PeId::new(1),
            resource: ResourceKey::HwCore(PeId::new(1), TaskTypeId::new(0), 0),
            start: Seconds::new(c_start),
            exec_time: Seconds::new(0.1),
        };
        Schedule::from_parts(
            ModeId::new(0),
            vec![t0, t1],
            vec![Some(comm)],
            vec![
                (ResourceKey::SwPe(PeId::new(0)), vec![ActivityId::Task(TaskId::new(0))]),
                (ResourceKey::Link(ClId::new(0)), vec![ActivityId::Comm(CommId::new(0))]),
                (
                    ResourceKey::HwCore(PeId::new(1), TaskTypeId::new(0), 0),
                    vec![ActivityId::Task(TaskId::new(1))],
                ),
            ],
        )
    }

    #[test]
    fn makespan_is_last_finish() {
        let s = sample_schedule(0.25);
        assert!((s.makespan().value() - 0.35).abs() < 1e-12);
    }

    #[test]
    fn feasible_schedule_has_zero_lateness() {
        let g = chain_graph();
        let s = sample_schedule(0.25);
        assert_eq!(s.total_lateness(&g), Seconds::ZERO);
        assert!(s.is_timing_feasible(&g));
    }

    #[test]
    fn late_task_accumulates_lateness() {
        let g = chain_graph();
        // Task c finishes at 0.6 against a 0.5 deadline -> 0.1 late.
        let s = sample_schedule(0.5);
        assert!((s.total_lateness(&g).value() - 0.1).abs() < 1e-12);
        assert!(!s.is_timing_feasible(&g));
    }

    #[test]
    fn resource_key_accessors() {
        assert_eq!(ResourceKey::SwPe(PeId::new(2)).pe(), Some(PeId::new(2)));
        assert_eq!(
            ResourceKey::HwCore(PeId::new(1), TaskTypeId::new(0), 3).pe(),
            Some(PeId::new(1))
        );
        assert_eq!(ResourceKey::Link(ClId::new(0)).pe(), None);
        assert_eq!(ResourceKey::Link(ClId::new(4)).link(), Some(ClId::new(4)));
        assert_eq!(ResourceKey::SwPe(PeId::new(0)).link(), None);
    }

    #[test]
    fn comm_lookup_distinguishes_local_and_remote() {
        let s = sample_schedule(0.25);
        assert!(s.comm(CommId::new(0)).is_some());
        assert_eq!(s.remote_comms().count(), 1);
    }

    #[test]
    fn serde_round_trip() {
        let s = sample_schedule(0.25);
        let json = serde_json::to_string(&s).unwrap();
        assert_eq!(serde_json::from_str::<Schedule>(&json).unwrap(), s);
    }
}
