//! ASAP/ALAP timing analysis and task mobility.
//!
//! Mobility — the difference between a task's as-late-as-possible and
//! as-soon-as-possible start times — drives two things in the paper's flow
//! (Fig. 4, lines 4–5): the priority order of the list scheduler and the
//! decision to replicate hardware cores for parallel tasks with low
//! mobility.
//!
//! Execution times are taken from the technology library for the mapped
//! PE; inter-PE communication delays are estimated optimistically with the
//! fastest link connecting the two PEs (the scheduler makes the final
//! choice).

use momsynth_model::ids::{ModeId, TaskId};
use momsynth_model::units::Seconds;
use momsynth_model::System;

use crate::mapping::SystemMapping;

/// The ASAP/ALAP start times of every task in one mode.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingAnalysis {
    mode: ModeId,
    exec: Vec<Seconds>,
    asap: Vec<Seconds>,
    alap: Vec<Seconds>,
}

/// Reusable buffers for [`TimingAnalysis::priority_order_into`]. One
/// instance per evaluation worker amortises the analysis allocations
/// across the many schedule calls of a synthesis run.
#[derive(Debug, Default)]
pub struct MobilityScratch {
    exec: Vec<Seconds>,
    asap: Vec<Seconds>,
    alap: Vec<Seconds>,
    alap_finish: Vec<Seconds>,
}

/// Fills `exec`, `asap`, `alap` (and the `alap_finish` intermediate) for
/// `mode`, reusing whatever capacity the buffers already have.
fn analyze_into(
    system: &System,
    mode: ModeId,
    mapping: &SystemMapping,
    exec: &mut Vec<Seconds>,
    asap: &mut Vec<Seconds>,
    alap: &mut Vec<Seconds>,
    alap_finish: &mut Vec<Seconds>,
) {
    let graph = system.omsm().mode(mode).graph();
    let n = graph.task_count();

    exec.clear();
    exec.extend(graph.tasks().map(|(task, t)| {
        let pe = mapping.pe_of(mode, task);
        system
            .tech()
            .impl_of(t.task_type(), pe)
            .map(|imp| imp.exec_time())
            .or_else(|| system.tech().fastest_exec_time(t.task_type()))
            .unwrap_or(Seconds::ZERO)
    }));

    let comm_est = |comm: momsynth_model::ids::CommId| -> Seconds {
        let edge = graph.comm(comm);
        let src_pe = mapping.pe_of(mode, edge.src());
        let dst_pe = mapping.pe_of(mode, edge.dst());
        if src_pe == dst_pe {
            return Seconds::ZERO;
        }
        system
            .arch()
            .cls_between(src_pe, dst_pe)
            .map(|cl| system.arch().cl(cl).transfer_time(edge.data_units()))
            .fold(None, |best: Option<Seconds>, t| {
                Some(best.map_or(t, |b| b.min(t)))
            })
            .unwrap_or(Seconds::ZERO)
    };

    // Forward pass: earliest start ignoring resource contention.
    asap.clear();
    asap.resize(n, Seconds::ZERO);
    for &t in graph.topological_order() {
        let mut start = Seconds::ZERO;
        for &(comm, pred) in graph.predecessors(t) {
            let arrival = asap[pred.index()] + exec[pred.index()] + comm_est(comm);
            start = start.max(arrival);
        }
        asap[t.index()] = start;
    }

    // Backward pass: latest start meeting min(θ, φ) everywhere.
    alap_finish.clear();
    alap_finish.extend(graph.task_ids().map(|t| graph.effective_deadline(t)));
    for &t in graph.topological_order().iter().rev() {
        let mut finish = graph.effective_deadline(t);
        for &(comm, succ) in graph.successors(t) {
            let succ_start = alap_finish[succ.index()] - exec[succ.index()];
            finish = finish.min(succ_start - comm_est(comm));
        }
        alap_finish[t.index()] = finish;
    }
    alap.clear();
    alap.extend(alap_finish.iter().zip(exec.iter()).map(|(&f, &e)| f - e));
}

/// Sorts all task ids by ascending mobility (`alap − asap`), ties broken
/// by ASAP time and then task id, into `out`.
fn fill_priority_order(asap: &[Seconds], alap: &[Seconds], out: &mut Vec<TaskId>) {
    out.clear();
    out.extend((0..asap.len()).map(TaskId::new));
    out.sort_by(|&a, &b| {
        let mob = |t: TaskId| (alap[t.index()] - asap[t.index()]).value();
        mob(a)
            .total_cmp(&mob(b))
            .then(asap[a.index()].value().total_cmp(&asap[b.index()].value()))
            .then(a.index().cmp(&b.index()))
    });
}

impl TimingAnalysis {
    /// Analyses `mode` of `system` under `mapping`.
    ///
    /// Tasks mapped to PEs without an implementation of their type are
    /// given the fastest available execution time of the type so that
    /// analysis stays total; such mappings are rejected later by
    /// [`SystemMapping::validate`] and the scheduler.
    pub fn analyze(system: &System, mode: ModeId, mapping: &SystemMapping) -> Self {
        let mut exec = Vec::new();
        let mut asap = Vec::new();
        let mut alap = Vec::new();
        let mut alap_finish = Vec::new();
        analyze_into(system, mode, mapping, &mut exec, &mut asap, &mut alap, &mut alap_finish);
        Self { mode, exec, asap, alap }
    }

    /// Computes [`TimingAnalysis::priority_order`] for `mode` directly
    /// into `out`, reusing `scratch` instead of allocating a fresh
    /// analysis — the allocation-free path for the list scheduler's hot
    /// loop. Produces exactly the order `analyze(..).priority_order()`
    /// returns.
    pub fn priority_order_into(
        system: &System,
        mode: ModeId,
        mapping: &SystemMapping,
        scratch: &mut MobilityScratch,
        out: &mut Vec<TaskId>,
    ) {
        analyze_into(
            system,
            mode,
            mapping,
            &mut scratch.exec,
            &mut scratch.asap,
            &mut scratch.alap,
            &mut scratch.alap_finish,
        );
        fill_priority_order(&scratch.asap, &scratch.alap, out);
    }

    /// Returns the analysed mode.
    pub fn mode(&self) -> ModeId {
        self.mode
    }

    /// Returns the execution time assumed for `task`.
    ///
    /// # Panics
    ///
    /// Panics if `task` is out of range.
    pub fn exec_time(&self, task: TaskId) -> Seconds {
        self.exec[task.index()]
    }

    /// Returns the earliest possible start of `task`.
    ///
    /// # Panics
    ///
    /// Panics if `task` is out of range.
    pub fn asap(&self, task: TaskId) -> Seconds {
        self.asap[task.index()]
    }

    /// Returns the latest deadline-feasible start of `task`.
    ///
    /// # Panics
    ///
    /// Panics if `task` is out of range.
    pub fn alap(&self, task: TaskId) -> Seconds {
        self.alap[task.index()]
    }

    /// Returns the mobility `ALAP − ASAP` of `task`. Negative mobility
    /// means no resource-unconstrained schedule can meet the deadlines
    /// under this mapping.
    ///
    /// # Panics
    ///
    /// Panics if `task` is out of range.
    pub fn mobility(&self, task: TaskId) -> Seconds {
        self.alap[task.index()] - self.asap[task.index()]
    }

    /// Returns all tasks sorted by ascending mobility (most urgent first),
    /// ties broken by ASAP time and then task id — the list-scheduler
    /// priority order.
    pub fn priority_order(&self) -> Vec<TaskId> {
        let mut order = Vec::new();
        fill_priority_order(&self.asap, &self.alap, &mut order);
        order
    }

    /// Returns `true` if the ASAP windows of two tasks overlap — a
    /// necessary condition for them to execute in parallel.
    pub fn windows_overlap(&self, a: TaskId, b: TaskId) -> bool {
        let (sa, fa) = (self.asap(a), self.asap(a) + self.exec_time(a));
        let (sb, fb) = (self.asap(b), self.asap(b) + self.exec_time(b));
        sa < fb && sb < fa
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use momsynth_model::ids::PeId;
    use momsynth_model::units::{Cells, Watts};
    use momsynth_model::{
        ArchitectureBuilder, Cl, Implementation, OmsmBuilder, Pe, PeKind, TaskGraphBuilder,
        TechLibraryBuilder,
    };

    /// Fork-join: a -> (l, r) -> s, all on one CPU (type X, 10 ms each),
    /// period 100 ms.
    fn fork_join_system(period_ms: f64) -> System {
        let mut tech = TechLibraryBuilder::new();
        let tx = tech.add_type("X");
        let mut arch = ArchitectureBuilder::new();
        let cpu = arch.add_pe(Pe::software("cpu", PeKind::Gpp, Watts::ZERO));
        let hw = arch.add_pe(Pe::hardware("hw", PeKind::Asic, Cells::new(100), Watts::ZERO));
        arch.add_cl(Cl::bus(
            "bus",
            vec![cpu, hw],
            Seconds::from_micros(10.0),
            Watts::ZERO,
            Watts::ZERO,
        ))
        .unwrap();
        tech.set_impl(
            tx,
            cpu,
            Implementation::software(Seconds::from_millis(10.0), Watts::from_milli(1.0)),
        );
        tech.set_impl(
            tx,
            hw,
            Implementation::hardware(
                Seconds::from_millis(1.0),
                Watts::from_micro(10.0),
                Cells::new(50),
            ),
        );

        let mut g = TaskGraphBuilder::new("fj", Seconds::from_millis(period_ms));
        let a = g.add_task("a", tx);
        let l = g.add_task("l", tx);
        let r = g.add_task("r", tx);
        let s = g.add_task("s", tx);
        g.add_comm(a, l, 100.0).unwrap();
        g.add_comm(a, r, 100.0).unwrap();
        g.add_comm(l, s, 100.0).unwrap();
        g.add_comm(r, s, 100.0).unwrap();

        let mut omsm = OmsmBuilder::new();
        omsm.add_mode("fj", 1.0, g.build().unwrap());
        System::new("fj", omsm.build().unwrap(), arch.build().unwrap(), tech.build()).unwrap()
    }

    fn all_cpu_mapping(system: &System) -> SystemMapping {
        SystemMapping::from_fn(system, |_| PeId::new(0))
    }

    #[test]
    fn asap_follows_precedence_same_pe() {
        let sys = fork_join_system(100.0);
        let ta = TimingAnalysis::analyze(&sys, ModeId::new(0), &all_cpu_mapping(&sys));
        // All on one PE: comm estimates are zero.
        assert_eq!(ta.asap(TaskId::new(0)), Seconds::ZERO);
        assert_eq!(ta.asap(TaskId::new(1)), Seconds::from_millis(10.0));
        assert_eq!(ta.asap(TaskId::new(2)), Seconds::from_millis(10.0));
        assert_eq!(ta.asap(TaskId::new(3)), Seconds::from_millis(20.0));
    }

    #[test]
    fn alap_backs_off_from_period() {
        let sys = fork_join_system(100.0);
        let ta = TimingAnalysis::analyze(&sys, ModeId::new(0), &all_cpu_mapping(&sys));
        // Sink must start by 90 ms; its predecessors by 80 ms; source by 70 ms.
        assert!((ta.alap(TaskId::new(3)).as_millis() - 90.0).abs() < 1e-9);
        assert!((ta.alap(TaskId::new(1)).as_millis() - 80.0).abs() < 1e-9);
        assert!((ta.alap(TaskId::new(0)).as_millis() - 70.0).abs() < 1e-9);
        // All tasks share the same 70 ms mobility on the critical path.
        assert!((ta.mobility(TaskId::new(0)).as_millis() - 70.0).abs() < 1e-9);
    }

    #[test]
    fn tight_period_gives_zero_mobility() {
        let sys = fork_join_system(30.0);
        let ta = TimingAnalysis::analyze(&sys, ModeId::new(0), &all_cpu_mapping(&sys));
        for t in 0..4 {
            assert!(ta.mobility(TaskId::new(t)).value().abs() < 1e-9);
        }
    }

    #[test]
    fn infeasible_period_gives_negative_mobility() {
        let sys = fork_join_system(20.0);
        let ta = TimingAnalysis::analyze(&sys, ModeId::new(0), &all_cpu_mapping(&sys));
        assert!(ta.mobility(TaskId::new(0)).value() < 0.0);
    }

    #[test]
    fn cross_pe_comm_is_estimated() {
        let sys = fork_join_system(100.0);
        // Map task l to hardware: comms a->l and l->s become remote
        // (100 units at 10 us/unit = 1 ms each); l runs in 1 ms.
        let mut mapping = all_cpu_mapping(&sys);
        mapping.set(ModeId::new(0), TaskId::new(1), PeId::new(1));
        let ta = TimingAnalysis::analyze(&sys, ModeId::new(0), &mapping);
        assert!((ta.asap(TaskId::new(1)).as_millis() - 11.0).abs() < 1e-9);
        // Sink waits for r (slower path through cpu): max(11+1+1, 10+10) = 20.
        assert!((ta.asap(TaskId::new(3)).as_millis() - 20.0).abs() < 1e-9);
        assert_eq!(ta.exec_time(TaskId::new(1)), Seconds::from_millis(1.0));
    }

    #[test]
    fn priority_order_puts_critical_tasks_first() {
        let sys = fork_join_system(100.0);
        let mut mapping = all_cpu_mapping(&sys);
        mapping.set(ModeId::new(0), TaskId::new(1), PeId::new(1));
        let ta = TimingAnalysis::analyze(&sys, ModeId::new(0), &mapping);
        let order = ta.priority_order();
        assert_eq!(order.len(), 4);
        // The HW-mapped branch l finishes quickly, so it has more slack
        // than the r branch; r must come before l in priority order.
        let pos = |t: usize| order.iter().position(|&x| x == TaskId::new(t)).unwrap();
        assert!(pos(2) < pos(1));
    }

    #[test]
    fn deadline_tightens_alap() {
        let mut tech = TechLibraryBuilder::new();
        let tx = tech.add_type("X");
        let mut arch = ArchitectureBuilder::new();
        let cpu = arch.add_pe(Pe::software("cpu", PeKind::Gpp, Watts::ZERO));
        tech.set_impl(
            tx,
            cpu,
            Implementation::software(Seconds::from_millis(10.0), Watts::ZERO),
        );
        let mut g = TaskGraphBuilder::new("g", Seconds::from_millis(100.0));
        let a = g.add_task_with_deadline("a", tx, Seconds::from_millis(15.0));
        let b = g.add_task("b", tx);
        g.add_comm(a, b, 0.0).unwrap();
        let mut omsm = OmsmBuilder::new();
        omsm.add_mode("m", 1.0, g.build().unwrap());
        let sys =
            System::new("s", omsm.build().unwrap(), arch.build().unwrap(), tech.build()).unwrap();
        let mapping = SystemMapping::from_fn(&sys, |_| cpu);
        let ta = TimingAnalysis::analyze(&sys, ModeId::new(0), &mapping);
        // a must start by 5 ms to meet its own 15 ms deadline.
        assert!((ta.alap(TaskId::new(0)).as_millis() - 5.0).abs() < 1e-9);
        assert_eq!(ta.asap(TaskId::new(0)), Seconds::ZERO);
        assert!((ta.mobility(TaskId::new(0)).as_millis() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn scratch_priority_order_matches_the_allocating_path() {
        let sys = fork_join_system(100.0);
        let mut scratch = MobilityScratch::default();
        let mut order = Vec::new();
        // Reuse the same scratch across different mappings: stale buffer
        // contents must not leak into later analyses.
        for hw_task in [1usize, 2] {
            let mut mapping = all_cpu_mapping(&sys);
            mapping.set(ModeId::new(0), TaskId::new(hw_task), PeId::new(1));
            TimingAnalysis::priority_order_into(
                &sys,
                ModeId::new(0),
                &mapping,
                &mut scratch,
                &mut order,
            );
            let expected =
                TimingAnalysis::analyze(&sys, ModeId::new(0), &mapping).priority_order();
            assert_eq!(order, expected);
        }
    }

    #[test]
    fn windows_overlap_detects_parallel_tasks() {
        let sys = fork_join_system(100.0);
        let ta = TimingAnalysis::analyze(&sys, ModeId::new(0), &all_cpu_mapping(&sys));
        // l and r have identical ASAP windows.
        assert!(ta.windows_overlap(TaskId::new(1), TaskId::new(2)));
        // a and s never overlap.
        assert!(!ta.windows_overlap(TaskId::new(0), TaskId::new(3)));
    }
}
