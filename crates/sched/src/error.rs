//! Error types for mapping validation and scheduling.

use std::fmt;

use momsynth_model::ids::{ModeId, PeId, TaskId};

/// Error produced while validating a mapping or constructing a schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SchedError {
    /// The mapping has the wrong number of modes or tasks for the system.
    ShapeMismatch {
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// A task is mapped to a PE that cannot implement its type.
    UnsupportedMapping {
        /// The mode containing the task.
        mode: ModeId,
        /// The offending task.
        task: TaskId,
        /// The PE lacking an implementation.
        pe: PeId,
    },
    /// Two tasks must communicate but their PEs share no link.
    NoRoute {
        /// The mode containing the communication.
        mode: ModeId,
        /// The producing PE.
        from: PeId,
        /// The consuming PE.
        to: PeId,
    },
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ShapeMismatch { detail } => {
                write!(f, "mapping shape does not match the system: {detail}")
            }
            Self::UnsupportedMapping { mode, task, pe } => {
                write!(f, "task {task} of mode {mode} is mapped to {pe}, which cannot implement its type")
            }
            Self::NoRoute { mode, from, to } => {
                write!(f, "mode {mode}: no communication link connects {from} and {to}")
            }
        }
    }
}

impl std::error::Error for SchedError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SchedError::NoRoute { mode: ModeId::new(1), from: PeId::new(0), to: PeId::new(2) };
        let msg = e.to_string();
        assert!(msg.contains("O1") && msg.contains("PE0") && msg.contains("PE2"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Send + Sync + 'static>() {}
        assert_bounds::<SchedError>();
    }
}
