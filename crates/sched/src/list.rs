//! Mobility-driven list scheduling with on-line communication mapping.
//!
//! This is the inner loop of the paper's co-synthesis (Fig. 4, line 10),
//! equivalent in role to the LOPOCOS scheduling substrate of the paper's
//! reference \[12\]: given a task mapping and a hardware core allocation, construct a
//! static schedule `Sε^O` for one mode and simultaneously derive the
//! communication mapping `Mγ^O` by routing each inter-PE transfer over the
//! connecting link that lets it finish earliest.
//!
//! Resources are modelled as sequential servers: one per software PE, one
//! per allocated hardware core instance, one per link. Hardware tasks of
//! different cores run in parallel; tasks contending for the same core
//! instance sequentialise — the paper's hardware-sharing semantics.

use std::collections::BTreeMap;

use momsynth_model::ids::{ModeId, TaskId};
use momsynth_model::units::Seconds;
use momsynth_model::System;

use crate::error::SchedError;
use crate::mapping::{CoreAllocation, SystemMapping};
use crate::mobility::{MobilityScratch, TimingAnalysis};
use crate::schedule::{ActivityId, ResourceKey, Schedule, ScheduledComm, ScheduledTask};

/// The rule used to order ready tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    /// Ascending mobility (the paper's choice): urgent tasks first.
    #[default]
    Mobility,
    /// Task-id order; the ablation baseline for design decision D5.
    Fifo,
}

/// Options controlling the list scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SchedulerOptions {
    /// Ready-list ordering rule.
    pub priority: Priority,
}

/// Reusable buffers for [`schedule_mode_with`]. One instance per
/// evaluation worker amortises the scheduler's per-call allocations
/// (priority order, ranks, ready list, dependency counters and the
/// mobility analysis) across the thousands of schedule calls of a
/// synthesis run. Buffers are cleared on entry, so reuse can never leak
/// state between calls.
#[derive(Debug, Default)]
pub struct ListScratch {
    mobility: MobilityScratch,
    order: Vec<TaskId>,
    rank: Vec<usize>,
    scheduled: Vec<Option<ScheduledTask>>,
    pending_preds: Vec<usize>,
    ready: Vec<TaskId>,
}

/// Schedules one mode of `system` under `mapping` and `alloc`.
///
/// Returns a [`Schedule`] with per-resource activity sequences; timing
/// feasibility is *not* enforced here — the caller inspects
/// [`Schedule::total_lateness`] and applies the paper's timing penalty.
///
/// Allocates fresh working buffers per call; the synthesis hot loop uses
/// [`schedule_mode_with`] with a reusable [`ListScratch`] instead.
///
/// # Errors
///
/// Returns [`SchedError::UnsupportedMapping`] if a task is mapped to a PE
/// lacking an implementation of its type, and [`SchedError::NoRoute`] if
/// two communicating tasks sit on PEs with no common link.
pub fn schedule_mode(
    system: &System,
    mode: ModeId,
    mapping: &SystemMapping,
    alloc: &CoreAllocation,
    options: SchedulerOptions,
) -> Result<Schedule, SchedError> {
    schedule_mode_with(system, mode, mapping, alloc, options, &mut ListScratch::default())
}

/// [`schedule_mode`] with caller-provided scratch buffers; produces the
/// identical schedule.
///
/// # Errors
///
/// As [`schedule_mode`].
pub fn schedule_mode_with(
    system: &System,
    mode: ModeId,
    mapping: &SystemMapping,
    alloc: &CoreAllocation,
    options: SchedulerOptions,
    scratch: &mut ListScratch,
) -> Result<Schedule, SchedError> {
    let graph = system.omsm().mode(mode).graph();
    let n = graph.task_count();

    // Priority ranks: rank[task] = position in the chosen order.
    let order = &mut scratch.order;
    match options.priority {
        Priority::Mobility => TimingAnalysis::priority_order_into(
            system,
            mode,
            mapping,
            &mut scratch.mobility,
            order,
        ),
        Priority::Fifo => {
            order.clear();
            order.extend(graph.task_ids());
        }
    }
    let rank = &mut scratch.rank;
    rank.clear();
    rank.resize(n, 0);
    for (pos, &t) in order.iter().enumerate() {
        rank[t.index()] = pos;
    }

    let scheduled = &mut scratch.scheduled;
    scheduled.clear();
    scheduled.resize(n, None);
    // The comm entries and resource sequences escape into the returned
    // `Schedule`, so they are freshly allocated.
    let mut comms: Vec<Option<ScheduledComm>> = vec![None; graph.comm_count()];
    let mut avail: BTreeMap<ResourceKey, Seconds> = BTreeMap::new();
    let mut sequences: BTreeMap<ResourceKey, Vec<ActivityId>> = BTreeMap::new();

    let pending_preds = &mut scratch.pending_preds;
    pending_preds.clear();
    pending_preds.extend(graph.task_ids().map(|t| graph.predecessors(t).len()));
    let ready = &mut scratch.ready;
    ready.clear();
    ready.extend(graph.task_ids().filter(|t| pending_preds[t.index()] == 0));

    while let Some(pos) = ready
        .iter()
        .enumerate()
        .min_by_key(|(_, t)| rank[t.index()])
        .map(|(i, _)| i)
    {
        let task = ready.swap_remove(pos);
        let pe = mapping.pe_of(mode, task);
        let ty = graph.task(task).task_type();
        let imp = system
            .tech()
            .impl_of(ty, pe)
            .ok_or(SchedError::UnsupportedMapping { mode, task, pe })?;

        // Route incoming data, scheduling remote transfers on links.
        let mut est = Seconds::ZERO;
        for &(comm, pred) in graph.predecessors(task) {
            let pred_entry = scheduled[pred.index()]
                .expect("predecessor scheduled before successor became ready");
            let src_pe = pred_entry.pe;
            if src_pe == pe {
                est = est.max(pred_entry.finish());
                continue;
            }
            let edge = graph.comm(comm);
            // Pick the connecting link with the earliest transfer finish.
            let mut best: Option<(ResourceKey, ScheduledComm)> = None;
            for cl in system.arch().cls_between(src_pe, pe) {
                let key = ResourceKey::Link(cl);
                let link_free = avail.get(&key).copied().unwrap_or(Seconds::ZERO);
                let start = link_free.max(pred_entry.finish());
                let duration = system.arch().cl(cl).transfer_time(edge.data_units());
                let candidate = ScheduledComm { comm, cl, start, duration };
                let better = match &best {
                    None => true,
                    Some((_, b)) => candidate.finish() < b.finish(),
                };
                if better {
                    best = Some((key, candidate));
                }
            }
            let (key, entry) =
                best.ok_or(SchedError::NoRoute { mode, from: src_pe, to: pe })?;
            avail.insert(key, entry.finish());
            sequences.entry(key).or_default().push(ActivityId::Comm(comm));
            comms[comm.index()] = Some(entry);
            est = est.max(entry.finish());
        }

        // Pick the execution resource.
        let resource = if system.arch().pe(pe).kind().is_software() {
            ResourceKey::SwPe(pe)
        } else {
            let instances = alloc.instances(mode, pe, ty).max(1);
            (0..instances)
                .map(|i| ResourceKey::HwCore(pe, ty, i))
                .min_by(|a, b| {
                    let fa = avail.get(a).copied().unwrap_or(Seconds::ZERO);
                    let fb = avail.get(b).copied().unwrap_or(Seconds::ZERO);
                    fa.value().total_cmp(&fb.value())
                })
                .expect("at least one core instance")
        };
        let res_free = avail.get(&resource).copied().unwrap_or(Seconds::ZERO);
        let start = est.max(res_free);
        let entry = ScheduledTask { task, pe, resource, start, exec_time: imp.exec_time() };
        avail.insert(resource, entry.finish());
        sequences.entry(resource).or_default().push(ActivityId::Task(task));
        scheduled[task.index()] = Some(entry);

        for &(_, succ) in graph.successors(task) {
            pending_preds[succ.index()] -= 1;
            if pending_preds[succ.index()] == 0 {
                ready.push(succ);
            }
        }
    }

    let tasks: Vec<ScheduledTask> = scheduled
        .iter_mut()
        .map(|t| t.take().expect("acyclic graph schedules every task"))
        .collect();
    let sequences: Vec<(ResourceKey, Vec<ActivityId>)> = sequences.into_iter().collect();
    Ok(Schedule::from_parts(mode, tasks, comms, sequences))
}

#[cfg(test)]
mod tests {
    use super::*;
    use momsynth_model::ids::{PeId, TaskTypeId};
    use momsynth_model::units::{Cells, Watts};
    use momsynth_model::{
        ArchitectureBuilder, Cl, Implementation, OmsmBuilder, Pe, PeKind, TaskGraphBuilder,
        TechLibraryBuilder,
    };

    /// One CPU + one ASIC on a bus; types X (SW 10 ms / HW 1 ms) and
    /// Y (SW only, 5 ms). Mode 0: fork-join a->(l,r)->s with l,r of type X
    /// and a,s of type Y.
    fn testbed() -> System {
        let mut tech = TechLibraryBuilder::new();
        let tx = tech.add_type("X");
        let ty = tech.add_type("Y");
        let mut arch = ArchitectureBuilder::new();
        let cpu = arch.add_pe(Pe::software("cpu", PeKind::Gpp, Watts::ZERO));
        let hw = arch.add_pe(Pe::hardware("hw", PeKind::Asic, Cells::new(100), Watts::ZERO));
        arch.add_cl(Cl::bus(
            "bus",
            vec![cpu, hw],
            Seconds::from_micros(10.0),
            Watts::ZERO,
            Watts::ZERO,
        ))
        .unwrap();
        tech.set_impl(
            tx,
            cpu,
            Implementation::software(Seconds::from_millis(10.0), Watts::from_milli(1.0)),
        );
        tech.set_impl(
            tx,
            hw,
            Implementation::hardware(
                Seconds::from_millis(1.0),
                Watts::from_micro(10.0),
                Cells::new(50),
            ),
        );
        tech.set_impl(
            ty,
            cpu,
            Implementation::software(Seconds::from_millis(5.0), Watts::from_milli(1.0)),
        );

        let mut g = TaskGraphBuilder::new("fj", Seconds::from_millis(100.0));
        let a = g.add_task("a", ty);
        let l = g.add_task("l", tx);
        let r = g.add_task("r", tx);
        let s = g.add_task("s", ty);
        g.add_comm(a, l, 100.0).unwrap();
        g.add_comm(a, r, 100.0).unwrap();
        g.add_comm(l, s, 100.0).unwrap();
        g.add_comm(r, s, 100.0).unwrap();
        let mut omsm = OmsmBuilder::new();
        omsm.add_mode("fj", 1.0, g.build().unwrap());
        System::new("tb", omsm.build().unwrap(), arch.build().unwrap(), tech.build()).unwrap()
    }

    fn cpu_mapping(sys: &System) -> SystemMapping {
        SystemMapping::from_fn(sys, |_| PeId::new(0))
    }

    fn run(sys: &System, mapping: &SystemMapping) -> Schedule {
        let alloc = CoreAllocation::minimal(sys, mapping);
        schedule_mode(sys, ModeId::new(0), mapping, &alloc, SchedulerOptions::default()).unwrap()
    }

    #[test]
    fn software_tasks_sequentialise() {
        let sys = testbed();
        let s = run(&sys, &cpu_mapping(&sys));
        // a(5) then l(10), r(10) in some order, then s(5): makespan 30 ms.
        assert!((s.makespan().as_millis() - 30.0).abs() < 1e-9);
        assert_eq!(s.remote_comms().count(), 0);
        // All four tasks on the single software server, no overlap.
        let seq = s.sequences();
        assert_eq!(seq.len(), 1);
        assert_eq!(seq[0].0, ResourceKey::SwPe(PeId::new(0)));
        assert_eq!(seq[0].1.len(), 4);
        let mut last_finish = Seconds::ZERO;
        for act in &seq[0].1 {
            if let ActivityId::Task(t) = act {
                let e = s.task(*t);
                assert!(e.start + Seconds::new(1e-15) >= last_finish);
                last_finish = e.finish();
            }
        }
    }

    /// Two independent type-X tasks on the ASIC: parallel with two core
    /// instances, sequential with one.
    fn independent_pair_system() -> System {
        let mut tech = TechLibraryBuilder::new();
        let tx = tech.add_type("X");
        let mut arch = ArchitectureBuilder::new();
        let _cpu = arch.add_pe(Pe::software("cpu", PeKind::Gpp, Watts::ZERO));
        let hw = arch.add_pe(Pe::hardware("hw", PeKind::Asic, Cells::new(100), Watts::ZERO));
        tech.set_impl(
            tx,
            hw,
            Implementation::hardware(
                Seconds::from_millis(2.0),
                Watts::from_micro(10.0),
                Cells::new(50),
            ),
        );
        let mut g = TaskGraphBuilder::new("pair", Seconds::from_millis(100.0));
        g.add_task("p", tx);
        g.add_task("q", tx);
        let mut omsm = OmsmBuilder::new();
        omsm.add_mode("pair", 1.0, g.build().unwrap());
        System::new("pair", omsm.build().unwrap(), arch.build().unwrap(), tech.build()).unwrap()
    }

    #[test]
    fn hardware_cores_run_in_parallel_when_replicated() {
        let sys = independent_pair_system();
        let mapping = SystemMapping::from_fn(&sys, |_| PeId::new(1));
        let mut alloc = CoreAllocation::minimal(&sys, &mapping);
        alloc.set_instances(ModeId::new(0), PeId::new(1), TaskTypeId::new(0), 2);
        let s = schedule_mode(
            &sys,
            ModeId::new(0),
            &mapping,
            &alloc,
            SchedulerOptions::default(),
        )
        .unwrap();
        let p = s.task(TaskId::new(0));
        let q = s.task(TaskId::new(1));
        assert_ne!(p.resource, q.resource);
        assert_eq!(p.start, Seconds::ZERO);
        assert_eq!(q.start, Seconds::ZERO);
        assert!((s.makespan().as_millis() - 2.0).abs() < 1e-9);

        // With the minimal single-core allocation the pair sequentialises.
        let alloc1 = CoreAllocation::minimal(&sys, &mapping);
        let s1 = schedule_mode(
            &sys,
            ModeId::new(0),
            &mapping,
            &alloc1,
            SchedulerOptions::default(),
        )
        .unwrap();
        assert!((s1.makespan().as_millis() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn single_core_contention_sequentialises() {
        let sys = testbed();
        let mut mapping = cpu_mapping(&sys);
        mapping.set(ModeId::new(0), TaskId::new(1), PeId::new(1));
        mapping.set(ModeId::new(0), TaskId::new(2), PeId::new(1));
        let s = run(&sys, &mapping); // minimal alloc: one core
        let l = s.task(TaskId::new(1));
        let r = s.task(TaskId::new(2));
        assert_eq!(l.resource, r.resource);
        let (first, second) = if l.start < r.start { (l, r) } else { (r, l) };
        assert!(second.start + Seconds::new(1e-15) >= first.finish());
    }

    #[test]
    fn remote_comm_is_routed_and_timed() {
        let sys = testbed();
        let mut mapping = cpu_mapping(&sys);
        mapping.set(ModeId::new(0), TaskId::new(1), PeId::new(1));
        let s = run(&sys, &mapping);
        // a finishes at 5 ms; a->l transfers 100 units at 10 us = 1 ms.
        let c = s.comm(momsynth_model::ids::CommId::new(0)).unwrap();
        assert!((c.start.as_millis() - 5.0).abs() < 1e-9);
        assert!((c.duration.as_millis() - 1.0).abs() < 1e-9);
        // l executes 6..7 on hw; l->s transfers back 7..8.
        let l = s.task(TaskId::new(1));
        assert!((l.start.as_millis() - 6.0).abs() < 1e-9);
        let back = s.comm(momsynth_model::ids::CommId::new(2)).unwrap();
        assert!((back.start.as_millis() - 7.0).abs() < 1e-9);
        // Local comms have no entries.
        assert!(s.comm(momsynth_model::ids::CommId::new(1)).is_none());
        assert_eq!(s.remote_comms().count(), 2);
    }

    #[test]
    fn bus_contention_serialises_transfers() {
        let sys = testbed();
        let mut mapping = cpu_mapping(&sys);
        mapping.set(ModeId::new(0), TaskId::new(1), PeId::new(1));
        mapping.set(ModeId::new(0), TaskId::new(2), PeId::new(1));
        let mut alloc = CoreAllocation::minimal(&sys, &mapping);
        alloc.set_instances(ModeId::new(0), PeId::new(1), TaskTypeId::new(0), 2);
        let s = schedule_mode(
            &sys,
            ModeId::new(0),
            &mapping,
            &alloc,
            SchedulerOptions::default(),
        )
        .unwrap();
        // Both a->l and a->r become ready at 5 ms but share the bus.
        let c0 = s.comm(momsynth_model::ids::CommId::new(0)).unwrap();
        let c1 = s.comm(momsynth_model::ids::CommId::new(1)).unwrap();
        let (first, second) = if c0.start < c1.start { (c0, c1) } else { (c1, c0) };
        assert!(second.start + Seconds::new(1e-15) >= first.finish());
    }

    #[test]
    fn missing_implementation_is_reported() {
        let sys = testbed();
        // Task a has type Y with no HW implementation.
        let mut mapping = cpu_mapping(&sys);
        mapping.set(ModeId::new(0), TaskId::new(0), PeId::new(1));
        let alloc = CoreAllocation::minimal(&sys, &mapping);
        let err = schedule_mode(
            &sys,
            ModeId::new(0),
            &mapping,
            &alloc,
            SchedulerOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, SchedError::UnsupportedMapping { .. }));
    }

    #[test]
    fn no_route_is_reported() {
        // Two CPUs without any link.
        let mut tech = TechLibraryBuilder::new();
        let tx = tech.add_type("X");
        let mut arch = ArchitectureBuilder::new();
        let c0 = arch.add_pe(Pe::software("c0", PeKind::Gpp, Watts::ZERO));
        let c1 = arch.add_pe(Pe::software("c1", PeKind::Gpp, Watts::ZERO));
        tech.set_impl(tx, c0, Implementation::software(Seconds::new(0.01), Watts::ZERO));
        tech.set_impl(tx, c1, Implementation::software(Seconds::new(0.01), Watts::ZERO));
        let mut g = TaskGraphBuilder::new("g", Seconds::new(1.0));
        let a = g.add_task("a", tx);
        let b = g.add_task("b", tx);
        g.add_comm(a, b, 1.0).unwrap();
        let mut omsm = OmsmBuilder::new();
        omsm.add_mode("m", 1.0, g.build().unwrap());
        let sys =
            System::new("s", omsm.build().unwrap(), arch.build().unwrap(), tech.build()).unwrap();
        let mapping = SystemMapping::from_vecs(vec![vec![c0, c1]]);
        let alloc = CoreAllocation::minimal(&sys, &mapping);
        let err = schedule_mode(
            &sys,
            ModeId::new(0),
            &mapping,
            &alloc,
            SchedulerOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, SchedError::NoRoute { .. }));
    }

    #[test]
    fn scheduling_is_deterministic() {
        let sys = testbed();
        let mapping = cpu_mapping(&sys);
        let a = run(&sys, &mapping);
        let b = run(&sys, &mapping);
        assert_eq!(a, b);
    }

    #[test]
    fn reused_scratch_produces_identical_schedules() {
        let sys = testbed();
        let mut scratch = ListScratch::default();
        // Alternate between mappings so every buffer is refilled with
        // different contents; each result must match a fresh-buffer run.
        for hw_task in [1usize, 2, 1] {
            let mut mapping = cpu_mapping(&sys);
            mapping.set(ModeId::new(0), TaskId::new(hw_task), PeId::new(1));
            let alloc = CoreAllocation::minimal(&sys, &mapping);
            let reused = schedule_mode_with(
                &sys,
                ModeId::new(0),
                &mapping,
                &alloc,
                SchedulerOptions::default(),
                &mut scratch,
            )
            .unwrap();
            let fresh = schedule_mode(
                &sys,
                ModeId::new(0),
                &mapping,
                &alloc,
                SchedulerOptions::default(),
            )
            .unwrap();
            assert_eq!(reused, fresh);
        }
    }

    #[test]
    fn fifo_priority_is_supported() {
        let sys = testbed();
        let mapping = cpu_mapping(&sys);
        let alloc = CoreAllocation::minimal(&sys, &mapping);
        let s = schedule_mode(
            &sys,
            ModeId::new(0),
            &mapping,
            &alloc,
            SchedulerOptions { priority: Priority::Fifo },
        )
        .unwrap();
        // Same makespan on a single resource regardless of order.
        assert!((s.makespan().as_millis() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn gantt_rendering_mentions_resources_and_tasks() {
        let sys = testbed();
        let mut mapping = cpu_mapping(&sys);
        mapping.set(ModeId::new(0), TaskId::new(1), PeId::new(1));
        let s = run(&sys, &mapping);
        let gantt = s.to_gantt_string(&sys);
        assert!(gantt.contains("cpu"));
        assert!(gantt.contains("hw"));
        assert!(gantt.contains("bus"));
        assert!(gantt.contains("xfer"));
    }
}
