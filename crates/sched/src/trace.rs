//! VCD (Value Change Dump) export of schedules.
//!
//! Renders one mode's schedule as an IEEE-1364 VCD trace viewable in
//! GTKWave and other waveform viewers — the natural way for a hardware
//! designer to inspect a co-synthesis result. Each resource (software PE,
//! hardware core instance, link) contributes two signals:
//!
//! * `busy` — a 1-bit wire, high while the resource executes anything;
//! * `act` — an 8-bit vector carrying `activity id + 1` (task id for PE
//!   resources, communication id for links), `0` when idle.
//!
//! Timestamps use a 1 ns timescale.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use momsynth_model::units::Seconds;
use momsynth_model::System;

use crate::schedule::{ActivityId, ResourceKey, Schedule};

/// Identifier characters for VCD symbol allocation.
const SYMBOLS: &[u8] = b"!\"#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ[\\]^_`abcdefghijklmnopqrstuvwxyz{|}~";

fn symbol(index: usize) -> String {
    // Multi-character symbols once the single characters run out.
    let mut i = index;
    let mut s = String::new();
    loop {
        s.push(SYMBOLS[i % SYMBOLS.len()] as char);
        i /= SYMBOLS.len();
        if i == 0 {
            break;
        }
        i -= 1;
    }
    s
}

fn sanitize(name: &str) -> String {
    name.chars().map(|c| if c.is_whitespace() { '_' } else { c }).collect()
}

fn resource_name(system: &System, resource: &ResourceKey) -> String {
    match resource {
        ResourceKey::SwPe(pe) => sanitize(system.arch().pe(*pe).name()),
        ResourceKey::HwCore(pe, ty, instance) => format!(
            "{}_{}_{}",
            sanitize(system.arch().pe(*pe).name()),
            sanitize(system.tech().type_name(*ty)),
            instance
        ),
        ResourceKey::Link(cl) => sanitize(system.arch().cl(*cl).name()),
    }
}

fn to_nanos(t: Seconds) -> u64 {
    (t.value() * 1e9).round() as u64
}

/// Renders `schedule` as a VCD document.
///
/// # Panics
///
/// Panics if `schedule` does not belong to a mode of `system`.
pub fn schedule_to_vcd(system: &System, schedule: &Schedule) -> String {
    let graph = system.omsm().mode(schedule.mode()).graph();

    // Events per resource: (time_ns, activity id + 1 or 0 for idle).
    let mut events: BTreeMap<u64, Vec<(usize, u16)>> = BTreeMap::new();
    let mut resources: Vec<(ResourceKey, String)> = Vec::new();
    for (idx, (resource, acts)) in schedule.sequences().iter().enumerate() {
        resources.push((*resource, resource_name(system, resource)));
        for act in acts {
            let (start, finish, code) = match act {
                ActivityId::Task(t) => {
                    let e = schedule.task(*t);
                    (e.start, e.finish(), t.index() as u16 + 1)
                }
                ActivityId::Comm(c) => {
                    let e = schedule.comm(*c).expect("sequenced comm is remote");
                    (e.start, e.finish(), c.index() as u16 + 1)
                }
            };
            events.entry(to_nanos(start)).or_default().push((idx, code));
            events.entry(to_nanos(finish)).or_default().push((idx, 0));
        }
    }

    let mut out = String::new();
    let _ = writeln!(out, "$comment momsynth schedule of mode `{}` $end", graph.name());
    let _ = writeln!(out, "$timescale 1ns $end");
    let _ = writeln!(out, "$scope module {} $end", sanitize(graph.name()));
    for (idx, (_, name)) in resources.iter().enumerate() {
        let _ = writeln!(out, "$var wire 1 {} {}_busy $end", symbol(2 * idx), name);
        let _ = writeln!(out, "$var wire 8 {} {}_act $end", symbol(2 * idx + 1), name);
    }
    let _ = writeln!(out, "$upscope $end");
    let _ = writeln!(out, "$enddefinitions $end");

    // Initial values: everything idle.
    let _ = writeln!(out, "#0");
    let _ = writeln!(out, "$dumpvars");
    for (idx, _) in resources.iter().enumerate() {
        let _ = writeln!(out, "0{}", symbol(2 * idx));
        let _ = writeln!(out, "b0 {}", symbol(2 * idx + 1));
    }
    let _ = writeln!(out, "$end");

    // A resource may end one activity and start the next at the same
    // instant; emit the start last so the resource stays busy.
    for (time, mut changes) in events {
        if time > 0 {
            let _ = writeln!(out, "#{time}");
        }
        changes.sort_by_key(|&(idx, code)| (idx, code != 0));
        // Keep only the final state per resource at this instant.
        let mut last: BTreeMap<usize, u16> = BTreeMap::new();
        for (idx, code) in changes {
            last.insert(idx, code);
        }
        for (idx, code) in last {
            let _ = writeln!(out, "{}{}", u8::from(code != 0), symbol(2 * idx));
            let _ = writeln!(out, "b{:b} {}", code, symbol(2 * idx + 1));
        }
    }
    // Close the trace at the hyper-period.
    let _ = writeln!(out, "#{}", to_nanos(graph.period()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list::{schedule_mode, SchedulerOptions};
    use crate::mapping::{CoreAllocation, SystemMapping};
    use momsynth_model::ids::{ModeId, PeId};
    use momsynth_model::units::{Cells, Watts};
    use momsynth_model::{
        ArchitectureBuilder, Cl, Implementation, OmsmBuilder, Pe, PeKind, TaskGraphBuilder,
        TechLibraryBuilder,
    };

    fn testbed() -> System {
        let mut tech = TechLibraryBuilder::new();
        let tx = tech.add_type("X");
        let mut arch = ArchitectureBuilder::new();
        let cpu = arch.add_pe(Pe::software("cpu", PeKind::Gpp, Watts::ZERO));
        let hw = arch.add_pe(Pe::hardware("hw", PeKind::Asic, Cells::new(200), Watts::ZERO));
        arch.add_cl(Cl::bus(
            "bus",
            vec![cpu, hw],
            Seconds::from_micros(10.0),
            Watts::ZERO,
            Watts::ZERO,
        ))
        .unwrap();
        tech.set_impl(
            tx,
            cpu,
            Implementation::software(Seconds::from_millis(10.0), Watts::from_milli(1.0)),
        );
        tech.set_impl(
            tx,
            hw,
            Implementation::hardware(
                Seconds::from_millis(1.0),
                Watts::from_micro(10.0),
                Cells::new(100),
            ),
        );
        let mut g = TaskGraphBuilder::new("vcd demo", Seconds::from_millis(50.0));
        let a = g.add_task("a", tx);
        let b = g.add_task("b", tx);
        let c = g.add_task("c", tx);
        g.add_comm(a, b, 100.0).unwrap();
        g.add_comm(b, c, 100.0).unwrap();
        let mut omsm = OmsmBuilder::new();
        omsm.add_mode("m", 1.0, g.build().unwrap());
        System::new("t", omsm.build().unwrap(), arch.build().unwrap(), tech.build()).unwrap()
    }

    fn vcd_for(mapping: &SystemMapping) -> (System, String) {
        let system = testbed();
        let alloc = CoreAllocation::minimal(&system, mapping);
        let schedule = schedule_mode(
            &system,
            ModeId::new(0),
            mapping,
            &alloc,
            SchedulerOptions::default(),
        )
        .unwrap();
        let vcd = schedule_to_vcd(&system, &schedule);
        (system, vcd)
    }

    #[test]
    fn vcd_has_well_formed_header_and_signals() {
        let mapping = SystemMapping::from_vecs(vec![vec![
            PeId::new(0),
            PeId::new(1),
            PeId::new(0),
        ]]);
        let (_, vcd) = vcd_for(&mapping);
        assert!(vcd.contains("$timescale 1ns $end"));
        assert!(vcd.contains("$enddefinitions $end"));
        assert!(vcd.contains("$scope module vcd_demo $end"));
        // cpu, hw core, bus — two signals each.
        assert!(vcd.contains("cpu_busy"));
        assert!(vcd.contains("cpu_act"));
        assert!(vcd.contains("hw_X_0_busy"));
        assert!(vcd.contains("bus_busy"));
        assert!(vcd.contains("$dumpvars"));
    }

    #[test]
    fn timestamps_are_monotone() {
        let mapping = SystemMapping::from_vecs(vec![vec![
            PeId::new(0),
            PeId::new(1),
            PeId::new(0),
        ]]);
        let (_, vcd) = vcd_for(&mapping);
        let mut last = -1i64;
        for line in vcd.lines() {
            if let Some(t) = line.strip_prefix('#') {
                let t: i64 = t.parse().expect("numeric timestamp");
                assert!(t >= last, "timestamp {t} after {last}");
                last = t;
            }
        }
        // The final timestamp is the 50 ms period in ns.
        assert_eq!(last, 50_000_000);
    }

    #[test]
    fn busy_intervals_match_schedule() {
        let mapping = SystemMapping::from_fn(&testbed(), |_| PeId::new(0));
        let (_, vcd) = vcd_for(&mapping);
        // One resource (cpu), three tasks back to back: the busy signal
        // drops exactly twice — the initial idle value and the final drop
        // at 30 ms — i.e. no idle gaps between the tasks.
        let drops = vcd.lines().filter(|l| *l == "0!").count();
        assert_eq!(drops, 2, "{vcd}");
        assert!(vcd.contains("#30000000"));
    }

    #[test]
    fn symbols_are_unique_for_many_resources() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..300 {
            assert!(seen.insert(symbol(i)), "duplicate symbol at {i}");
        }
    }
}
