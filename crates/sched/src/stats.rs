//! Schedule statistics: per-resource utilisation and slack summaries.
//!
//! These figures drive the intuition behind the paper's DVS results —
//! utilisation far below one means slack, and slack is what PV-DVS
//! converts into voltage reduction.

use serde::{Deserialize, Serialize};

use momsynth_model::ids::ModeId;
use momsynth_model::units::Seconds;
use momsynth_model::System;

use crate::schedule::{ActivityId, ResourceKey, Schedule};

/// Busy/idle accounting of one resource over the mode's hyper-period.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceStats {
    /// The resource.
    pub resource: ResourceKey,
    /// Number of activities executed.
    pub activities: usize,
    /// Total busy time.
    pub busy: Seconds,
    /// Busy time divided by the hyper-period, in `[0, 1]` for feasible
    /// schedules.
    pub utilization: f64,
}

/// Statistics of a whole mode schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleStats {
    /// The mode.
    pub mode: ModeId,
    /// The mode's hyper-period.
    pub period: Seconds,
    /// Time the last activity finishes.
    pub makespan: Seconds,
    /// `1 − makespan/period`: the fraction of the period left after the
    /// last activity — an upper bound on trailing DVS slack.
    pub trailing_slack_fraction: f64,
    /// Per-resource accounting, in resource order.
    pub resources: Vec<ResourceStats>,
}

impl ScheduleStats {
    /// Mean utilisation over all resources (0 for an empty schedule).
    pub fn mean_utilization(&self) -> f64 {
        if self.resources.is_empty() {
            return 0.0;
        }
        self.resources.iter().map(|r| r.utilization).sum::<f64>() / self.resources.len() as f64
    }

    /// The busiest resource — the bottleneck the mapping should attack.
    pub fn bottleneck(&self) -> Option<&ResourceStats> {
        self.resources
            .iter()
            .max_by(|a, b| a.utilization.total_cmp(&b.utilization))
    }
}

/// Computes busy/idle statistics of `schedule`.
///
/// # Panics
///
/// Panics if `schedule` does not belong to a mode of `system`.
pub fn schedule_stats(system: &System, schedule: &Schedule) -> ScheduleStats {
    let graph = system.omsm().mode(schedule.mode()).graph();
    let period = graph.period();
    let resources = schedule
        .sequences()
        .iter()
        .map(|(resource, acts)| {
            let busy: Seconds = acts
                .iter()
                .map(|act| match act {
                    ActivityId::Task(t) => schedule.task(*t).exec_time,
                    ActivityId::Comm(c) => {
                        schedule.comm(*c).expect("sequenced comm is remote").duration
                    }
                })
                .sum();
            ResourceStats {
                resource: *resource,
                activities: acts.len(),
                busy,
                utilization: busy / period,
            }
        })
        .collect();
    let makespan = schedule.makespan();
    ScheduleStats {
        mode: schedule.mode(),
        period,
        makespan,
        trailing_slack_fraction: (1.0 - makespan / period).max(0.0),
        resources,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list::{schedule_mode, SchedulerOptions};
    use crate::mapping::{CoreAllocation, SystemMapping};
    use momsynth_model::ids::{PeId, TaskTypeId};
    use momsynth_model::units::{Cells, Watts};
    use momsynth_model::{
        ArchitectureBuilder, Cl, Implementation, OmsmBuilder, Pe, PeKind, TaskGraphBuilder,
        TechLibraryBuilder,
    };

    /// One CPU + one ASIC; a -> b chain where b can go to hardware.
    fn testbed() -> System {
        let mut tech = TechLibraryBuilder::new();
        let tx = tech.add_type("X");
        let mut arch = ArchitectureBuilder::new();
        let cpu = arch.add_pe(Pe::software("cpu", PeKind::Gpp, Watts::ZERO));
        let hw = arch.add_pe(Pe::hardware("hw", PeKind::Asic, Cells::new(100), Watts::ZERO));
        arch.add_cl(Cl::bus(
            "bus",
            vec![cpu, hw],
            Seconds::from_micros(10.0),
            Watts::ZERO,
            Watts::ZERO,
        ))
        .unwrap();
        tech.set_impl(
            tx,
            cpu,
            Implementation::software(Seconds::from_millis(10.0), Watts::from_milli(1.0)),
        );
        tech.set_impl(
            tx,
            hw,
            Implementation::hardware(
                Seconds::from_millis(2.0),
                Watts::from_micro(10.0),
                Cells::new(50),
            ),
        );
        let mut g = TaskGraphBuilder::new("g", Seconds::from_millis(50.0));
        let a = g.add_task("a", tx);
        let b = g.add_task("b", tx);
        g.add_comm(a, b, 100.0).unwrap();
        let mut omsm = OmsmBuilder::new();
        omsm.add_mode("m", 1.0, g.build().unwrap());
        System::new("t", omsm.build().unwrap(), arch.build().unwrap(), tech.build()).unwrap()
    }

    fn stats_for(system: &System, mapping: &SystemMapping) -> ScheduleStats {
        let alloc = CoreAllocation::minimal(system, mapping);
        let schedule = schedule_mode(
            system,
            momsynth_model::ids::ModeId::new(0),
            mapping,
            &alloc,
            SchedulerOptions::default(),
        )
        .unwrap();
        schedule_stats(system, &schedule)
    }

    #[test]
    fn single_cpu_utilization_and_slack() {
        let system = testbed();
        let mapping = SystemMapping::from_fn(&system, |_| PeId::new(0));
        let stats = stats_for(&system, &mapping);
        // 20 ms of work in a 50 ms period on one resource.
        assert_eq!(stats.resources.len(), 1);
        assert!((stats.resources[0].utilization - 0.4).abs() < 1e-9);
        assert_eq!(stats.resources[0].activities, 2);
        assert!((stats.trailing_slack_fraction - 0.6).abs() < 1e-9);
        assert!((stats.mean_utilization() - 0.4).abs() < 1e-9);
        assert_eq!(stats.bottleneck().unwrap().resource, ResourceKey::SwPe(PeId::new(0)));
    }

    #[test]
    fn split_mapping_accounts_bus_and_core() {
        let system = testbed();
        let mapping =
            SystemMapping::from_vecs(vec![vec![PeId::new(0), PeId::new(1)]]);
        let stats = stats_for(&system, &mapping);
        assert_eq!(stats.resources.len(), 3); // cpu, core, bus
        let bus = stats
            .resources
            .iter()
            .find(|r| matches!(r.resource, ResourceKey::Link(_)))
            .expect("bus accounted");
        assert!((bus.busy.as_millis() - 1.0).abs() < 1e-9);
        assert_eq!(bus.activities, 1);
        let core = stats
            .resources
            .iter()
            .find(|r| matches!(r.resource, ResourceKey::HwCore(_, ty, _) if ty == TaskTypeId::new(0)))
            .expect("core accounted");
        assert!((core.busy.as_millis() - 2.0).abs() < 1e-9);
        // CPU remains the bottleneck (10 ms of 50 ms).
        assert_eq!(stats.bottleneck().unwrap().resource, ResourceKey::SwPe(PeId::new(0)));
        // Makespan = 10 + 1 + 2 = 13 ms.
        assert!((stats.makespan.as_millis() - 13.0).abs() < 1e-9);
    }

    #[test]
    fn serde_round_trip() {
        let system = testbed();
        let mapping = SystemMapping::from_fn(&system, |_| PeId::new(0));
        let stats = stats_for(&system, &mapping);
        let json = serde_json::to_string(&stats).unwrap();
        assert_eq!(serde_json::from_str::<ScheduleStats>(&json).unwrap(), stats);
    }
}
