//! Task mappings and hardware core allocations.
//!
//! A [`SystemMapping`] is the paper's *multi-mode mapping string*: for every
//! mode and every task, the PE it executes on (`Mτ^O`). A
//! [`CoreAllocation`] records, per mode and hardware PE, how many core
//! instances of each task type are available; tasks of a type contend for
//! the allocated instances and sequentialise when none is free.
//!
//! # Examples
//!
//! ```
//! use momsynth_sched::SystemMapping;
//! use momsynth_model::ids::{ModeId, PeId, TaskId};
//!
//! let mapping = SystemMapping::from_vecs(vec![
//!     vec![PeId::new(0), PeId::new(1)], // mode 0: t0 -> PE0, t1 -> PE1
//!     vec![PeId::new(0)],               // mode 1: t0 -> PE0
//! ]);
//! assert_eq!(mapping.pe_of(ModeId::new(0), TaskId::new(1)), PeId::new(1));
//! ```

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use momsynth_model::ids::{GlobalTaskId, ModeId, PeId, TaskId, TaskTypeId};
use momsynth_model::units::Cells;
use momsynth_model::System;

use crate::error::SchedError;

/// Task mapping for every mode of a system (`Mτ^O` for all `O ∈ Ω`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SystemMapping {
    /// `pes[mode][task]` is the PE executing that task.
    pes: Vec<Vec<PeId>>,
}

impl SystemMapping {
    /// Creates a mapping from per-mode PE vectors.
    pub fn from_vecs(pes: Vec<Vec<PeId>>) -> Self {
        Self { pes }
    }

    /// Creates a mapping by evaluating `f` for every task of every mode.
    pub fn from_fn<F>(system: &System, mut f: F) -> Self
    where
        F: FnMut(GlobalTaskId) -> PeId,
    {
        let pes = system
            .omsm()
            .modes()
            .map(|(mode, m)| {
                m.graph().task_ids().map(|t| f(GlobalTaskId::new(mode, t))).collect()
            })
            .collect();
        Self { pes }
    }

    /// Returns the number of modes covered by this mapping.
    pub fn mode_count(&self) -> usize {
        self.pes.len()
    }

    /// Returns the number of tasks mapped in `mode`.
    ///
    /// # Panics
    ///
    /// Panics if `mode` is out of range.
    pub fn task_count(&self, mode: ModeId) -> usize {
        self.pes[mode.index()].len()
    }

    /// Returns the PE executing `task` of `mode`.
    ///
    /// # Panics
    ///
    /// Panics if the identifiers are out of range.
    pub fn pe_of(&self, mode: ModeId, task: TaskId) -> PeId {
        self.pes[mode.index()][task.index()]
    }

    /// Returns the PE executing a globally addressed task.
    ///
    /// # Panics
    ///
    /// Panics if the identifier is out of range.
    pub fn pe_of_global(&self, id: GlobalTaskId) -> PeId {
        self.pe_of(id.mode, id.task)
    }

    /// Re-maps `task` of `mode` onto `pe`.
    ///
    /// # Panics
    ///
    /// Panics if the identifiers are out of range.
    pub fn set(&mut self, mode: ModeId, task: TaskId, pe: PeId) {
        self.pes[mode.index()][task.index()] = pe;
    }

    /// Iterates over the tasks of `mode` with their mapped PEs.
    ///
    /// # Panics
    ///
    /// Panics if `mode` is out of range.
    pub fn mode_assignments(
        &self,
        mode: ModeId,
    ) -> impl Iterator<Item = (TaskId, PeId)> + '_ {
        self.pes[mode.index()]
            .iter()
            .enumerate()
            .map(|(i, &pe)| (TaskId::new(i), pe))
    }

    /// Checks that the mapping matches the system's shape and that every
    /// task lands on a PE implementing its type.
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::ShapeMismatch`] or
    /// [`SchedError::UnsupportedMapping`].
    pub fn validate(&self, system: &System) -> Result<(), SchedError> {
        if self.pes.len() != system.omsm().mode_count() {
            return Err(SchedError::ShapeMismatch {
                detail: format!(
                    "mapping covers {} modes, system has {}",
                    self.pes.len(),
                    system.omsm().mode_count()
                ),
            });
        }
        for (mode, m) in system.omsm().modes() {
            let row = &self.pes[mode.index()];
            if row.len() != m.graph().task_count() {
                return Err(SchedError::ShapeMismatch {
                    detail: format!(
                        "mode {mode} maps {} tasks, graph has {}",
                        row.len(),
                        m.graph().task_count()
                    ),
                });
            }
            for (task, t) in m.graph().tasks() {
                let pe = row[task.index()];
                if system.tech().impl_of(t.task_type(), pe).is_none() {
                    return Err(SchedError::UnsupportedMapping { mode, task, pe });
                }
            }
        }
        Ok(())
    }

    /// Returns the set of PEs used by `mode` — the complement are the
    /// components that can be shut down during that mode.
    ///
    /// # Panics
    ///
    /// Panics if `mode` is out of range.
    pub fn active_pes(&self, mode: ModeId) -> Vec<PeId> {
        let mut pes = self.pes[mode.index()].clone();
        pes.sort_unstable();
        pes.dedup();
        pes
    }

    /// Renders the paper-style mapping string, e.g. `[0 1 1 | 0 0 1]`.
    pub fn mapping_string(&self) -> String {
        let rows: Vec<String> = self
            .pes
            .iter()
            .map(|row| {
                row.iter().map(|p| p.index().to_string()).collect::<Vec<_>>().join(" ")
            })
            .collect();
        format!("[{}]", rows.join(" | "))
    }
}

/// Per-mode hardware core allocation.
///
/// For every mode, maps `(hardware PE, task type)` to the number of core
/// instances available. An allocation of `n` lets up to `n` tasks of that
/// type execute concurrently on the PE; further tasks contend and
/// sequentialise, exactly as the paper describes for hardware sharing.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreAllocation {
    #[serde(with = "core_map_serde")]
    per_mode: Vec<BTreeMap<(PeId, TaskTypeId), usize>>,
}

/// Serialises the per-mode core tables as entry lists so that formats with
/// string-only map keys (JSON) can represent the tuple keys.
mod core_map_serde {
    use super::*;
    use serde::{Deserializer, Serializer};

    type CoreMaps = Vec<BTreeMap<(PeId, TaskTypeId), usize>>;

    pub fn serialize<S: Serializer>(
        maps: &[BTreeMap<(PeId, TaskTypeId), usize>],
        serializer: S,
    ) -> Result<S::Ok, S::Error> {
        let entries: Vec<Vec<(PeId, TaskTypeId, usize)>> = maps
            .iter()
            .map(|m| m.iter().map(|(&(pe, ty), &n)| (pe, ty, n)).collect())
            .collect();
        serde::Serialize::serialize(&entries, serializer)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(
        deserializer: D,
    ) -> Result<CoreMaps, D::Error> {
        let entries: Vec<Vec<(PeId, TaskTypeId, usize)>> =
            serde::Deserialize::deserialize(deserializer)?;
        Ok(entries
            .into_iter()
            .map(|row| row.into_iter().map(|(pe, ty, n)| ((pe, ty), n)).collect())
            .collect())
    }
}

impl CoreAllocation {
    /// Creates an empty allocation for `mode_count` modes.
    pub fn new(mode_count: usize) -> Self {
        Self { per_mode: vec![BTreeMap::new(); mode_count] }
    }

    /// Derives the minimal allocation implied by a mapping: one core per
    /// `(mode, hardware PE, task type)` actually used. This is the
    /// baseline; the synthesis layer may replicate cores for parallel
    /// low-mobility tasks on top of it.
    pub fn minimal(system: &System, mapping: &SystemMapping) -> Self {
        let mut alloc = Self::new(system.omsm().mode_count());
        for (mode, m) in system.omsm().modes() {
            for (task, t) in m.graph().tasks() {
                let pe = mapping.pe_of(mode, task);
                if system.arch().pe(pe).kind().is_hardware() {
                    alloc.ensure(mode, pe, t.task_type(), 1);
                }
            }
        }
        alloc
    }

    /// Returns the number of modes covered.
    pub fn mode_count(&self) -> usize {
        self.per_mode.len()
    }

    /// Sets the instance count for `(mode, pe, ty)`.
    ///
    /// # Panics
    ///
    /// Panics if `mode` is out of range.
    pub fn set_instances(&mut self, mode: ModeId, pe: PeId, ty: TaskTypeId, count: usize) {
        self.per_mode[mode.index()].insert((pe, ty), count);
    }

    /// Raises the instance count for `(mode, pe, ty)` to at least `count`.
    ///
    /// # Panics
    ///
    /// Panics if `mode` is out of range.
    pub fn ensure(&mut self, mode: ModeId, pe: PeId, ty: TaskTypeId, count: usize) {
        let entry = self.per_mode[mode.index()].entry((pe, ty)).or_insert(0);
        *entry = (*entry).max(count);
    }

    /// Returns the instance count for `(mode, pe, ty)` (zero if never set).
    ///
    /// # Panics
    ///
    /// Panics if `mode` is out of range.
    pub fn instances(&self, mode: ModeId, pe: PeId, ty: TaskTypeId) -> usize {
        self.per_mode[mode.index()].get(&(pe, ty)).copied().unwrap_or(0)
    }

    /// Iterates over the cores allocated in `mode` as `((pe, ty), count)`.
    ///
    /// # Panics
    ///
    /// Panics if `mode` is out of range.
    pub fn mode_cores(
        &self,
        mode: ModeId,
    ) -> impl Iterator<Item = ((PeId, TaskTypeId), usize)> + '_ {
        self.per_mode[mode.index()].iter().map(|(&k, &v)| (k, v))
    }

    /// Area occupied on `pe` during `mode` (FPGA view: only that mode's
    /// cores are loaded).
    pub fn mode_area(&self, system: &System, pe: PeId, mode: ModeId) -> Cells {
        self.per_mode[mode.index()]
            .iter()
            .filter(|((p, _), _)| *p == pe)
            .map(|((_, ty), &count)| self.core_area(system, pe, *ty) * count as u64)
            .sum()
    }

    /// Area occupied on `pe` by the union of all modes' cores (ASIC view:
    /// cores are static, a type needs its maximal instance count).
    pub fn static_area(&self, system: &System, pe: PeId) -> Cells {
        let mut max_counts: BTreeMap<TaskTypeId, usize> = BTreeMap::new();
        for per_mode in &self.per_mode {
            for ((p, ty), &count) in per_mode {
                if *p == pe {
                    let e = max_counts.entry(*ty).or_insert(0);
                    *e = (*e).max(count);
                }
            }
        }
        max_counts
            .iter()
            .map(|(&ty, &count)| self.core_area(system, pe, ty) * count as u64)
            .sum()
    }

    /// Area of the cores that must be (re)configured when switching from
    /// `from` to `to` on reconfigurable `pe`: every core instance required
    /// by `to` that is not already present from `from`.
    pub fn reconfig_area(&self, system: &System, pe: PeId, from: ModeId, to: ModeId) -> Cells {
        let mut area = Cells::ZERO;
        for ((p, ty), &need) in &self.per_mode[to.index()] {
            if *p != pe {
                continue;
            }
            let have = self.instances(from, pe, *ty);
            if need > have {
                area += self.core_area(system, pe, *ty) * (need - have) as u64;
            }
        }
        area
    }

    fn core_area(&self, system: &System, pe: PeId, ty: TaskTypeId) -> Cells {
        system
            .tech()
            .impl_of(ty, pe)
            .map(|imp| imp.area())
            .unwrap_or(Cells::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use momsynth_model::{
        ArchitectureBuilder, Cl, Implementation, OmsmBuilder, Pe, PeKind, TaskGraphBuilder,
        TechLibraryBuilder,
    };
    use momsynth_model::units::{Seconds, Watts};

    /// Two modes; type A implementable on both PEs, type B only on PE0.
    fn sample_system() -> System {
        let mut tech = TechLibraryBuilder::new();
        let ta = tech.add_type("A");
        let tb = tech.add_type("B");

        let mut arch = ArchitectureBuilder::new();
        let cpu = arch.add_pe(Pe::software("cpu", PeKind::Gpp, Watts::from_milli(0.1)));
        let hw = arch.add_pe(Pe::hardware(
            "hw",
            PeKind::Asic,
            Cells::new(600),
            Watts::from_milli(0.05),
        ));
        arch.add_cl(Cl::bus(
            "bus",
            vec![cpu, hw],
            Seconds::from_micros(1.0),
            Watts::from_milli(1.0),
            Watts::from_milli(0.01),
        ))
        .unwrap();

        tech.set_impl(
            ta,
            cpu,
            Implementation::software(Seconds::from_millis(20.0), Watts::from_milli(500.0)),
        );
        tech.set_impl(
            ta,
            hw,
            Implementation::hardware(
                Seconds::from_millis(2.0),
                Watts::from_milli(5.0),
                Cells::new(240),
            ),
        );
        tech.set_impl(
            tb,
            cpu,
            Implementation::software(Seconds::from_millis(28.0), Watts::from_milli(500.0)),
        );

        let mut g0 = TaskGraphBuilder::new("m0", Seconds::from_millis(200.0));
        let a = g0.add_task("a", ta);
        let b = g0.add_task("b", tb);
        g0.add_comm(a, b, 100.0).unwrap();
        let mut g1 = TaskGraphBuilder::new("m1", Seconds::from_millis(200.0));
        g1.add_task("c", ta);
        g1.add_task("d", ta);

        let mut omsm = OmsmBuilder::new();
        omsm.add_mode("m0", 0.5, g0.build().unwrap());
        omsm.add_mode("m1", 0.5, g1.build().unwrap());
        System::new("s", omsm.build().unwrap(), arch.build().unwrap(), tech.build()).unwrap()
    }

    #[test]
    fn mapping_accessors_and_mutation() {
        let sys = sample_system();
        let mut m = SystemMapping::from_fn(&sys, |_| PeId::new(0));
        assert_eq!(m.mode_count(), 2);
        assert_eq!(m.task_count(ModeId::new(0)), 2);
        m.set(ModeId::new(1), TaskId::new(0), PeId::new(1));
        assert_eq!(m.pe_of(ModeId::new(1), TaskId::new(0)), PeId::new(1));
        assert_eq!(
            m.pe_of_global(GlobalTaskId::new(ModeId::new(1), TaskId::new(0))),
            PeId::new(1)
        );
        assert_eq!(m.active_pes(ModeId::new(0)), vec![PeId::new(0)]);
        assert_eq!(m.active_pes(ModeId::new(1)), vec![PeId::new(0), PeId::new(1)]);
        assert_eq!(m.mapping_string(), "[0 0 | 1 0]");
    }

    #[test]
    fn validate_accepts_supported_mapping() {
        let sys = sample_system();
        let m = SystemMapping::from_fn(&sys, |_| PeId::new(0));
        assert!(m.validate(&sys).is_ok());
    }

    #[test]
    fn validate_rejects_unsupported_pe() {
        let sys = sample_system();
        // Task b (type B) cannot run on PE1.
        let m = SystemMapping::from_vecs(vec![
            vec![PeId::new(0), PeId::new(1)],
            vec![PeId::new(0), PeId::new(0)],
        ]);
        assert!(matches!(m.validate(&sys), Err(SchedError::UnsupportedMapping { .. })));
    }

    #[test]
    fn validate_rejects_shape_mismatch() {
        let sys = sample_system();
        let m = SystemMapping::from_vecs(vec![vec![PeId::new(0), PeId::new(0)]]);
        assert!(matches!(m.validate(&sys), Err(SchedError::ShapeMismatch { .. })));
        let m = SystemMapping::from_vecs(vec![vec![PeId::new(0)], vec![PeId::new(0)]]);
        assert!(matches!(m.validate(&sys), Err(SchedError::ShapeMismatch { .. })));
    }

    #[test]
    fn minimal_allocation_covers_hw_tasks_only() {
        let sys = sample_system();
        // Map both mode-1 type-A tasks to the ASIC.
        let m = SystemMapping::from_vecs(vec![
            vec![PeId::new(0), PeId::new(0)],
            vec![PeId::new(1), PeId::new(1)],
        ]);
        let alloc = CoreAllocation::minimal(&sys, &m);
        assert_eq!(alloc.instances(ModeId::new(0), PeId::new(1), TaskTypeId::new(0)), 0);
        assert_eq!(alloc.instances(ModeId::new(1), PeId::new(1), TaskTypeId::new(0)), 1);
        assert_eq!(alloc.mode_cores(ModeId::new(1)).count(), 1);
    }

    #[test]
    fn allocation_area_queries() {
        let sys = sample_system();
        let mut alloc = CoreAllocation::new(2);
        alloc.set_instances(ModeId::new(0), PeId::new(1), TaskTypeId::new(0), 1);
        alloc.set_instances(ModeId::new(1), PeId::new(1), TaskTypeId::new(0), 2);
        // Mode areas differ; static (ASIC) area takes the max count.
        assert_eq!(alloc.mode_area(&sys, PeId::new(1), ModeId::new(0)), Cells::new(240));
        assert_eq!(alloc.mode_area(&sys, PeId::new(1), ModeId::new(1)), Cells::new(480));
        assert_eq!(alloc.static_area(&sys, PeId::new(1)), Cells::new(480));
        // Reconfiguration 0 -> 1 must add one more type-A core.
        assert_eq!(
            alloc.reconfig_area(&sys, PeId::new(1), ModeId::new(0), ModeId::new(1)),
            Cells::new(240)
        );
        // 1 -> 0 has everything already loaded.
        assert_eq!(
            alloc.reconfig_area(&sys, PeId::new(1), ModeId::new(1), ModeId::new(0)),
            Cells::ZERO
        );
    }

    #[test]
    fn ensure_raises_but_never_lowers() {
        let mut alloc = CoreAllocation::new(1);
        alloc.ensure(ModeId::new(0), PeId::new(1), TaskTypeId::new(0), 2);
        alloc.ensure(ModeId::new(0), PeId::new(1), TaskTypeId::new(0), 1);
        assert_eq!(alloc.instances(ModeId::new(0), PeId::new(1), TaskTypeId::new(0)), 2);
    }

    #[test]
    fn serde_round_trip() {
        let sys = sample_system();
        let m = SystemMapping::from_fn(&sys, |_| PeId::new(0));
        let json = serde_json::to_string(&m).unwrap();
        assert_eq!(serde_json::from_str::<SystemMapping>(&json).unwrap(), m);
        let alloc = CoreAllocation::minimal(&sys, &m);
        let json = serde_json::to_string(&alloc).unwrap();
        assert_eq!(serde_json::from_str::<CoreAllocation>(&json).unwrap(), alloc);
    }
}
