//! Mode-local scheduling and communication mapping for multi-mode
//! co-synthesis.
//!
//! This crate is the constructive inner loop of the DATE 2003 flow: given
//! a [`SystemMapping`] (task → PE, per mode) and a [`CoreAllocation`]
//! (hardware core instances per mode), it derives
//!
//! * an ASAP/ALAP [`TimingAnalysis`] with task mobilities,
//! * a static [`Schedule`] per mode via mobility-driven list scheduling
//!   ([`schedule_mode`]), routing each inter-PE transfer over the best
//!   connecting link (the communication mapping `Mγ^O`).
//!
//! # Examples
//!
//! ```
//! use momsynth_model::ids::{ModeId, PeId};
//! use momsynth_sched::{
//!     schedule_mode, CoreAllocation, SchedulerOptions, SystemMapping,
//! };
//! # use momsynth_model::{ArchitectureBuilder, Implementation, OmsmBuilder, Pe, PeKind,
//! #     System, TaskGraphBuilder, TechLibraryBuilder};
//! # use momsynth_model::units::{Seconds, Watts};
//! # fn build_system() -> System {
//! #     let mut tech = TechLibraryBuilder::new();
//! #     let tx = tech.add_type("X");
//! #     let mut arch = ArchitectureBuilder::new();
//! #     let cpu = arch.add_pe(Pe::software("cpu", PeKind::Gpp, Watts::ZERO));
//! #     tech.set_impl(tx, cpu,
//! #         Implementation::software(Seconds::from_millis(1.0), Watts::from_milli(1.0)));
//! #     let mut g = TaskGraphBuilder::new("m", Seconds::from_millis(10.0));
//! #     g.add_task("t", tx);
//! #     let mut omsm = OmsmBuilder::new();
//! #     omsm.add_mode("m", 1.0, g.build().unwrap());
//! #     System::new("s", omsm.build().unwrap(), arch.build().unwrap(), tech.build()).unwrap()
//! # }
//!
//! # fn main() -> Result<(), momsynth_sched::SchedError> {
//! let system = build_system();
//! let mapping = SystemMapping::from_fn(&system, |_| PeId::new(0));
//! let alloc = CoreAllocation::minimal(&system, &mapping);
//! let schedule = schedule_mode(
//!     &system, ModeId::new(0), &mapping, &alloc, SchedulerOptions::default())?;
//! assert!(schedule.is_timing_feasible(system.omsm().mode(ModeId::new(0)).graph()));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod error;
pub mod list;
pub mod mapping;
pub mod mobility;
pub mod schedule;
pub mod stats;
pub mod trace;
pub mod validate;

pub use error::SchedError;
pub use list::{schedule_mode, schedule_mode_with, ListScratch, Priority, SchedulerOptions};
pub use mapping::{CoreAllocation, SystemMapping};
pub use mobility::{MobilityScratch, TimingAnalysis};
pub use schedule::{ActivityId, ResourceKey, Schedule, ScheduledComm, ScheduledTask};
pub use stats::{schedule_stats, ResourceStats, ScheduleStats};
pub use trace::schedule_to_vcd;
pub use validate::{validate_schedule, ScheduleViolation};
