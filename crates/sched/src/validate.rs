//! Structural validation of schedules against their specification.
//!
//! [`validate_schedule`] re-checks everything the list scheduler
//! guarantees by construction — useful for schedules produced by other
//! tools, hand-written schedules in tests, and as an oracle for
//! property-based testing of scheduler changes.

use std::collections::BTreeMap;
use std::fmt;

use momsynth_model::ids::{CommId, TaskId};
use momsynth_model::units::Seconds;
use momsynth_model::System;

use crate::mapping::{CoreAllocation, SystemMapping};
use crate::schedule::{ActivityId, ResourceKey, Schedule};

/// A violation found by [`validate_schedule`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ScheduleViolation {
    /// A task starts before its input data arrives.
    PrecedenceViolated {
        /// The communication edge involved.
        comm: CommId,
        /// The producing task.
        src: TaskId,
        /// The consuming task.
        dst: TaskId,
    },
    /// Two activities overlap on the same sequential resource.
    ResourceOverlap {
        /// The contended resource.
        resource: ResourceKey,
        /// The activity that starts too early.
        second: ActivityId,
    },
    /// A task executes on a PE other than its mapping says.
    MappingMismatch {
        /// The offending task.
        task: TaskId,
    },
    /// A task's resource does not belong to its PE.
    ForeignResource {
        /// The offending task.
        task: TaskId,
    },
    /// A hardware task uses a core instance beyond the allocation.
    UnallocatedCore {
        /// The offending task.
        task: TaskId,
        /// The core instance index used.
        instance: usize,
        /// Instances actually allocated.
        allocated: usize,
    },
    /// A remote communication is routed over a link that does not connect
    /// the two PEs.
    BadRoute {
        /// The offending communication.
        comm: CommId,
    },
    /// A communication between co-located tasks is scheduled on a link
    /// (local transfers must be free), or a remote one is missing.
    WrongLocality {
        /// The offending communication.
        comm: CommId,
    },
    /// An activity has a negative start time or non-finite timing.
    InvalidTiming {
        /// The offending activity.
        activity: ActivityId,
    },
}

impl fmt::Display for ScheduleViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::PrecedenceViolated { comm, src, dst } => {
                write!(f, "precedence violated on {comm}: {src} -> {dst}")
            }
            Self::ResourceOverlap { resource, second } => {
                write!(f, "overlap on {resource:?} at {second:?}")
            }
            Self::MappingMismatch { task } => {
                write!(f, "task {task} executes on a PE other than its mapping")
            }
            Self::ForeignResource { task } => {
                write!(f, "task {task} occupies a resource of another PE")
            }
            Self::UnallocatedCore { task, instance, allocated } => write!(
                f,
                "task {task} uses core instance {instance} but only {allocated} allocated"
            ),
            Self::BadRoute { comm } => {
                write!(f, "communication {comm} routed over a non-connecting link")
            }
            Self::WrongLocality { comm } => {
                write!(f, "communication {comm} has wrong local/remote classification")
            }
            Self::InvalidTiming { activity } => {
                write!(f, "activity {activity:?} has invalid timing")
            }
        }
    }
}

const EPS: f64 = 1e-12;

/// Checks `schedule` for structural consistency with the system, mapping
/// and core allocation. Returns all violations found (empty = valid).
/// Timing *feasibility* (deadlines) is a separate concern — see
/// [`Schedule::is_timing_feasible`].
pub fn validate_schedule(
    system: &System,
    mapping: &SystemMapping,
    alloc: &CoreAllocation,
    schedule: &Schedule,
) -> Vec<ScheduleViolation> {
    let mode = schedule.mode();
    let graph = system.omsm().mode(mode).graph();
    let mut violations = Vec::new();

    // Per-task checks: timing sanity, mapping, resource ownership, cores.
    for entry in schedule.tasks() {
        let act = ActivityId::Task(entry.task);
        if !(entry.start.value() >= -EPS
            && entry.start.is_finite()
            && entry.exec_time.value() >= 0.0
            && entry.exec_time.is_finite())
        {
            violations.push(ScheduleViolation::InvalidTiming { activity: act });
        }
        if mapping.pe_of(mode, entry.task) != entry.pe {
            violations.push(ScheduleViolation::MappingMismatch { task: entry.task });
        }
        match entry.resource {
            ResourceKey::SwPe(pe) => {
                if pe != entry.pe || !system.arch().pe(entry.pe).kind().is_software() {
                    violations.push(ScheduleViolation::ForeignResource { task: entry.task });
                }
            }
            ResourceKey::HwCore(pe, ty, instance) => {
                if pe != entry.pe
                    || !system.arch().pe(entry.pe).kind().is_hardware()
                    || ty != graph.task(entry.task).task_type()
                {
                    violations.push(ScheduleViolation::ForeignResource { task: entry.task });
                } else {
                    let allocated = alloc.instances(mode, pe, ty).max(1);
                    if instance >= allocated {
                        violations.push(ScheduleViolation::UnallocatedCore {
                            task: entry.task,
                            instance,
                            allocated,
                        });
                    }
                }
            }
            ResourceKey::Link(_) => {
                violations.push(ScheduleViolation::ForeignResource { task: entry.task });
            }
        }
    }

    // Per-communication checks: locality, routing, precedence.
    for (comm_id, edge) in graph.comms() {
        let src_entry = schedule.task(edge.src());
        let dst_entry = schedule.task(edge.dst());
        let local = src_entry.pe == dst_entry.pe;
        match schedule.comm(comm_id) {
            None => {
                if !local {
                    violations.push(ScheduleViolation::WrongLocality { comm: comm_id });
                } else if dst_entry.start.value() < src_entry.finish().value() - EPS {
                    violations.push(ScheduleViolation::PrecedenceViolated {
                        comm: comm_id,
                        src: edge.src(),
                        dst: edge.dst(),
                    });
                }
            }
            Some(comm) => {
                if local {
                    violations.push(ScheduleViolation::WrongLocality { comm: comm_id });
                    continue;
                }
                if !(comm.start.value() >= -EPS && comm.start.is_finite()) {
                    violations.push(ScheduleViolation::InvalidTiming {
                        activity: ActivityId::Comm(comm_id),
                    });
                }
                let cl = system.arch().cl(comm.cl);
                if !(cl.connects(src_entry.pe) && cl.connects(dst_entry.pe)) {
                    violations.push(ScheduleViolation::BadRoute { comm: comm_id });
                }
                if comm.start.value() < src_entry.finish().value() - EPS
                    || dst_entry.start.value() < comm.finish().value() - EPS
                {
                    violations.push(ScheduleViolation::PrecedenceViolated {
                        comm: comm_id,
                        src: edge.src(),
                        dst: edge.dst(),
                    });
                }
            }
        }
    }

    // Resource exclusivity from actual activity intervals (not only the
    // declared sequences, which could themselves be wrong).
    let mut by_resource: BTreeMap<ResourceKey, Vec<(Seconds, Seconds, ActivityId)>> =
        BTreeMap::new();
    for entry in schedule.tasks() {
        by_resource.entry(entry.resource).or_default().push((
            entry.start,
            entry.finish(),
            ActivityId::Task(entry.task),
        ));
    }
    for comm in schedule.remote_comms() {
        by_resource.entry(ResourceKey::Link(comm.cl)).or_default().push((
            comm.start,
            comm.finish(),
            ActivityId::Comm(comm.comm),
        ));
    }
    for (resource, mut intervals) in by_resource {
        intervals.sort_by(|a, b| a.0.value().total_cmp(&b.0.value()));
        for pair in intervals.windows(2) {
            if pair[1].0.value() < pair[0].1.value() - EPS {
                violations.push(ScheduleViolation::ResourceOverlap {
                    resource,
                    second: pair[1].2,
                });
            }
        }
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use momsynth_model::ids::{ModeId, PeId, TaskTypeId};
    use momsynth_model::units::{Cells, Watts};
    use momsynth_model::{
        ArchitectureBuilder, Cl, Implementation, OmsmBuilder, Pe, PeKind, TaskGraphBuilder,
        TechLibraryBuilder,
    };
    use crate::list::{schedule_mode, SchedulerOptions};
    use crate::schedule::{ScheduledComm, ScheduledTask};

    fn testbed() -> System {
        let mut tech = TechLibraryBuilder::new();
        let tx = tech.add_type("X");
        let mut arch = ArchitectureBuilder::new();
        let cpu = arch.add_pe(Pe::software("cpu", PeKind::Gpp, Watts::ZERO));
        let hw = arch.add_pe(Pe::hardware("hw", PeKind::Asic, Cells::new(200), Watts::ZERO));
        arch.add_cl(Cl::bus(
            "bus",
            vec![cpu, hw],
            Seconds::from_micros(10.0),
            Watts::ZERO,
            Watts::ZERO,
        ))
        .unwrap();
        tech.set_impl(
            tx,
            cpu,
            Implementation::software(Seconds::from_millis(10.0), Watts::from_milli(1.0)),
        );
        tech.set_impl(
            tx,
            hw,
            Implementation::hardware(
                Seconds::from_millis(1.0),
                Watts::from_micro(10.0),
                Cells::new(100),
            ),
        );
        let mut g = TaskGraphBuilder::new("g", Seconds::from_millis(100.0));
        let a = g.add_task("a", tx);
        let b = g.add_task("b", tx);
        g.add_comm(a, b, 100.0).unwrap();
        let mut omsm = OmsmBuilder::new();
        omsm.add_mode("m", 1.0, g.build().unwrap());
        System::new("t", omsm.build().unwrap(), arch.build().unwrap(), tech.build()).unwrap()
    }

    #[test]
    fn scheduler_output_validates_cleanly() {
        let system = testbed();
        for pe_b in [PeId::new(0), PeId::new(1)] {
            let mapping = SystemMapping::from_vecs(vec![vec![PeId::new(0), pe_b]]);
            let alloc = CoreAllocation::minimal(&system, &mapping);
            let schedule = schedule_mode(
                &system,
                ModeId::new(0),
                &mapping,
                &alloc,
                SchedulerOptions::default(),
            )
            .unwrap();
            assert_eq!(validate_schedule(&system, &mapping, &alloc, &schedule), vec![]);
        }
    }

    #[test]
    fn detects_precedence_violation() {
        let system = testbed();
        let mapping = SystemMapping::from_vecs(vec![vec![PeId::new(0), PeId::new(0)]]);
        let alloc = CoreAllocation::minimal(&system, &mapping);
        // Both tasks start at 0 on the same PE.
        let mk = |task: usize, start_ms: f64| ScheduledTask {
            task: TaskId::new(task),
            pe: PeId::new(0),
            resource: ResourceKey::SwPe(PeId::new(0)),
            start: Seconds::from_millis(start_ms),
            exec_time: Seconds::from_millis(10.0),
        };
        let schedule = Schedule::from_parts(
            ModeId::new(0),
            vec![mk(0, 0.0), mk(1, 0.0)],
            vec![None],
            vec![],
        );
        let violations = validate_schedule(&system, &mapping, &alloc, &schedule);
        assert!(violations
            .iter()
            .any(|v| matches!(v, ScheduleViolation::PrecedenceViolated { .. })));
        assert!(violations
            .iter()
            .any(|v| matches!(v, ScheduleViolation::ResourceOverlap { .. })));
    }

    #[test]
    fn detects_mapping_mismatch_and_wrong_locality() {
        let system = testbed();
        // Mapping says task 1 on hw, schedule runs it on cpu without a comm.
        let mapping = SystemMapping::from_vecs(vec![vec![PeId::new(0), PeId::new(1)]]);
        let alloc = CoreAllocation::minimal(&system, &mapping);
        let schedule = Schedule::from_parts(
            ModeId::new(0),
            vec![
                ScheduledTask {
                    task: TaskId::new(0),
                    pe: PeId::new(0),
                    resource: ResourceKey::SwPe(PeId::new(0)),
                    start: Seconds::ZERO,
                    exec_time: Seconds::from_millis(10.0),
                },
                ScheduledTask {
                    task: TaskId::new(1),
                    pe: PeId::new(0),
                    resource: ResourceKey::SwPe(PeId::new(0)),
                    start: Seconds::from_millis(10.0),
                    exec_time: Seconds::from_millis(10.0),
                },
            ],
            vec![None],
            vec![],
        );
        let violations = validate_schedule(&system, &mapping, &alloc, &schedule);
        assert!(violations
            .iter()
            .any(|v| matches!(v, ScheduleViolation::MappingMismatch { task } if task.index() == 1)));
    }

    #[test]
    fn detects_unallocated_core_instance() {
        let system = testbed();
        let mapping = SystemMapping::from_vecs(vec![vec![PeId::new(1), PeId::new(1)]]);
        let alloc = CoreAllocation::minimal(&system, &mapping); // one instance
        let mk = |task: usize, inst: usize, start_ms: f64| ScheduledTask {
            task: TaskId::new(task),
            pe: PeId::new(1),
            resource: ResourceKey::HwCore(PeId::new(1), TaskTypeId::new(0), inst),
            start: Seconds::from_millis(start_ms),
            exec_time: Seconds::from_millis(1.0),
        };
        let schedule = Schedule::from_parts(
            ModeId::new(0),
            vec![mk(0, 0, 0.0), mk(1, 1, 1.0)],
            vec![None],
            vec![],
        );
        let violations = validate_schedule(&system, &mapping, &alloc, &schedule);
        assert!(violations
            .iter()
            .any(|v| matches!(v, ScheduleViolation::UnallocatedCore { instance: 1, .. })));
    }

    #[test]
    fn detects_bad_route() {
        // Second bus connects nothing relevant: build arch with two buses
        // where bus 1 only connects (cpu, cpu2).
        let mut tech = TechLibraryBuilder::new();
        let tx = tech.add_type("X");
        let mut arch = ArchitectureBuilder::new();
        let cpu = arch.add_pe(Pe::software("cpu", PeKind::Gpp, Watts::ZERO));
        let cpu2 = arch.add_pe(Pe::software("cpu2", PeKind::Gpp, Watts::ZERO));
        let hw = arch.add_pe(Pe::hardware("hw", PeKind::Asic, Cells::new(200), Watts::ZERO));
        arch.add_cl(Cl::bus(
            "bus0",
            vec![cpu, cpu2, hw],
            Seconds::from_micros(10.0),
            Watts::ZERO,
            Watts::ZERO,
        ))
        .unwrap();
        arch.add_cl(Cl::bus(
            "bus1",
            vec![cpu, cpu2],
            Seconds::from_micros(10.0),
            Watts::ZERO,
            Watts::ZERO,
        ))
        .unwrap();
        for pe in [cpu, cpu2] {
            tech.set_impl(tx, pe, Implementation::software(Seconds::from_millis(10.0), Watts::ZERO));
        }
        tech.set_impl(
            tx,
            hw,
            Implementation::hardware(Seconds::from_millis(1.0), Watts::ZERO, Cells::new(100)),
        );
        let mut g = TaskGraphBuilder::new("g", Seconds::from_millis(100.0));
        let a = g.add_task("a", tx);
        let b = g.add_task("b", tx);
        g.add_comm(a, b, 100.0).unwrap();
        let mut omsm = OmsmBuilder::new();
        omsm.add_mode("m", 1.0, g.build().unwrap());
        let system =
            System::new("t", omsm.build().unwrap(), arch.build().unwrap(), tech.build()).unwrap();

        let mapping = SystemMapping::from_vecs(vec![vec![cpu, hw]]);
        let alloc = CoreAllocation::minimal(&system, &mapping);
        // Route cpu -> hw over bus1, which does not reach hw.
        let schedule = Schedule::from_parts(
            ModeId::new(0),
            vec![
                ScheduledTask {
                    task: TaskId::new(0),
                    pe: cpu,
                    resource: ResourceKey::SwPe(cpu),
                    start: Seconds::ZERO,
                    exec_time: Seconds::from_millis(10.0),
                },
                ScheduledTask {
                    task: TaskId::new(1),
                    pe: hw,
                    resource: ResourceKey::HwCore(hw, TaskTypeId::new(0), 0),
                    start: Seconds::from_millis(12.0),
                    exec_time: Seconds::from_millis(1.0),
                },
            ],
            vec![Some(ScheduledComm {
                comm: CommId::new(0),
                cl: momsynth_model::ids::ClId::new(1),
                start: Seconds::from_millis(10.0),
                duration: Seconds::from_millis(1.0),
            })],
            vec![],
        );
        let violations = validate_schedule(&system, &mapping, &alloc, &schedule);
        assert!(violations.iter().any(|v| matches!(v, ScheduleViolation::BadRoute { .. })));
    }

    #[test]
    fn violation_display_is_informative() {
        let v = ScheduleViolation::UnallocatedCore {
            task: TaskId::new(3),
            instance: 2,
            allocated: 1,
        };
        let text = v.to_string();
        assert!(text.contains("t3") && text.contains('2') && text.contains('1'));
    }
}
