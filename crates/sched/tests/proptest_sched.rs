//! Property-based tests of mobility analysis and list scheduling on
//! randomly shaped single-mode systems (built locally, without the
//! workload-generator crate).

use proptest::prelude::*;

use momsynth_model::ids::{ModeId, PeId, TaskId, TaskTypeId};
use momsynth_model::units::{Cells, Seconds, Watts};
use momsynth_model::{
    ArchitectureBuilder, Cl, Implementation, OmsmBuilder, Pe, PeKind, System, TaskGraphBuilder,
    TechLibraryBuilder,
};
use momsynth_sched::{
    schedule_mode, validate_schedule, CoreAllocation, Priority, SchedulerOptions, SystemMapping,
    TimingAnalysis,
};

/// Random single-mode system: layered DAG of `n` tasks over `types`
/// types, one GPP plus one ASIC, every type implementable on both.
fn random_system() -> impl Strategy<Value = System> {
    (
        2usize..16,
        1usize..4,
        proptest::collection::vec((1u32..40, 1u32..500, 0usize..1000), 16),
        1.05f64..3.0,
    )
        .prop_map(|(n, types, raw, slack)| {
            let mut tech = TechLibraryBuilder::new();
            let mut arch = ArchitectureBuilder::new();
            let cpu = arch.add_pe(Pe::software("cpu", PeKind::Gpp, Watts::from_milli(1.0)));
            let hw = arch.add_pe(Pe::hardware(
                "hw",
                PeKind::Asic,
                Cells::new(5_000),
                Watts::from_milli(1.0),
            ));
            arch.add_cl(Cl::bus(
                "bus",
                vec![cpu, hw],
                Seconds::from_micros(1.0),
                Watts::from_milli(1.0),
                Watts::from_milli(0.1),
            ))
            .expect("bus is valid");

            let mut sw_times_ms = Vec::with_capacity(types);
            for t in 0..types {
                let ty = tech.add_type(format!("T{t}"));
                let (ms, mw, _) = raw[t % raw.len()];
                sw_times_ms.push(f64::from(ms));
                tech.set_impl(
                    ty,
                    cpu,
                    Implementation::software(
                        Seconds::from_millis(f64::from(ms)),
                        Watts::from_milli(f64::from(mw)),
                    ),
                );
                tech.set_impl(
                    ty,
                    hw,
                    Implementation::hardware(
                        Seconds::from_millis(f64::from(ms) / 10.0),
                        Watts::from_milli(f64::from(mw) / 50.0),
                        Cells::new(100),
                    ),
                );
            }
            // Serial software bound for the period (task i has type i % types).
            let serial_ms: f64 = (0..n).map(|i| sw_times_ms[i % types]).sum();
            let mut g = TaskGraphBuilder::new("m", Seconds::from_millis(serial_ms * slack));
            let tasks: Vec<TaskId> = (0..n)
                .map(|i| g.add_task(format!("t{i}"), TaskTypeId::new(i % types)))
                .collect();
            for (i, &(_, _, pick)) in raw.iter().enumerate().take(n.saturating_sub(1)) {
                let dst = i + 1;
                let src = pick % (dst);
                let _ = g.add_comm(tasks[src], tasks[dst], (pick % 300) as f64 + 1.0);
            }
            let mut omsm = OmsmBuilder::new();
            omsm.add_mode("m", 1.0, g.build().expect("layered DAG is valid"));
            System::new("prop", omsm.build().expect("valid"), arch.build().expect("valid"), tech.build())
                .expect("valid system")
        })
}

fn mapping_for(system: &System, picks: &[usize]) -> SystemMapping {
    let mut i = 0;
    SystemMapping::from_fn(system, |id| {
        let candidates = system.candidate_pes(id);
        let pe = candidates[picks[i % picks.len()] % candidates.len()];
        i += 1;
        pe
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn asap_is_a_lower_bound_on_any_schedule(
        system in random_system(),
        picks in proptest::collection::vec(0usize..4, 32),
    ) {
        let mapping = mapping_for(&system, &picks);
        let analysis = TimingAnalysis::analyze(&system, ModeId::new(0), &mapping);
        let alloc = CoreAllocation::minimal(&system, &mapping);
        let schedule = schedule_mode(
            &system,
            ModeId::new(0),
            &mapping,
            &alloc,
            SchedulerOptions::default(),
        )
        .expect("connected architecture");
        for t in system.omsm().mode(ModeId::new(0)).graph().task_ids() {
            prop_assert!(
                schedule.task(t).start.value() >= analysis.asap(t).value() - 1e-9,
                "{t}: start {} < asap {}",
                schedule.task(t).start.value(),
                analysis.asap(t).value()
            );
        }
    }

    #[test]
    fn both_priorities_schedule_validly(
        system in random_system(),
        picks in proptest::collection::vec(0usize..4, 32),
    ) {
        let mapping = mapping_for(&system, &picks);
        let alloc = CoreAllocation::minimal(&system, &mapping);
        for priority in [Priority::Mobility, Priority::Fifo] {
            let schedule = schedule_mode(
                &system,
                ModeId::new(0),
                &mapping,
                &alloc,
                SchedulerOptions { priority },
            )
            .expect("connected architecture");
            let violations = validate_schedule(&system, &mapping, &alloc, &schedule);
            prop_assert!(violations.is_empty(), "{priority:?}: {violations:?}");
        }
    }

    #[test]
    fn all_software_mapping_meets_generous_periods(
        system in random_system(),
    ) {
        // The period was set to serial SW time x slack >= 1.05, so the
        // single-CPU schedule always fits.
        let mapping = SystemMapping::from_fn(&system, |_| PeId::new(0));
        let alloc = CoreAllocation::minimal(&system, &mapping);
        let schedule = schedule_mode(
            &system,
            ModeId::new(0),
            &mapping,
            &alloc,
            SchedulerOptions::default(),
        )
        .expect("software mapping schedules");
        let graph = system.omsm().mode(ModeId::new(0)).graph();
        prop_assert!(schedule.is_timing_feasible(graph));
    }

    #[test]
    fn mobility_is_non_negative_under_generous_periods(system in random_system()) {
        let mapping = SystemMapping::from_fn(&system, |_| PeId::new(0));
        let analysis = TimingAnalysis::analyze(&system, ModeId::new(0), &mapping);
        for t in system.omsm().mode(ModeId::new(0)).graph().task_ids() {
            prop_assert!(
                analysis.mobility(t).value() >= -1e-9,
                "{t}: mobility {}",
                analysis.mobility(t).value()
            );
        }
    }

    #[test]
    fn priority_order_is_a_permutation(system in random_system()) {
        let mapping = SystemMapping::from_fn(&system, |_| PeId::new(0));
        let analysis = TimingAnalysis::analyze(&system, ModeId::new(0), &mapping);
        let order = analysis.priority_order();
        let n = system.omsm().mode(ModeId::new(0)).graph().task_count();
        prop_assert_eq!(order.len(), n);
        let mut seen = vec![false; n];
        for t in order {
            prop_assert!(!seen[t.index()]);
            seen[t.index()] = true;
        }
    }
}
