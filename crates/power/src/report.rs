//! Probability-weighted power accounting (Equation 1 of the paper).
//!
//! For every mode `O`, the dynamic power is the energy of all activities
//! divided by the mode's hyper-period, and the static power is the sum
//! over all *active* components — PEs executing at least one task and
//! links carrying at least one transfer; everything else is shut down.
//! The system's average power weights each mode by its execution
//! probability:
//!
//! ```text
//! p̄ = Σ_O (p̄_O^dyn + p̄_O^stat) · Ψ_O
//! ```

use serde::{Deserialize, Serialize};

use momsynth_model::ids::{ClId, ModeId, PeId};
use momsynth_model::units::{Joules, Seconds, Watts};
use momsynth_model::System;
use momsynth_sched::Schedule;

/// One mode's implementation as seen by the power model: its schedule and,
/// when DVS was applied, the per-task dynamic-energy factors.
#[derive(Debug, Clone, Copy)]
pub struct ModeImplementation<'a> {
    /// The mode's static schedule (possibly voltage-stretched).
    pub schedule: &'a Schedule,
    /// Per-task energy factors from voltage scaling (indexed by task id);
    /// `None` means nominal energy everywhere.
    pub energy_factors: Option<&'a [f64]>,
}

impl<'a> ModeImplementation<'a> {
    /// A fixed-voltage implementation: nominal energies.
    pub fn nominal(schedule: &'a Schedule) -> Self {
        Self { schedule, energy_factors: None }
    }

    /// A voltage-scaled implementation.
    pub fn scaled(schedule: &'a Schedule, energy_factors: &'a [f64]) -> Self {
        Self { schedule, energy_factors: Some(energy_factors) }
    }
}

/// Power breakdown of one mode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModePower {
    /// The mode.
    pub mode: ModeId,
    /// Total dynamic task energy per hyper-period.
    pub task_energy: Joules,
    /// Total communication energy per hyper-period.
    pub comm_energy: Joules,
    /// The mode's hyper-period.
    pub period: Seconds,
    /// Average dynamic power (`(task + comm energy) / period`).
    pub dynamic: Watts,
    /// Static power of all powered components.
    pub static_power: Watts,
    /// PEs that cannot be shut down during this mode.
    pub active_pes: Vec<PeId>,
    /// Links that cannot be shut down during this mode.
    pub active_cls: Vec<ClId>,
}

impl ModePower {
    /// Total average power of the mode (`dynamic + static`).
    pub fn total(&self) -> Watts {
        self.dynamic + self.static_power
    }
}

/// System-wide power report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerReport {
    /// Per-mode breakdowns, indexed by mode id.
    pub modes: Vec<ModePower>,
    /// Probability-weighted average power (Equation 1).
    pub average: Watts,
}

impl PowerReport {
    /// Relative reduction of this report's average power versus `other`,
    /// in percent (positive when `self` is lower).
    pub fn reduction_vs(&self, other: &PowerReport) -> f64 {
        if other.average.value() == 0.0 {
            return 0.0;
        }
        (1.0 - self.average / other.average) * 100.0
    }
}

impl std::fmt::Display for PowerReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "average power: {:.6} mW", self.average.as_milli())?;
        for m in &self.modes {
            writeln!(
                f,
                "  {}: dyn {:.6} mW + stat {:.6} mW = {:.6} mW  ({} PEs, {} CLs on)",
                m.mode,
                m.dynamic.as_milli(),
                m.static_power.as_milli(),
                m.total().as_milli(),
                m.active_pes.len(),
                m.active_cls.len()
            )?;
        }
        Ok(())
    }
}

/// Computes the power breakdown of one mode.
///
/// # Panics
///
/// Panics if the schedule does not belong to `system`, or if
/// `energy_factors` is present with the wrong length — both indicate
/// caller bugs.
pub fn mode_power(system: &System, implementation: ModeImplementation<'_>) -> ModePower {
    let schedule = implementation.schedule;
    let mode = schedule.mode();
    let graph = system.omsm().mode(mode).graph();
    if let Some(f) = implementation.energy_factors {
        assert_eq!(f.len(), graph.task_count(), "energy factor per task required");
    }

    let mut task_energy = Joules::ZERO;
    let mut active_pes: Vec<PeId> = Vec::new();
    for entry in schedule.tasks() {
        let ty = graph.task(entry.task).task_type();
        let imp = system
            .tech()
            .impl_of(ty, entry.pe)
            .expect("scheduled task has an implementation on its PE");
        let factor = implementation
            .energy_factors
            .map(|f| f[entry.task.index()])
            .unwrap_or(1.0);
        task_energy += imp.energy() * factor;
        active_pes.push(entry.pe);
    }
    active_pes.sort_unstable();
    active_pes.dedup();

    let mut comm_energy = Joules::ZERO;
    let mut active_cls: Vec<ClId> = Vec::new();
    for comm in schedule.remote_comms() {
        let cl = system.arch().cl(comm.cl);
        comm_energy += cl.transfer_power() * comm.duration;
        active_cls.push(comm.cl);
    }
    active_cls.sort_unstable();
    active_cls.dedup();

    let static_power: Watts = active_pes
        .iter()
        .map(|&pe| system.arch().pe(pe).static_power())
        .chain(active_cls.iter().map(|&cl| system.arch().cl(cl).static_power()))
        .sum();

    let period = graph.period();
    ModePower {
        mode,
        task_energy,
        comm_energy,
        period,
        dynamic: (task_energy + comm_energy) / period,
        static_power,
        active_pes,
        active_cls,
    }
}

/// Computes the full report under the system's mode execution
/// probabilities `Ψ_O`.
///
/// # Panics
///
/// Panics if `implementations` does not cover every mode exactly once in
/// mode-id order.
pub fn power_report(system: &System, implementations: &[ModeImplementation<'_>]) -> PowerReport {
    let probabilities: Vec<f64> =
        system.omsm().modes().map(|(_, m)| m.probability()).collect();
    power_report_with(system, implementations, &probabilities)
}

/// Computes the full report under caller-supplied mode weights — used by
/// the probability-neglecting baseline, which optimises with uniform
/// weights but is always *evaluated* with the true probabilities.
///
/// # Panics
///
/// Panics if `implementations` or `weights` do not cover every mode
/// exactly once in mode-id order.
pub fn power_report_with(
    system: &System,
    implementations: &[ModeImplementation<'_>],
    weights: &[f64],
) -> PowerReport {
    let mode_count = system.omsm().mode_count();
    assert_eq!(implementations.len(), mode_count, "one implementation per mode");
    assert_eq!(weights.len(), mode_count, "one weight per mode");
    let modes: Vec<ModePower> = implementations
        .iter()
        .enumerate()
        .map(|(i, imp)| {
            assert_eq!(imp.schedule.mode().index(), i, "implementations in mode order");
            mode_power(system, *imp)
        })
        .collect();
    let average: Watts = modes
        .iter()
        .zip(weights)
        .map(|(m, &w)| m.total() * w)
        .sum();
    PowerReport { modes, average }
}

/// Uniform mode weights (`1/|Ω|`), the paper's probability-neglecting
/// optimisation target.
pub fn uniform_weights(system: &System) -> Vec<f64> {
    let n = system.omsm().mode_count();
    vec![1.0 / n as f64; n]
}

#[cfg(test)]
mod tests {
    use super::*;
    use momsynth_model::ids::{ModeId, PeId, TaskId};
    use momsynth_model::units::{Cells, Seconds};
    use momsynth_model::{
        ArchitectureBuilder, Cl, Implementation, OmsmBuilder, Pe, PeKind, TaskGraphBuilder,
        TechLibraryBuilder,
    };
    use momsynth_sched::{schedule_mode, CoreAllocation, SchedulerOptions, SystemMapping};

    /// Two modes (Ψ = 0.25 / 0.75), CPU + ASIC + bus.
    /// Type A: SW 10 ms @ 100 mW (1 mWs), HW 1 ms @ 10 mW (0.01 mWs).
    fn sys() -> System {
        let mut tech = TechLibraryBuilder::new();
        let ta = tech.add_type("A");
        let mut arch = ArchitectureBuilder::new();
        let cpu = arch.add_pe(Pe::software("cpu", PeKind::Gpp, Watts::from_milli(2.0)));
        let hw = arch.add_pe(Pe::hardware(
            "hw",
            PeKind::Asic,
            Cells::new(100),
            Watts::from_milli(1.0),
        ));
        arch.add_cl(Cl::bus(
            "bus",
            vec![cpu, hw],
            Seconds::from_micros(10.0),
            Watts::from_milli(5.0),
            Watts::from_milli(0.5),
        ))
        .unwrap();
        tech.set_impl(
            ta,
            cpu,
            Implementation::software(Seconds::from_millis(10.0), Watts::from_milli(100.0)),
        );
        tech.set_impl(
            ta,
            hw,
            Implementation::hardware(
                Seconds::from_millis(1.0),
                Watts::from_milli(10.0),
                Cells::new(50),
            ),
        );
        let mk = |name: &str| {
            let mut g = TaskGraphBuilder::new(name, Seconds::from_millis(100.0));
            let a = g.add_task("a", ta);
            let b = g.add_task("b", ta);
            g.add_comm(a, b, 100.0).unwrap();
            g.build().unwrap()
        };
        let mut omsm = OmsmBuilder::new();
        omsm.add_mode("m0", 0.25, mk("m0"));
        omsm.add_mode("m1", 0.75, mk("m1"));
        System::new("s", omsm.build().unwrap(), arch.build().unwrap(), tech.build()).unwrap()
    }

    fn schedules(system: &System, mapping: &SystemMapping) -> Vec<Schedule> {
        let alloc = CoreAllocation::minimal(system, mapping);
        system
            .omsm()
            .mode_ids()
            .map(|m| {
                schedule_mode(system, m, mapping, &alloc, SchedulerOptions::default()).unwrap()
            })
            .collect()
    }

    #[test]
    fn all_software_mode_power() {
        let system = sys();
        let mapping = SystemMapping::from_fn(&system, |_| PeId::new(0));
        let sch = schedules(&system, &mapping);
        let mp = mode_power(&system, ModeImplementation::nominal(&sch[0]));
        // Two 1 mWs tasks per 100 ms = 20 mW dynamic; only the CPU is on.
        assert!((mp.dynamic.as_milli() - 20.0).abs() < 1e-9);
        assert_eq!(mp.active_pes, vec![PeId::new(0)]);
        assert!(mp.active_cls.is_empty());
        assert!((mp.static_power.as_milli() - 2.0).abs() < 1e-12);
        assert!((mp.total().as_milli() - 22.0).abs() < 1e-9);
        assert_eq!(mp.comm_energy, Joules::ZERO);
    }

    #[test]
    fn remote_comm_and_shutdown_accounting() {
        let system = sys();
        // Mode 0: task b on HW; mode 1: all on CPU.
        let mut mapping = SystemMapping::from_fn(&system, |_| PeId::new(0));
        mapping.set(ModeId::new(0), TaskId::new(1), PeId::new(1));
        let sch = schedules(&system, &mapping);
        let mp0 = mode_power(&system, ModeImplementation::nominal(&sch[0]));
        // Dynamic: task a 1 mWs + task b 0.01 mWs + comm (1 ms @ 5 mW =
        // 0.005 mWs) over 100 ms.
        assert!((mp0.task_energy.as_milli_joules() - 1.01).abs() < 1e-9);
        assert!((mp0.comm_energy.as_milli_joules() - 0.005).abs() < 1e-9);
        // Static: CPU 2 + ASIC 1 + bus 0.5.
        assert!((mp0.static_power.as_milli() - 3.5).abs() < 1e-12);
        assert_eq!(mp0.active_cls, vec![momsynth_model::ids::ClId::new(0)]);

        let mp1 = mode_power(&system, ModeImplementation::nominal(&sch[1]));
        // Mode 1 shuts down ASIC and bus.
        assert!((mp1.static_power.as_milli() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn average_power_weights_by_probability() {
        let system = sys();
        let mapping = SystemMapping::from_fn(&system, |_| PeId::new(0));
        let sch = schedules(&system, &mapping);
        let imps: Vec<ModeImplementation> =
            sch.iter().map(ModeImplementation::nominal).collect();
        let report = power_report(&system, &imps);
        // Both modes identical at 22 mW: average is 22 regardless of Ψ.
        assert!((report.average.as_milli() - 22.0).abs() < 1e-9);

        // Now make mode 1 cheaper by mapping to HW: Ψ weighting matters.
        let mut mapping2 = SystemMapping::from_fn(&system, |_| PeId::new(0));
        mapping2.set(ModeId::new(1), TaskId::new(0), PeId::new(1));
        mapping2.set(ModeId::new(1), TaskId::new(1), PeId::new(1));
        let sch2 = schedules(&system, &mapping2);
        let imps2: Vec<ModeImplementation> =
            sch2.iter().map(ModeImplementation::nominal).collect();
        let report2 = power_report(&system, &imps2);
        // Mode 1 dynamic: 0.02 mWs / 100 ms = 0.2 mW; static HW only = 1 mW.
        let m1 = &report2.modes[1];
        assert!((m1.dynamic.as_milli() - 0.2).abs() < 1e-9);
        assert!((m1.static_power.as_milli() - 1.0).abs() < 1e-12);
        let expected = 0.25 * 22.0 + 0.75 * 1.2;
        assert!((report2.average.as_milli() - expected).abs() < 1e-9);
        assert!(report2.reduction_vs(&report) > 0.0);
    }

    #[test]
    fn energy_factors_scale_task_energy_only() {
        let system = sys();
        let mapping = SystemMapping::from_fn(&system, |_| PeId::new(0));
        let sch = schedules(&system, &mapping);
        let factors = vec![0.5, 0.25];
        let mp = mode_power(&system, ModeImplementation::scaled(&sch[0], &factors));
        // 1 mWs * 0.5 + 1 mWs * 0.25 = 0.75 mWs over 100 ms = 7.5 mW.
        assert!((mp.dynamic.as_milli() - 7.5).abs() < 1e-9);
        // Static power is unaffected by DVS.
        assert!((mp.static_power.as_milli() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_weights_sum_to_one() {
        let system = sys();
        let w = uniform_weights(&system);
        assert_eq!(w.len(), 2);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_report_with_uniform_weights_differs_from_true_probabilities() {
        let system = sys();
        let mut mapping = SystemMapping::from_fn(&system, |_| PeId::new(0));
        mapping.set(ModeId::new(1), TaskId::new(0), PeId::new(1));
        mapping.set(ModeId::new(1), TaskId::new(1), PeId::new(1));
        let sch = schedules(&system, &mapping);
        let imps: Vec<ModeImplementation> =
            sch.iter().map(ModeImplementation::nominal).collect();
        let true_report = power_report(&system, &imps);
        let uniform = power_report_with(&system, &imps, &uniform_weights(&system));
        // Mode 0 is the expensive one; uniform weighting overweights it
        // relative to its true Ψ = 0.25.
        assert!(uniform.average > true_report.average);
    }

    #[test]
    fn display_formats_report() {
        let system = sys();
        let mapping = SystemMapping::from_fn(&system, |_| PeId::new(0));
        let sch = schedules(&system, &mapping);
        let imps: Vec<ModeImplementation> =
            sch.iter().map(ModeImplementation::nominal).collect();
        let report = power_report(&system, &imps);
        let text = report.to_string();
        assert!(text.contains("average power"));
        assert!(text.contains("O0"));
        assert!(text.contains("O1"));
    }

    #[test]
    #[should_panic(expected = "one implementation per mode")]
    fn report_rejects_missing_modes() {
        let system = sys();
        let mapping = SystemMapping::from_fn(&system, |_| PeId::new(0));
        let sch = schedules(&system, &mapping);
        let imps = vec![ModeImplementation::nominal(&sch[0])];
        let _ = power_report(&system, &imps);
    }

    #[test]
    fn serde_round_trip() {
        let system = sys();
        let mapping = SystemMapping::from_fn(&system, |_| PeId::new(0));
        let sch = schedules(&system, &mapping);
        let imps: Vec<ModeImplementation> =
            sch.iter().map(ModeImplementation::nominal).collect();
        let report = power_report(&system, &imps);
        let json = serde_json::to_string(&report).unwrap();
        assert_eq!(serde_json::from_str::<PowerReport>(&json).unwrap(), report);
    }
}
