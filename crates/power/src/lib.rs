//! Probability-weighted power and energy accounting for multi-mode
//! embedded systems.
//!
//! Implements Equation 1 of the DATE 2003 paper: the system's average
//! power is the probability-weighted sum of each mode's dynamic power
//! (activity energy per hyper-period) and static power (components that
//! cannot be shut down during the mode). Component shut-down is derived
//! from the schedules themselves: a PE is powered only when it executes a
//! task in the mode, a link only when it carries a transfer.
//!
//! # Examples
//!
//! See [`power_report`] and the `quickstart` example of the workspace
//! root crate.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod breakdown;
pub mod report;

pub use breakdown::{
    battery_energy, battery_lifetime, energy_breakdown, ComponentId, ComponentPower,
    EnergyBreakdown,
};
pub use report::{
    mode_power, power_report, power_report_with, uniform_weights, ModeImplementation, ModePower,
    PowerReport,
};
