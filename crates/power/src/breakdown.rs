//! Per-component energy attribution and battery-life estimation.
//!
//! While [`PowerReport`] answers *how much* power an
//! implementation draws, the breakdown answers *where*: probability-
//! weighted average power per processing element and per link, split into
//! dynamic and static shares. This is the view a designer uses to decide
//! which component to attack next — and the battery-life estimator turns
//! the abstract milliwatts into the prolonged operation time the paper's
//! introduction motivates.

use serde::{Deserialize, Serialize};

use momsynth_model::ids::{ClId, PeId};
use momsynth_model::units::{Joules, Seconds, Watts};
use momsynth_model::System;

use crate::report::{ModeImplementation, PowerReport};

/// A hardware component: a PE or a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ComponentId {
    /// A processing element.
    Pe(PeId),
    /// A communication link.
    Cl(ClId),
}

impl std::fmt::Display for ComponentId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Pe(pe) => write!(f, "{pe}"),
            Self::Cl(cl) => write!(f, "{cl}"),
        }
    }
}

/// Probability-weighted average power of one component.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComponentPower {
    /// The component.
    pub component: ComponentId,
    /// Average dynamic power attributed to activities on this component.
    pub dynamic: Watts,
    /// Average static power (zero while the component is shut down).
    pub static_power: Watts,
}

impl ComponentPower {
    /// Total average power of the component.
    pub fn total(&self) -> Watts {
        self.dynamic + self.static_power
    }
}

/// A per-component view of an implementation's average power.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    components: Vec<ComponentPower>,
}

impl EnergyBreakdown {
    /// All components in architecture order (PEs first, then links).
    pub fn components(&self) -> &[ComponentPower] {
        &self.components
    }

    /// Components sorted by descending total power — the designer's
    /// hit list.
    pub fn top_consumers(&self) -> Vec<&ComponentPower> {
        let mut v: Vec<&ComponentPower> = self.components.iter().collect();
        v.sort_by(|a, b| b.total().value().total_cmp(&a.total().value()));
        v
    }

    /// Sum over all components; equals the report's average power.
    pub fn total(&self) -> Watts {
        self.components.iter().map(ComponentPower::total).sum()
    }

    /// Renders a table with component names.
    pub fn to_table_string(&self, system: &System) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<16} {:>12} {:>12} {:>12}\n",
            "component", "dyn [mW]", "stat [mW]", "total [mW]"
        ));
        for c in self.top_consumers() {
            let name = match c.component {
                ComponentId::Pe(pe) => system.arch().pe(pe).name().to_owned(),
                ComponentId::Cl(cl) => system.arch().cl(cl).name().to_owned(),
            };
            out.push_str(&format!(
                "{:<16} {:>12.4} {:>12.4} {:>12.4}\n",
                name,
                c.dynamic.as_milli(),
                c.static_power.as_milli(),
                c.total().as_milli()
            ));
        }
        out
    }
}

/// Attributes the probability-weighted average power of an implementation
/// to its components.
///
/// # Panics
///
/// Panics under the same conditions as
/// [`power_report`](crate::power_report): implementations must cover every
/// mode in order.
pub fn energy_breakdown(
    system: &System,
    implementations: &[ModeImplementation<'_>],
) -> EnergyBreakdown {
    let mode_count = system.omsm().mode_count();
    assert_eq!(implementations.len(), mode_count, "one implementation per mode");

    let pe_count = system.arch().pe_count();
    let cl_count = system.arch().cl_count();
    let mut dynamic = vec![Watts::ZERO; pe_count + cl_count];
    let mut static_power = vec![Watts::ZERO; pe_count + cl_count];

    for (i, imp) in implementations.iter().enumerate() {
        let schedule = imp.schedule;
        assert_eq!(schedule.mode().index(), i, "implementations in mode order");
        let mode = schedule.mode();
        let graph = system.omsm().mode(mode).graph();
        let weight = system.omsm().mode(mode).probability();
        let period = graph.period();

        for entry in schedule.tasks() {
            let imp_entry = system
                .tech()
                .impl_of(graph.task(entry.task).task_type(), entry.pe)
                .expect("scheduled task has an implementation");
            let factor =
                imp.energy_factors.map(|f| f[entry.task.index()]).unwrap_or(1.0);
            let energy: Joules = imp_entry.energy() * factor;
            dynamic[entry.pe.index()] += (energy / period) * weight;
        }
        for comm in schedule.remote_comms() {
            let cl = system.arch().cl(comm.cl);
            let energy: Joules = cl.transfer_power() * comm.duration;
            dynamic[pe_count + comm.cl.index()] += (energy / period) * weight;
        }

        // Static power of powered components, weighted by Ψ.
        let mut active_pes: Vec<PeId> = schedule.tasks().map(|t| t.pe).collect();
        active_pes.sort_unstable();
        active_pes.dedup();
        for pe in active_pes {
            static_power[pe.index()] += system.arch().pe(pe).static_power() * weight;
        }
        let mut active_cls: Vec<ClId> = schedule.remote_comms().map(|c| c.cl).collect();
        active_cls.sort_unstable();
        active_cls.dedup();
        for cl in active_cls {
            static_power[pe_count + cl.index()] +=
                system.arch().cl(cl).static_power() * weight;
        }
    }

    let components = (0..pe_count)
        .map(|i| ComponentPower {
            component: ComponentId::Pe(PeId::new(i)),
            dynamic: dynamic[i],
            static_power: static_power[i],
        })
        .chain((0..cl_count).map(|i| ComponentPower {
            component: ComponentId::Cl(ClId::new(i)),
            dynamic: dynamic[pe_count + i],
            static_power: static_power[pe_count + i],
        }))
        .collect();
    EnergyBreakdown { components }
}

/// Energy stored in a battery of `capacity_mah` at `voltage` — the usual
/// datasheet parameters.
pub fn battery_energy(capacity_mah: f64, voltage: momsynth_model::units::Volts) -> Joules {
    Joules::new(capacity_mah / 1000.0 * 3600.0 * voltage.value())
}

/// Expected operation time of an implementation on the given stored
/// energy: `capacity / p̄`.
///
/// Returns an infinite duration for a zero-power report.
pub fn battery_lifetime(report: &PowerReport, capacity: Joules) -> Seconds {
    if report.average.value() <= 0.0 {
        return Seconds::new(f64::INFINITY);
    }
    capacity / report.average
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{power_report, ModeImplementation};
    use momsynth_model::ids::{ModeId, TaskId};
    use momsynth_model::units::{Cells, Volts};
    use momsynth_model::{
        ArchitectureBuilder, Cl, Implementation, OmsmBuilder, Pe, PeKind, TaskGraphBuilder,
        TechLibraryBuilder,
    };
    use momsynth_sched::{schedule_mode, CoreAllocation, SchedulerOptions, SystemMapping};

    fn testbed() -> System {
        let mut tech = TechLibraryBuilder::new();
        let ta = tech.add_type("A");
        let mut arch = ArchitectureBuilder::new();
        let cpu = arch.add_pe(Pe::software("cpu", PeKind::Gpp, Watts::from_milli(2.0)));
        let hw = arch.add_pe(Pe::hardware(
            "hw",
            PeKind::Asic,
            Cells::new(100),
            Watts::from_milli(1.0),
        ));
        arch.add_cl(Cl::bus(
            "bus",
            vec![cpu, hw],
            Seconds::from_micros(10.0),
            Watts::from_milli(5.0),
            Watts::from_milli(0.5),
        ))
        .unwrap();
        tech.set_impl(
            ta,
            cpu,
            Implementation::software(Seconds::from_millis(10.0), Watts::from_milli(100.0)),
        );
        tech.set_impl(
            ta,
            hw,
            Implementation::hardware(
                Seconds::from_millis(1.0),
                Watts::from_milli(10.0),
                Cells::new(50),
            ),
        );
        let mk = |name: &str| {
            let mut g = TaskGraphBuilder::new(name, Seconds::from_millis(100.0));
            let a = g.add_task("a", ta);
            let b = g.add_task("b", ta);
            g.add_comm(a, b, 100.0).unwrap();
            g.build().unwrap()
        };
        let mut omsm = OmsmBuilder::new();
        omsm.add_mode("m0", 0.25, mk("m0"));
        omsm.add_mode("m1", 0.75, mk("m1"));
        System::new("s", omsm.build().unwrap(), arch.build().unwrap(), tech.build()).unwrap()
    }

    fn implementations(
        system: &System,
        mapping: &SystemMapping,
    ) -> Vec<momsynth_sched::Schedule> {
        let alloc = CoreAllocation::minimal(system, mapping);
        system
            .omsm()
            .mode_ids()
            .map(|m| {
                schedule_mode(system, m, mapping, &alloc, SchedulerOptions::default()).unwrap()
            })
            .collect()
    }

    #[test]
    fn breakdown_total_matches_report_average() {
        let system = testbed();
        let mut mapping = SystemMapping::from_fn(&system, |_| momsynth_model::ids::PeId::new(0));
        mapping.set(ModeId::new(0), TaskId::new(1), momsynth_model::ids::PeId::new(1));
        let schedules = implementations(&system, &mapping);
        let imps: Vec<ModeImplementation> =
            schedules.iter().map(ModeImplementation::nominal).collect();
        let report = power_report(&system, &imps);
        let breakdown = energy_breakdown(&system, &imps);
        assert!((breakdown.total().value() - report.average.value()).abs() < 1e-12);
        assert_eq!(breakdown.components().len(), 3);
    }

    #[test]
    fn dynamic_power_is_attributed_to_the_executing_component() {
        let system = testbed();
        // Everything on the CPU: the ASIC and bus must be fully idle.
        let mapping = SystemMapping::from_fn(&system, |_| momsynth_model::ids::PeId::new(0));
        let schedules = implementations(&system, &mapping);
        let imps: Vec<ModeImplementation> =
            schedules.iter().map(ModeImplementation::nominal).collect();
        let breakdown = energy_breakdown(&system, &imps);
        let hw = &breakdown.components()[1];
        let bus = &breakdown.components()[2];
        assert_eq!(hw.total(), Watts::ZERO);
        assert_eq!(bus.total(), Watts::ZERO);
        // CPU carries everything: 2 tasks x 1 mWs / 100 ms = 20 mW + 2 static.
        let cpu = &breakdown.components()[0];
        assert!((cpu.dynamic.as_milli() - 20.0).abs() < 1e-9);
        assert!((cpu.static_power.as_milli() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn shutdown_scales_static_share_by_probability() {
        let system = testbed();
        // HW used only in mode 0 (Ψ = 0.25).
        let mut mapping = SystemMapping::from_fn(&system, |_| momsynth_model::ids::PeId::new(0));
        mapping.set(ModeId::new(0), TaskId::new(1), momsynth_model::ids::PeId::new(1));
        let schedules = implementations(&system, &mapping);
        let imps: Vec<ModeImplementation> =
            schedules.iter().map(ModeImplementation::nominal).collect();
        let breakdown = energy_breakdown(&system, &imps);
        let hw = &breakdown.components()[1];
        assert!((hw.static_power.as_milli() - 0.25).abs() < 1e-9); // 1 mW x 0.25
    }

    #[test]
    fn top_consumers_are_sorted_descending() {
        let system = testbed();
        let mapping = SystemMapping::from_fn(&system, |_| momsynth_model::ids::PeId::new(0));
        let schedules = implementations(&system, &mapping);
        let imps: Vec<ModeImplementation> =
            schedules.iter().map(ModeImplementation::nominal).collect();
        let breakdown = energy_breakdown(&system, &imps);
        let top = breakdown.top_consumers();
        for pair in top.windows(2) {
            assert!(pair[0].total() >= pair[1].total());
        }
        let table = breakdown.to_table_string(&system);
        assert!(table.contains("cpu"));
        assert!(table.contains("total [mW]"));
    }

    #[test]
    fn battery_math() {
        // 1000 mAh at 3.7 V = 13320 J; at 10 mW that's 1332000 s.
        let capacity = battery_energy(1000.0, Volts::new(3.7));
        assert!((capacity.value() - 13_320.0).abs() < 1e-9);
        let report = PowerReport { modes: vec![], average: Watts::from_milli(10.0) };
        let life = battery_lifetime(&report, capacity);
        assert!((life.value() - 1_332_000.0).abs() < 1e-6);
        // Zero power -> infinite life.
        let idle = PowerReport { modes: vec![], average: Watts::ZERO };
        assert!(battery_lifetime(&idle, capacity).value().is_infinite());
    }

    #[test]
    fn serde_round_trip() {
        let system = testbed();
        let mapping = SystemMapping::from_fn(&system, |_| momsynth_model::ids::PeId::new(0));
        let schedules = implementations(&system, &mapping);
        let imps: Vec<ModeImplementation> =
            schedules.iter().map(ModeImplementation::nominal).collect();
        let breakdown = energy_breakdown(&system, &imps);
        let json = serde_json::to_string(&breakdown).unwrap();
        assert_eq!(serde_json::from_str::<EnergyBreakdown>(&json).unwrap(), breakdown);
    }
}
