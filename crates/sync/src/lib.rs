//! The workspace synchronization facade.
//!
//! Every crate that spawns threads or shares state imports its
//! primitives from here instead of `std::sync`/`std::thread` (enforced
//! by the `raw-std-sync-import` rule in `momsynth-lint`). A normal
//! build re-exports `std`, so the facade costs nothing. Building with
//! `RUSTFLAGS="--cfg loom"` swaps in the vendored [`loom`] model
//! checker, whose primitives exhaustively explore thread interleavings
//! and weak-memory behaviours inside `loom::model(..)` — see the
//! `tests/loom*.rs` suites in core, metrics, serve and telemetry, and
//! DESIGN.md §17 for the methodology.
//!
//! What is deliberately *not* swapped:
//!
//! - `mpsc` channels: loom does not model them. They are re-exported
//!   from `std` under both cfgs; this is sound inside a model because
//!   only one controlled thread runs at a time (use `try_recv`, never
//!   a blocking `recv`, inside a model).
//! - `thread::scope`: only available under `cfg(not(loom))`. Code with
//!   scoped parallelism keeps a serial fallback under `cfg(loom)` (see
//!   `momsynth-core`'s batch evaluator).
//!
//! Under `cfg(loom)` the atomic types are **not** `const`-constructible
//! (loom registers cells lazily per execution), so `static` cells must
//! either stay out of loom builds or be wrapped in `Once`-style
//! initialization. The workspace's only `static` atomic (the CLI's
//! interrupt flag) lives in a binary crate that is never built under
//! loom.

/// Synchronization primitives (`std::sync` or `loom::sync`).
pub mod sync {
    #[cfg(not(loom))]
    pub use std::sync::{
        Arc, Condvar, LockResult, Mutex, MutexGuard, PoisonError, TryLockError,
        TryLockResult, WaitTimeoutResult, Weak,
    };

    #[cfg(loom)]
    pub use loom::sync::{
        Arc, Condvar, LockResult, Mutex, MutexGuard, PoisonError, TryLockError,
        TryLockResult, WaitTimeoutResult,
    };

    /// Channels are never modeled; `std`'s are safe under the checker
    /// because controlled threads run one at a time.
    pub use std::sync::mpsc;

    /// Atomic types and memory orderings (`std` or loom's modeled
    /// cells).
    pub mod atomic {
        #[cfg(not(loom))]
        pub use std::sync::atomic::{
            AtomicBool, AtomicI64, AtomicU32, AtomicU64, AtomicUsize, Ordering,
        };

        #[cfg(loom)]
        pub use loom::sync::atomic::{
            AtomicBool, AtomicI64, AtomicU32, AtomicU64, AtomicUsize, Ordering,
        };
    }
}

/// Thread spawning and scheduling hints (`std::thread` or
/// `loom::thread`).
pub mod thread {
    #[cfg(not(loom))]
    pub use std::thread::*;

    #[cfg(loom)]
    pub use loom::thread::{spawn, yield_now, JoinHandle};
}

/// Runs `f` under the loom model checker when built with `--cfg loom`.
///
/// Exposed so model tests depend only on `momsynth-sync`; test modules
/// call `momsynth_sync::model(|| ...)`.
#[cfg(loom)]
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    loom::model(f);
}

#[cfg(all(test, not(loom)))]
mod tests {
    #[test]
    fn facade_reexports_std_under_normal_builds() {
        use super::sync::atomic::{AtomicU64, Ordering};
        use super::sync::{Arc, Condvar, Mutex};
        use std::time::Duration;

        let counter = Arc::new(AtomicU64::new(0));
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let (c2, p2) = (Arc::clone(&counter), Arc::clone(&pair));
        let t = super::thread::spawn(move || {
            c2.fetch_add(1, Ordering::Relaxed);
            let (lock, cv) = &*p2;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        });
        let (lock, cv) = &*pair;
        let mut done = lock.lock().unwrap();
        while !*done {
            let (guard, _) = cv.wait_timeout(done, Duration::from_millis(50)).unwrap();
            done = guard;
        }
        drop(done);
        t.join().unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }
}
