//! Independent end-to-end verification of finished synthesis results.
//!
//! The constructive pipeline — mapping GA, list scheduler, PV-DVS,
//! power report — *produces* a solution; this crate *re-proves* it. It
//! takes the finished parts and independently re-derives every claim the
//! paper's co-synthesis makes:
//!
//! * constraint (a): allocated hardware cores fit each PE's area budget;
//! * constraint (b): every task meets `min(θ, φ)` and every mode fits
//!   its period, on the DVS-extended execution times;
//! * constraint (c): every mode transition's FPGA reconfiguration stays
//!   within `t_T^max`;
//! * voltage-schedule legality under the alpha-power delay model;
//! * Eq. 1: the reported average power `p̄ = Σ_O (p̄_O^dyn + p̄_O^stat) ·
//!   Ψ_O`, matched to `1e-9` relative.
//!
//! Findings are typed [`Violation`]s aggregated into a [`CheckReport`].
//! [`Violation::is_constraint`] separates legitimate infeasibility (a
//! solution the optimiser itself reports as constraint-violating) from
//! internal inconsistency, which always indicates a bug.
//!
//! The crate deliberately sits *below* `momsynth-core` in the dependency
//! graph and shares no code with it: the scheduler validator
//! ([`momsynth_sched::validate_schedule`]) is reused as a building block,
//! but area, transition and power arithmetic are re-implemented here from
//! the model alone.

mod checks;
mod violation;

pub use checks::{check_solution, SolutionView, StoredSolution};
pub use violation::{CheckReport, Violation};

#[cfg(test)]
mod tests {
    use super::*;
    use momsynth_dvs::{scale_mode, DvsOptions, VoltageSchedule};
    use momsynth_model::arch::DvsCapability;
    use momsynth_model::ids::{ModeId, PeId};
    use momsynth_model::units::{Cells, Seconds, Volts, Watts};
    use momsynth_model::{
        ArchitectureBuilder, Implementation, OmsmBuilder, Pe, PeKind, System, TaskGraphBuilder,
        TechLibraryBuilder,
    };
    use momsynth_power::{power_report, ModeImplementation};
    use momsynth_sched::{
        schedule_mode, CoreAllocation, Schedule, SchedulerOptions, SystemMapping,
    };

    /// One mode, two chained tasks on a DVS-capable CPU with ample slack.
    fn dvs_system() -> System {
        let mut tech = TechLibraryBuilder::new();
        let ta = tech.add_type("A");
        let tb = tech.add_type("B");
        let mut arch = ArchitectureBuilder::new();
        let cpu = arch.add_pe(
            Pe::software("cpu", PeKind::Gpp, Watts::from_milli(1.0)).with_dvs(DvsCapability::new(
                Volts::new(3.3),
                Volts::new(0.8),
                vec![Volts::new(1.2), Volts::new(2.1), Volts::new(3.3)],
            )),
        );
        tech.set_impl(ta, cpu, Implementation::software(Seconds::from_millis(10.0), Watts::from_milli(20.0)));
        tech.set_impl(tb, cpu, Implementation::software(Seconds::from_millis(5.0), Watts::from_milli(10.0)));
        let mut g = TaskGraphBuilder::new("g", Seconds::from_millis(100.0));
        let a = g.add_task("a", ta);
        let b = g.add_task("b", tb);
        g.add_comm(a, b, 0.0).unwrap();
        let mut omsm = OmsmBuilder::new();
        omsm.add_mode("m", 1.0, g.build().unwrap());
        System::new("dvs-sys", omsm.build().unwrap(), arch.build().unwrap(), tech.build()).unwrap()
    }

    type Solved = (
        SystemMapping,
        CoreAllocation,
        Vec<Schedule>,
        Vec<Vec<Option<VoltageSchedule>>>,
        momsynth_power::PowerReport,
    );

    /// Builds a clean scaled solution for [`dvs_system`] through the
    /// mid-level pipeline (scheduler → PV-DVS → power report).
    fn solved(system: &System) -> Solved {
        let mapping = SystemMapping::from_fn(system, |_| PeId::new(0));
        let alloc = CoreAllocation::minimal(system, &mapping);
        let schedule = schedule_mode(
            system,
            ModeId::new(0),
            &mapping,
            &alloc,
            SchedulerOptions::default(),
        )
        .unwrap();
        let scaled = scale_mode(system, &schedule, &DvsOptions::default());
        let factors = scaled.energy_factors().to_vec();
        let voltage_schedules = vec![(0..2)
            .map(|t| scaled.task_voltage(momsynth_model::ids::TaskId::new(t)).cloned())
            .collect::<Vec<_>>()];
        let schedules = vec![scaled.schedule().clone()];
        let power = power_report(system, &[ModeImplementation::scaled(&schedules[0], &factors)]);
        (mapping, alloc, schedules, voltage_schedules, power)
    }

    #[test]
    fn clean_scaled_solution_passes() {
        let system = dvs_system();
        let (mapping, alloc, schedules, voltage_schedules, power) = solved(&system);
        let report = check_solution(
            &system,
            &SolutionView {
                mapping: &mapping,
                alloc: &alloc,
                schedules: &schedules,
                voltage_schedules: &voltage_schedules,
                power: &power,
            },
        );
        assert!(report.is_clean(), "{report}");
        // The slack must actually have been used, or this test proves
        // nothing about voltage checking.
        assert!(voltage_schedules[0].iter().flatten().count() > 0);
    }

    #[test]
    fn corrupted_voltage_slot_is_caught() {
        let system = dvs_system();
        let (mapping, alloc, schedules, mut voltage_schedules, power) = solved(&system);
        let vs = voltage_schedules[0][0].as_mut().expect("task 0 is scaled");
        // Mutate the first segment's supply (through the serde surface —
        // the in-memory type is intentionally unforgeable): the slot
        // re-derivation no longer adds up.
        let mut segments = vs.segments().to_vec();
        let old = segments[0].voltage;
        segments[0].voltage =
            if (old.value() - 2.1).abs() < 1e-9 { Volts::new(1.2) } else { Volts::new(2.1) };
        *vs = serde_json::from_value(&serde_json::json!({ "segments": segments }))
            .expect("voltage schedule deserialises");
        let report = check_solution(
            &system,
            &SolutionView {
                mapping: &mapping,
                alloc: &alloc,
                schedules: &schedules,
                voltage_schedules: &voltage_schedules,
                power: &power,
            },
        );
        assert!(!report.is_clean());
        assert!(report.has_consistency_violations(), "{report}");
    }

    #[test]
    fn inflated_average_power_is_caught() {
        let system = dvs_system();
        let (mapping, alloc, schedules, voltage_schedules, mut power) = solved(&system);
        power.average = power.average * 1.05;
        let report = check_solution(
            &system,
            &SolutionView {
                mapping: &mapping,
                alloc: &alloc,
                schedules: &schedules,
                voltage_schedules: &voltage_schedules,
                power: &power,
            },
        );
        assert!(report
            .violations()
            .iter()
            .any(|v| matches!(v, Violation::AveragePowerMismatch { .. })), "{report}");
    }

    #[test]
    fn missed_deadline_is_a_constraint_violation() {
        let system = dvs_system();
        let (mapping, alloc, mut schedules, voltage_schedules, power) = solved(&system);
        // Push the last task past the period.
        let mut tasks: Vec<_> = schedules[0].tasks().cloned().collect();
        tasks[1].start = Seconds::from_millis(200.0);
        let comms = system.omsm().mode(ModeId::new(0)).graph().comm_ids()
            .map(|c| schedules[0].comm(c).cloned())
            .collect();
        schedules[0] = Schedule::from_parts(
            ModeId::new(0),
            tasks,
            comms,
            schedules[0].sequences().to_vec(),
        );
        let report = check_solution(
            &system,
            &SolutionView {
                mapping: &mapping,
                alloc: &alloc,
                schedules: &schedules,
                voltage_schedules: &voltage_schedules,
                power: &power,
            },
        );
        assert!(report.has_constraint_violations(), "{report}");
        assert!(report
            .violations()
            .iter()
            .any(|v| matches!(v, Violation::DeadlineMissed { .. })));
        assert!(report
            .violations()
            .iter()
            .any(|v| matches!(v, Violation::PeriodExceeded { .. })));
    }

    #[test]
    fn shape_mismatch_reports_malformed() {
        let system = dvs_system();
        let (mapping, alloc, schedules, _, power) = solved(&system);
        let report = check_solution(
            &system,
            &SolutionView {
                mapping: &mapping,
                alloc: &alloc,
                schedules: &schedules,
                voltage_schedules: &[], // wrong mode count
                power: &power,
            },
        );
        assert!(report
            .violations()
            .iter()
            .all(|v| matches!(v, Violation::Malformed { .. })));
        assert!(!report.is_clean());
    }

    #[test]
    fn area_overflow_is_recomputed_independently() {
        // Two types on a tiny ASIC: both cores allocated statically
        // overflow its area.
        let mut tech = TechLibraryBuilder::new();
        let ta = tech.add_type("A");
        let tb = tech.add_type("B");
        let mut arch = ArchitectureBuilder::new();
        let hw = arch.add_pe(Pe::hardware("hw", PeKind::Asic, Cells::new(300), Watts::ZERO));
        tech.set_impl(ta, hw, Implementation::hardware(Seconds::from_millis(1.0), Watts::ZERO, Cells::new(200)));
        tech.set_impl(tb, hw, Implementation::hardware(Seconds::from_millis(1.0), Watts::ZERO, Cells::new(200)));
        let mut g = TaskGraphBuilder::new("g", Seconds::from_millis(100.0));
        g.add_task("a", ta);
        g.add_task("b", tb);
        let mut omsm = OmsmBuilder::new();
        omsm.add_mode("m", 1.0, g.build().unwrap());
        let system =
            System::new("tight", omsm.build().unwrap(), arch.build().unwrap(), tech.build())
                .unwrap();
        let mapping = SystemMapping::from_fn(&system, |_| PeId::new(0));
        let alloc = CoreAllocation::minimal(&system, &mapping);
        let schedule =
            schedule_mode(&system, ModeId::new(0), &mapping, &alloc, SchedulerOptions::default())
                .unwrap();
        let schedules = vec![schedule];
        let voltage_schedules = vec![vec![None, None]];
        let power = power_report(&system, &[ModeImplementation::nominal(&schedules[0])]);
        let report = check_solution(
            &system,
            &SolutionView {
                mapping: &mapping,
                alloc: &alloc,
                schedules: &schedules,
                voltage_schedules: &voltage_schedules,
                power: &power,
            },
        );
        assert!(report
            .violations()
            .iter()
            .any(|v| matches!(v, Violation::AreaOverflow { .. })), "{report}");
    }

    #[test]
    fn stored_solution_round_trips_and_checks() {
        let system = dvs_system();
        let (mapping, alloc, schedules, voltage_schedules, power) = solved(&system);
        let json = serde_json::json!({
            "mapping": mapping,
            "alloc": alloc,
            "schedules": schedules,
            "voltage_schedules": voltage_schedules,
            "power": power,
            "extra": "ignored",
        });
        let stored = StoredSolution::from_json(&json).unwrap();
        assert!(stored.check(&system).is_clean());
        // Without the voltage schedules the timing no longer matches the
        // nominal execution times — the checker must notice.
        let json = serde_json::json!({
            "mapping": mapping,
            "alloc": alloc,
            "schedules": schedules,
            "power": power,
        });
        let stored = StoredSolution::from_json(&json).unwrap();
        assert!(stored.voltage_schedules.is_none());
        let report = stored.check(&system);
        assert!(report
            .violations()
            .iter()
            .any(|v| matches!(v, Violation::ExecTimeMismatch { .. })), "{report}");
        // Missing required fields are reported, not panicked on.
        assert!(StoredSolution::from_json(&serde_json::json!({})).is_err());
    }
}
