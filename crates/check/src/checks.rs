//! The five independent check families over a finished solution.

use momsynth_dvs::{VoltageModel, VoltageSchedule};
use momsynth_model::units::Cells;
use momsynth_model::System;
use momsynth_power::PowerReport;
use momsynth_sched::{validate_schedule, CoreAllocation, Schedule, SystemMapping};

use crate::violation::{CheckReport, Violation};

/// Structural slack shared with the rest of the workspace: finishing
/// `≤ limit + EPS` counts as on time.
const EPS: f64 = 1e-12;

/// Relative tolerance for re-derived floating-point quantities (scaled
/// execution times, energy factors, Eq. 1 powers).
const REL_EPS: f64 = 1e-9;

/// `true` when `actual` matches `reference` to [`REL_EPS`], relative to
/// `max(1, |reference|)`.
fn close(actual: f64, reference: f64) -> bool {
    (actual - reference).abs() <= REL_EPS * reference.abs().max(1.0)
}

/// Borrowed view of the constituent parts of a finished solution.
///
/// The checker deliberately takes the raw parts instead of a concrete
/// result type so that it can verify solutions from any producer — the
/// synthesizer's in-memory result, a deserialised `--output` file, or a
/// hand-constructed test fixture.
#[derive(Debug, Clone, Copy)]
pub struct SolutionView<'a> {
    /// Task-to-PE mapping, per mode.
    pub mapping: &'a SystemMapping,
    /// Hardware core allocation, per mode.
    pub alloc: &'a CoreAllocation,
    /// One schedule per mode, in mode-id order.
    pub schedules: &'a [Schedule],
    /// Per-mode, per-task voltage schedules (`None` = runs at nominal).
    pub voltage_schedules: &'a [Vec<Option<VoltageSchedule>>],
    /// The power report whose Eq. 1 claim is to be re-proved.
    pub power: &'a PowerReport,
}

/// Independently re-derives and verifies every paper constraint on a
/// finished solution, sharing no code path with the constructive inner
/// loop (scheduler, PV-DVS and power report are only *inputs* here).
///
/// The families, in check order:
///
/// 1. mapping feasibility — implementations exist, constraint (a) area;
/// 2. schedule legality — [`validate_schedule`] plus constraint (b)
///    deadlines and periods on the DVS-extended timing;
/// 3. voltage-schedule legality — supply range, cycle fractions,
///    first-principles timing, and never-increased energy;
/// 4. constraint (c) — transition-time limits `t_T^max` against FPGA
///    reconfiguration re-derived from the allocation;
/// 5. Eq. 1 — the reported average power re-derived from raw `f64`
///    arithmetic, matched to `1e-9` relative.
pub fn check_solution(system: &System, view: &SolutionView<'_>) -> CheckReport {
    let mut violations = Vec::new();
    if check_shape(system, view, &mut violations) {
        check_mapping(system, view, &mut violations);
        check_schedules(system, view, &mut violations);
        check_voltages(system, view, &mut violations);
        check_transitions(system, view, &mut violations);
        check_power(system, view, &mut violations);
    }
    CheckReport::new(violations)
}

/// Validates that every part has the system's shape and only uses ids
/// the system defines, so the deeper checks can index freely. Returns
/// `false` (after recording [`Violation::Malformed`] findings) when the
/// deeper checks cannot run.
fn check_shape(system: &System, view: &SolutionView<'_>, out: &mut Vec<Violation>) -> bool {
    let omsm = system.omsm();
    let modes = omsm.mode_count();
    let pes = system.arch().pe_count();
    let types = system.tech().type_count();
    let before = out.len();
    let malformed =
        |out: &mut Vec<Violation>, detail: String| out.push(Violation::Malformed { detail });

    if view.mapping.mode_count() != modes {
        malformed(
            out,
            format!("mapping covers {} modes, system has {modes}", view.mapping.mode_count()),
        );
    } else {
        for (m, mode) in omsm.modes() {
            let tasks = mode.graph().task_count();
            if view.mapping.task_count(m) != tasks {
                malformed(
                    out,
                    format!(
                        "mode {m}: mapping covers {} tasks, graph has {tasks}",
                        view.mapping.task_count(m)
                    ),
                );
                continue;
            }
            for (t, pe) in view.mapping.mode_assignments(m) {
                if pe.index() >= pes {
                    malformed(out, format!("mode {m}: task {t} mapped to unknown PE {pe}"));
                }
            }
        }
    }

    if view.alloc.mode_count() != modes {
        malformed(
            out,
            format!("allocation covers {} modes, system has {modes}", view.alloc.mode_count()),
        );
    } else {
        for m in omsm.mode_ids() {
            for ((pe, ty), _) in view.alloc.mode_cores(m) {
                if pe.index() >= pes || ty.index() >= types {
                    malformed(out, format!("mode {m}: allocation names unknown core ({pe}, {ty})"));
                }
            }
        }
    }

    if view.schedules.len() != modes {
        malformed(out, format!("{} schedules for {modes} modes", view.schedules.len()));
    } else {
        for (m, mode) in omsm.modes() {
            let schedule = &view.schedules[m.index()];
            let tasks = mode.graph().task_count();
            if schedule.mode() != m {
                malformed(out, format!("schedule {} claims mode {}", m.index(), schedule.mode()));
                continue;
            }
            let entries: Vec<_> = schedule.tasks().collect();
            if entries.len() != tasks {
                malformed(out, format!("mode {m}: schedule has {} of {tasks} tasks", entries.len()));
                continue;
            }
            for (i, entry) in entries.iter().enumerate() {
                if entry.task.index() != i || entry.pe.index() >= pes {
                    malformed(out, format!("mode {m}: schedule entry {i} is inconsistent"));
                }
            }
        }
    }

    if view.voltage_schedules.len() != modes {
        malformed(
            out,
            format!("{} voltage-schedule modes for {modes} modes", view.voltage_schedules.len()),
        );
    } else {
        for (m, mode) in omsm.modes() {
            let tasks = mode.graph().task_count();
            let have = view.voltage_schedules[m.index()].len();
            if have != tasks {
                malformed(out, format!("mode {m}: {have} voltage schedules for {tasks} tasks"));
            }
        }
    }

    if view.power.modes.len() != modes {
        malformed(out, format!("power report covers {} of {modes} modes", view.power.modes.len()));
    } else {
        for (i, mp) in view.power.modes.iter().enumerate() {
            if mp.mode.index() != i {
                malformed(out, format!("power report entry {i} claims mode {}", mp.mode));
            }
        }
    }

    out.len() == before
}

/// Family 1: every task's type must have an implementation on its mapped
/// PE, and the allocated cores must fit each hardware PE's area budget —
/// the paper's constraint (a).
fn check_mapping(system: &System, view: &SolutionView<'_>, out: &mut Vec<Violation>) {
    let omsm = system.omsm();
    for (m, mode) in omsm.modes() {
        for (t, task) in mode.graph().tasks() {
            let pe = view.mapping.pe_of(m, t);
            if system.tech().impl_of(task.task_type(), pe).is_none() {
                out.push(Violation::MissingImplementation { mode: m, task: t, pe });
            }
        }
    }

    for (pe, info) in system.arch().pes() {
        let Some(capacity) = info.area() else { continue };
        // Reconfigurable fabric is reloaded between modes, so only the
        // busiest mode must fit; static (ASIC) cores coexist across all
        // modes and their union must fit.
        let required = if info.kind().is_reconfigurable() {
            omsm.mode_ids()
                .map(|m| view.alloc.mode_area(system, pe, m))
                .max()
                .unwrap_or(Cells::ZERO)
        } else {
            view.alloc.static_area(system, pe)
        };
        if required.value() > capacity.value() {
            out.push(Violation::AreaOverflow { pe, required, capacity });
        }
    }
}

/// Family 2: structural schedule legality via the independent validator,
/// plus constraint (b) — deadlines and periods — on the (possibly
/// DVS-extended) timing actually recorded in the schedule.
fn check_schedules(system: &System, view: &SolutionView<'_>, out: &mut Vec<Violation>) {
    for (m, mode) in system.omsm().modes() {
        let graph = mode.graph();
        let schedule = &view.schedules[m.index()];
        for violation in validate_schedule(system, view.mapping, view.alloc, schedule) {
            out.push(Violation::ScheduleIllegal { mode: m, violation });
        }
        for entry in schedule.tasks() {
            let deadline = graph.effective_deadline(entry.task);
            if entry.finish().value() > deadline.value() + EPS {
                out.push(Violation::DeadlineMissed {
                    mode: m,
                    task: entry.task,
                    finish: entry.finish(),
                    deadline,
                });
            }
        }
        let finish = schedule.makespan();
        if finish.value() > graph.period().value() + EPS {
            out.push(Violation::PeriodExceeded { mode: m, finish, period: graph.period() });
        }
    }
}

/// Family 3: voltage-schedule legality, re-derived from first principles
/// under the alpha-power delay model: supplies within the PE's range,
/// cycle fractions covering the task, segment timing consistent with
/// `Σ fraction · t_min · stretch(V)`, energy never above nominal — and
/// no voltage schedule at all on fixed-voltage PEs.
fn check_voltages(system: &System, view: &SolutionView<'_>, out: &mut Vec<Violation>) {
    for (m, mode) in system.omsm().modes() {
        let graph = mode.graph();
        let schedule = &view.schedules[m.index()];
        for (t, task) in graph.tasks() {
            let entry = schedule.task(t);
            let Some(imp) = system.tech().impl_of(task.task_type(), entry.pe) else {
                continue; // already reported by check_mapping
            };
            let t_min = imp.exec_time();
            let Some(vs) = view.voltage_schedules[m.index()][t.index()].as_ref() else {
                // Unscaled task: the schedule must use the nominal time.
                if !close(entry.exec_time.value(), t_min.value()) {
                    out.push(Violation::ExecTimeMismatch {
                        mode: m,
                        task: t,
                        expected: t_min,
                        actual: entry.exec_time,
                    });
                }
                continue;
            };
            let Some(cap) = system.arch().pe(entry.pe).dvs() else {
                out.push(Violation::VoltageOnFixedPe { mode: m, task: t, pe: entry.pe });
                continue;
            };
            let model = VoltageModel::from_capability(cap);

            let mut fraction_sum = 0.0;
            let mut derived = 0.0;
            let mut stored = 0.0;
            let mut usable = true;
            for segment in vs.segments() {
                let v = segment.voltage.value();
                if v <= cap.v_threshold().value()
                    || v < cap.v_min().value() - REL_EPS
                    || v > cap.v_max().value() + REL_EPS
                {
                    out.push(Violation::VoltageOutOfRange {
                        mode: m,
                        task: t,
                        voltage: segment.voltage,
                    });
                    usable = false;
                    continue;
                }
                fraction_sum += segment.cycle_fraction;
                derived += segment.cycle_fraction * t_min.value() * model.stretch(segment.voltage);
                stored += segment.duration.value();
            }
            if !usable {
                continue; // stretch() is undefined below threshold
            }
            if (fraction_sum - 1.0).abs() > REL_EPS {
                out.push(Violation::CycleFractionsInvalid { mode: m, task: t, sum: fraction_sum });
                continue;
            }
            // Both the first-principles derivation and the stored segment
            // durations must reproduce the schedule slot.
            for total in [derived, stored] {
                if !close(total, entry.exec_time.value()) {
                    out.push(Violation::VoltageTimeMismatch {
                        mode: m,
                        task: t,
                        derived: momsynth_model::units::Seconds::new(total),
                        scheduled: entry.exec_time,
                    });
                    break;
                }
            }
            let factor = vs.energy_factor(&model);
            if factor > 1.0 + REL_EPS {
                out.push(Violation::EnergyIncreased { mode: m, task: t, factor });
            }
        }
    }
}

/// Family 4: constraint (c) — every mode transition's FPGA
/// reconfiguration, re-derived as `Σ reconfig_time_per_cell · area of the
/// cores to load`, must stay within the specification's `t_T^max`.
fn check_transitions(system: &System, view: &SolutionView<'_>, out: &mut Vec<Violation>) {
    for (id, t) in system.omsm().transitions() {
        let mut time = 0.0;
        for (pe, info) in system.arch().pes() {
            if !info.kind().is_reconfigurable() {
                continue;
            }
            let area = view.alloc.reconfig_area(system, pe, t.from(), t.to());
            time += info.reconfig_time_per_cell().value() * area.value() as f64;
        }
        if time > t.max_time().value() + EPS {
            out.push(Violation::TransitionOverrun {
                transition: id,
                time: momsynth_model::units::Seconds::new(time),
                limit: t.max_time(),
            });
        }
    }
}

/// Family 5: Eq. 1 — `p̄ = Σ_O (p̄_O^dyn + p̄_O^stat) · Ψ_O` — recomputed
/// with raw `f64` arithmetic from the technology library, the schedules
/// and the voltage schedules, then matched against the report to `1e-9`.
fn check_power(system: &System, view: &SolutionView<'_>, out: &mut Vec<Violation>) {
    let mut average = 0.0;
    for (m, mode) in system.omsm().modes() {
        let graph = mode.graph();
        let schedule = &view.schedules[m.index()];

        let mut task_energy = 0.0;
        let mut active_pes: Vec<usize> = Vec::new();
        for entry in schedule.tasks() {
            let ty = graph.task(entry.task).task_type();
            let Some(imp) = system.tech().impl_of(ty, entry.pe) else {
                continue; // already reported by check_mapping
            };
            let factor = match view.voltage_schedules[m.index()][entry.task.index()].as_ref() {
                Some(vs) => match system.arch().pe(entry.pe).dvs() {
                    Some(cap) => vs.energy_factor(&VoltageModel::from_capability(cap)),
                    None => 1.0, // reported by check_voltages
                },
                None => 1.0,
            };
            task_energy += imp.dyn_power().value() * imp.exec_time().value() * factor;
            active_pes.push(entry.pe.index());
        }
        active_pes.sort_unstable();
        active_pes.dedup();

        let mut comm_energy = 0.0;
        let mut active_cls: Vec<usize> = Vec::new();
        for comm in schedule.remote_comms() {
            comm_energy +=
                system.arch().cl(comm.cl).transfer_power().value() * comm.duration.value();
            active_cls.push(comm.cl.index());
        }
        active_cls.sort_unstable();
        active_cls.dedup();

        // Shut-down analysis: only resources that actually execute in the
        // mode draw static power.
        let static_power = active_pes
            .iter()
            .map(|&pe| system.arch().pe(momsynth_model::ids::PeId::new(pe)).static_power().value())
            .sum::<f64>()
            + active_cls
                .iter()
                .map(|&cl| system.arch().cl(momsynth_model::ids::ClId::new(cl)).static_power().value())
                .sum::<f64>();

        let total = (task_energy + comm_energy) / graph.period().value() + static_power;
        let reported = view.power.modes[m.index()].total();
        if !close(total, reported.value()) {
            out.push(Violation::ModePowerMismatch {
                mode: m,
                reported,
                recomputed: momsynth_model::units::Watts::new(total),
            });
        }
        average += total * mode.probability();
    }
    if !close(average, view.power.average.value()) {
        out.push(Violation::AveragePowerMismatch {
            reported: view.power.average,
            recomputed: momsynth_model::units::Watts::new(average),
        });
    }
}

/// A solution as persisted by `momsynth synth --output` — the parts of
/// the solution JSON the checker needs.
#[derive(Debug, Clone)]
pub struct StoredSolution {
    /// Task-to-PE mapping, per mode.
    pub mapping: SystemMapping,
    /// Hardware core allocation, per mode.
    pub alloc: CoreAllocation,
    /// One schedule per mode.
    pub schedules: Vec<Schedule>,
    /// Per-mode, per-task voltage schedules; `None` when the file predates
    /// the field (treated as all-nominal).
    pub voltage_schedules: Option<Vec<Vec<Option<VoltageSchedule>>>>,
    /// The reported power breakdown.
    pub power: PowerReport,
}

impl StoredSolution {
    /// Extracts the checkable parts from a solution-JSON document.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or mistyped field.
    pub fn from_json(value: &serde_json::Value) -> Result<Self, String> {
        fn field<T: serde::de::DeserializeOwned>(
            value: &serde_json::Value,
            name: &str,
        ) -> Result<T, String> {
            let v = value.get(name).ok_or_else(|| format!("missing field `{name}`"))?;
            serde_json::from_value(v).map_err(|e| format!("field `{name}`: {e}"))
        }
        let voltage_schedules = match value.get("voltage_schedules") {
            None => None,
            Some(v) if v.is_null() => None,
            Some(v) => Some(
                serde_json::from_value(v).map_err(|e| format!("field `voltage_schedules`: {e}"))?,
            ),
        };
        Ok(Self {
            mapping: field(value, "mapping")?,
            alloc: field(value, "alloc")?,
            schedules: field(value, "schedules")?,
            voltage_schedules,
            power: field(value, "power")?,
        })
    }

    /// Runs [`check_solution`] over the stored parts, treating a missing
    /// `voltage_schedules` field as all-nominal execution.
    pub fn check(&self, system: &System) -> CheckReport {
        let nominal: Vec<Vec<Option<VoltageSchedule>>>;
        let voltage_schedules: &[Vec<Option<VoltageSchedule>>] = match &self.voltage_schedules {
            Some(vs) => vs,
            None => {
                nominal =
                    self.schedules.iter().map(|s| vec![None; s.tasks().count()]).collect();
                &nominal
            }
        };
        check_solution(
            system,
            &SolutionView {
                mapping: &self.mapping,
                alloc: &self.alloc,
                schedules: &self.schedules,
                voltage_schedules,
                power: &self.power,
            },
        )
    }
}
