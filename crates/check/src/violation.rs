//! Typed verification findings and the aggregate [`CheckReport`].

use std::fmt;

use momsynth_model::ids::{ModeId, PeId, TaskId, TransitionId};
use momsynth_model::units::{Cells, Seconds, Volts, Watts};
use momsynth_sched::ScheduleViolation;

/// One verified defect in a finished synthesis result.
///
/// Mirrors [`ScheduleViolation`]'s style: a typed, non-exhaustive enum
/// with human-readable [`fmt::Display`] output. Variants fall into two
/// families, distinguished by [`Violation::is_constraint`]:
///
/// * *design-constraint* findings — the paper's constraints (a) area,
///   (b) deadlines/periods and (c) transition times. A solution the
///   optimiser itself reports as infeasible may legitimately carry
///   these;
/// * *consistency* findings — the result's parts contradict each other
///   or the system specification. These are never legitimate and
///   indicate a bug in the constructive pipeline (or a corrupted
///   result file).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Violation {
    /// A task is mapped to a PE its type has no implementation for.
    MissingImplementation {
        /// Mode containing the task.
        mode: ModeId,
        /// The unimplementable task.
        task: TaskId,
        /// The PE it was mapped to.
        pe: PeId,
    },
    /// The result's parts do not fit the system specification (wrong
    /// vector lengths, foreign ids) and cannot be checked further.
    Malformed {
        /// What exactly does not line up.
        detail: String,
    },
    /// A mode's schedule breaks a structural scheduling rule (precedence,
    /// resource exclusivity, routing, …) per [`ScheduleViolation`].
    ScheduleIllegal {
        /// Mode whose schedule is illegal.
        mode: ModeId,
        /// The underlying structural violation.
        violation: ScheduleViolation,
    },
    /// An unscaled task's scheduled execution time differs from its
    /// implementation's nominal execution time.
    ExecTimeMismatch {
        /// Mode containing the task.
        mode: ModeId,
        /// The mistimed task.
        task: TaskId,
        /// The implementation's nominal execution time.
        expected: Seconds,
        /// The execution time recorded in the schedule.
        actual: Seconds,
    },
    /// A task on a fixed-voltage PE carries a voltage schedule.
    VoltageOnFixedPe {
        /// Mode containing the task.
        mode: ModeId,
        /// The wrongly scaled task.
        task: TaskId,
        /// The DVS-incapable PE it runs on.
        pe: PeId,
    },
    /// A voltage-schedule segment uses a supply outside the PE's
    /// `[v_min, v_max]` range (or at/below the threshold voltage).
    VoltageOutOfRange {
        /// Mode containing the task.
        mode: ModeId,
        /// The task whose schedule is out of range.
        task: TaskId,
        /// The offending supply voltage.
        voltage: Volts,
    },
    /// A voltage schedule's cycle fractions do not sum to one.
    CycleFractionsInvalid {
        /// Mode containing the task.
        mode: ModeId,
        /// The task whose fractions are inconsistent.
        task: TaskId,
        /// The actual fraction sum.
        sum: f64,
    },
    /// The execution time re-derived from first principles (`Σ fraction ·
    /// t_min · stretch(V)` under the alpha-power delay model) disagrees
    /// with the schedule slot.
    VoltageTimeMismatch {
        /// Mode containing the task.
        mode: ModeId,
        /// The mistimed task.
        task: TaskId,
        /// Execution time re-derived from the voltage schedule.
        derived: Seconds,
        /// Execution time recorded in the schedule.
        scheduled: Seconds,
    },
    /// PV-DVS increased a task's energy above its nominal-voltage energy.
    EnergyIncreased {
        /// Mode containing the task.
        mode: ModeId,
        /// The task whose energy grew.
        task: TaskId,
        /// The energy factor relative to nominal execution (must be ≤ 1).
        factor: f64,
    },
    /// A reported per-mode power differs from the independent Eq. 1
    /// recomputation.
    ModePowerMismatch {
        /// The mode whose power disagrees.
        mode: ModeId,
        /// The power the result reports.
        reported: Watts,
        /// The independently recomputed power.
        recomputed: Watts,
    },
    /// The reported Eq. 1 average power `p̄` differs from the independent
    /// probability-weighted recomputation.
    AveragePowerMismatch {
        /// The average power the result reports.
        reported: Watts,
        /// The independently recomputed average power.
        recomputed: Watts,
    },
    /// Constraint (a): the cores allocated on a hardware PE exceed its
    /// area budget.
    AreaOverflow {
        /// The overcommitted PE.
        pe: PeId,
        /// Area the allocation requires.
        required: Cells,
        /// The PE's area capacity.
        capacity: Cells,
    },
    /// Constraint (b): a task finishes after its effective deadline
    /// `min(θ, φ)`.
    DeadlineMissed {
        /// Mode containing the task.
        mode: ModeId,
        /// The late task.
        task: TaskId,
        /// When the task finishes.
        finish: Seconds,
        /// Its effective deadline.
        deadline: Seconds,
    },
    /// Constraint (b): an activity finishes after the mode's period.
    PeriodExceeded {
        /// The overrunning mode.
        mode: ModeId,
        /// When the last activity finishes.
        finish: Seconds,
        /// The mode's period `φ`.
        period: Seconds,
    },
    /// Constraint (c): a mode transition's FPGA reconfiguration exceeds
    /// its limit `t_T^max`.
    TransitionOverrun {
        /// The overrunning transition.
        transition: TransitionId,
        /// Total reconfiguration time.
        time: Seconds,
        /// The specification's limit `t_T^max`.
        limit: Seconds,
    },
}

impl Violation {
    /// `true` for findings against the paper's design constraints
    /// (a)/(b)/(c), which an optimiser-reported-infeasible solution may
    /// legitimately carry; `false` for internal-consistency defects,
    /// which never are.
    pub fn is_constraint(&self) -> bool {
        matches!(
            self,
            Violation::AreaOverflow { .. }
                | Violation::DeadlineMissed { .. }
                | Violation::PeriodExceeded { .. }
                | Violation::TransitionOverrun { .. }
        )
    }

    /// A stable machine-readable code naming the violation kind.
    pub fn code(&self) -> &'static str {
        match self {
            Violation::MissingImplementation { .. } => "missing-implementation",
            Violation::Malformed { .. } => "malformed",
            Violation::ScheduleIllegal { .. } => "schedule-illegal",
            Violation::ExecTimeMismatch { .. } => "exec-time-mismatch",
            Violation::VoltageOnFixedPe { .. } => "voltage-on-fixed-pe",
            Violation::VoltageOutOfRange { .. } => "voltage-out-of-range",
            Violation::CycleFractionsInvalid { .. } => "cycle-fractions-invalid",
            Violation::VoltageTimeMismatch { .. } => "voltage-time-mismatch",
            Violation::EnergyIncreased { .. } => "energy-increased",
            Violation::ModePowerMismatch { .. } => "mode-power-mismatch",
            Violation::AveragePowerMismatch { .. } => "average-power-mismatch",
            Violation::AreaOverflow { .. } => "area-overflow",
            Violation::DeadlineMissed { .. } => "deadline-missed",
            Violation::PeriodExceeded { .. } => "period-exceeded",
            Violation::TransitionOverrun { .. } => "transition-overrun",
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::MissingImplementation { mode, task, pe } => write!(
                f,
                "mode {mode}: task {task} is mapped to {pe}, but its type has no implementation there"
            ),
            Violation::Malformed { detail } => write!(f, "malformed result: {detail}"),
            Violation::ScheduleIllegal { mode, violation } => {
                write!(f, "mode {mode}: illegal schedule: {violation}")
            }
            Violation::ExecTimeMismatch { mode, task, expected, actual } => write!(
                f,
                "mode {mode}: task {task} is scheduled for {actual} but its nominal execution time is {expected}"
            ),
            Violation::VoltageOnFixedPe { mode, task, pe } => write!(
                f,
                "mode {mode}: task {task} carries a voltage schedule on {pe}, which has no DVS capability"
            ),
            Violation::VoltageOutOfRange { mode, task, voltage } => write!(
                f,
                "mode {mode}: task {task} runs a segment at {voltage}, outside its PE's supply range"
            ),
            Violation::CycleFractionsInvalid { mode, task, sum } => write!(
                f,
                "mode {mode}: task {task}'s voltage-schedule cycle fractions sum to {sum} instead of 1"
            ),
            Violation::VoltageTimeMismatch { mode, task, derived, scheduled } => write!(
                f,
                "mode {mode}: task {task} is scheduled for {scheduled}, but its voltage schedule derives to {derived}"
            ),
            Violation::EnergyIncreased { mode, task, factor } => write!(
                f,
                "mode {mode}: task {task}'s voltage schedule raises energy by factor {factor} over nominal"
            ),
            Violation::ModePowerMismatch { mode, reported, recomputed } => write!(
                f,
                "mode {mode}: reported power {reported} differs from the recomputed {recomputed}"
            ),
            Violation::AveragePowerMismatch { reported, recomputed } => write!(
                f,
                "reported average power {reported} differs from the recomputed Eq. 1 value {recomputed}"
            ),
            Violation::AreaOverflow { pe, required, capacity } => write!(
                f,
                "constraint (a): {pe} needs {required} of area but only has {capacity}"
            ),
            Violation::DeadlineMissed { mode, task, finish, deadline } => write!(
                f,
                "constraint (b): mode {mode}: task {task} finishes at {finish}, after its deadline {deadline}"
            ),
            Violation::PeriodExceeded { mode, finish, period } => write!(
                f,
                "constraint (b): mode {mode} finishes at {finish}, after its period {period}"
            ),
            Violation::TransitionOverrun { transition, time, limit } => write!(
                f,
                "constraint (c): transition {transition} reconfigures for {time}, over its limit {limit}"
            ),
        }
    }
}

/// The aggregate outcome of [`crate::check_solution`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CheckReport {
    violations: Vec<Violation>,
}

impl CheckReport {
    /// Wraps a list of findings into a report.
    pub fn new(violations: Vec<Violation>) -> Self {
        Self { violations }
    }

    /// All findings, in check order.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// `true` when no check found anything.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// `true` when any finding targets a paper design constraint.
    pub fn has_constraint_violations(&self) -> bool {
        self.violations.iter().any(Violation::is_constraint)
    }

    /// `true` when any finding is an internal-consistency defect — never
    /// legitimate, regardless of the solution's reported feasibility.
    pub fn has_consistency_violations(&self) -> bool {
        self.violations.iter().any(|v| !v.is_constraint())
    }

    /// A machine-readable JSON rendering of the report.
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "clean": self.is_clean(),
            "violation_count": self.violations.len(),
            "violations": self
                .violations
                .iter()
                .map(|v| {
                    serde_json::json!({
                        "code": v.code(),
                        "constraint": v.is_constraint(),
                        "message": v.to_string(),
                    })
                })
                .collect::<Vec<_>>(),
        })
    }
}

impl fmt::Display for CheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.violations.is_empty() {
            return writeln!(f, "ok: no violations");
        }
        writeln!(f, "{} violation(s):", self.violations.len())?;
        for v in &self.violations {
            writeln!(f, "  [{}] {}", v.code(), v)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn constraint() -> Violation {
        Violation::AreaOverflow {
            pe: PeId::new(1),
            required: Cells::new(500),
            capacity: Cells::new(400),
        }
    }

    fn consistency() -> Violation {
        Violation::AveragePowerMismatch {
            reported: Watts::from_milli(10.0),
            recomputed: Watts::from_milli(11.0),
        }
    }

    #[test]
    fn constraint_classification() {
        assert!(constraint().is_constraint());
        assert!(!consistency().is_constraint());
        let report = CheckReport::new(vec![constraint(), consistency()]);
        assert!(!report.is_clean());
        assert!(report.has_constraint_violations());
        assert!(report.has_consistency_violations());
        assert!(CheckReport::default().is_clean());
    }

    #[test]
    fn display_mentions_the_parts() {
        let text = constraint().to_string();
        assert!(text.contains("constraint (a)"), "{text}");
        assert!(text.contains("PE1"), "{text}");
        let report = CheckReport::new(vec![consistency()]);
        assert!(report.to_string().contains("average-power-mismatch"));
        assert!(CheckReport::default().to_string().contains("ok"));
    }

    #[test]
    fn json_rendering_is_structured() {
        let report = CheckReport::new(vec![constraint()]);
        let json = report.to_json();
        assert_eq!(json["clean"], serde_json::json!(false));
        assert_eq!(json["violation_count"], serde_json::json!(1));
        assert_eq!(json["violations"][0]["code"], serde_json::json!("area-overflow"));
        assert_eq!(json["violations"][0]["constraint"], serde_json::json!(true));
    }
}
