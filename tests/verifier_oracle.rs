//! The independent verifier as an oracle over the whole flow.
//!
//! `momsynth-check` shares no code with the constructive inner loop, so
//! agreement between the two is genuine evidence: every solution the
//! synthesiser returns — on the named benchmarks and on randomly
//! generated systems — must re-prove all paper constraints ((a) area,
//! (b) timing, (c) transitions) and the Eq. 1 average power from the
//! model alone. Deliberately corrupted solutions must be rejected.

use proptest::prelude::*;

use momsynth::check::{check_solution, SolutionView, Violation};
use momsynth::generators::automotive::automotive_ecu;
use momsynth::generators::smartphone::smartphone;
use momsynth::generators::suite::{generate, GeneratorParams};
use momsynth::model::System;
use momsynth::synthesis::{verify_solution, Solution, SynthesisConfig, Synthesizer};

/// Runs synthesis and holds the result against the oracle: a feasible
/// solution must be completely clean; an infeasible one may carry
/// design-constraint findings but never an internal inconsistency.
fn synthesise_and_verify(system: &System, config: SynthesisConfig) -> Solution {
    let result = Synthesizer::new(system, config).run().expect("schedulable system");
    let report = verify_solution(system, &result.best);
    if result.best.is_feasible() {
        assert!(report.is_clean(), "feasible solution failed verification:\n{report}");
    } else {
        assert!(
            !report.has_consistency_violations(),
            "solution is internally inconsistent:\n{report}"
        );
    }
    result.best
}

#[test]
fn smartphone_solutions_reverify_with_zero_violations() {
    let system = smartphone();
    let fixed = synthesise_and_verify(&system, SynthesisConfig::fast_preset(1));
    assert!(fixed.is_feasible());
    let scaled = synthesise_and_verify(&system, SynthesisConfig::fast_preset(2).with_dvs());
    assert!(scaled.is_feasible());
}

#[test]
fn automotive_solutions_reverify_with_zero_violations() {
    let system = automotive_ecu();
    synthesise_and_verify(&system, SynthesisConfig::fast_preset(1));
    synthesise_and_verify(&system, SynthesisConfig::fast_preset(2).with_dvs());
}

#[test]
fn corrupted_smartphone_solutions_are_rejected() {
    let system = smartphone();
    let config = SynthesisConfig::fast_preset(1).with_dvs();
    let good = Synthesizer::new(&system, config).run().expect("schedulable system").best;

    // Inflated Eq. 1 average: the checker recomputes p̄ from the
    // schedules and must notice the report no longer matches.
    let mut inflated = good.clone();
    inflated.power.average = inflated.power.average * 1.01;
    let report = verify_solution(&system, &inflated);
    assert!(
        report
            .violations()
            .iter()
            .any(|v| matches!(v, Violation::AveragePowerMismatch { .. })),
        "inflated p̄ not caught:\n{report}"
    );

    // A mutated voltage slot breaks the first-principles re-derivation
    // of the scaled execution time (and/or the power recompute).
    let mut mutated = good.clone();
    let slot = mutated
        .voltage_schedules
        .iter_mut()
        .flatten()
        .find_map(Option::as_mut)
        .expect("DVS run scales at least one task");
    let mut segments = slot.segments().to_vec();
    segments[0].voltage = segments[0].voltage * 0.8;
    *slot = serde_json::from_value(&serde_json::json!({ "segments": segments }))
        .expect("corrupted schedule still deserialises");
    let report = verify_solution(&system, &mutated);
    assert!(!report.is_clean(), "mutated voltage slot not caught");
}

#[test]
fn cache_hits_never_skip_final_reverification() {
    // The evaluation cache serves memoised fitness values to the GA, but
    // the returned solution is always re-built and re-polished from
    // scratch — a cache hit must never short-circuit the final
    // verification. Run with the cache and worker threads on, confirm
    // the cache actually fired, and hold the result to the oracle and to
    // the serial cache-less run bit for bit.
    let system = automotive_ecu();
    let mut config = SynthesisConfig::fast_preset(3);
    config.verify_each_generation = true;
    config.threads = 4;
    assert!(config.cache_capacity > 0, "the cache is on by default");
    let cached = Synthesizer::new(&system, config).run().expect("schedulable system");
    assert!(cached.counters.cache_hits > 0, "run never exercised the cache");

    let report = verify_solution(&system, &cached.best);
    if cached.best.is_feasible() {
        assert!(report.is_clean(), "cached solution failed verification:\n{report}");
    } else {
        assert!(
            !report.has_consistency_violations(),
            "cached solution is internally inconsistent:\n{report}"
        );
    }

    let mut plain = SynthesisConfig::fast_preset(3);
    plain.verify_each_generation = true;
    plain.threads = 1;
    plain.cache_capacity = 0;
    let serial = Synthesizer::new(&system, plain).run().expect("schedulable system");
    assert_eq!(cached.best, serial.best);
    assert_eq!(cached.history, serial.history);
    assert_eq!(cached.evaluations, serial.evaluations);
    assert_eq!(cached.stop_reason, serial.stop_reason);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// The full pipeline on randomised systems, with the verifier as the
    /// oracle: whatever the GA returns must re-prove every constraint.
    #[test]
    fn randomised_systems_synthesise_to_verified_solutions(
        seed in 1u64..300,
        modes in 1usize..3,
        dvs in any::<bool>(),
    ) {
        let mut params = GeneratorParams::new("oracle", seed);
        params.modes = modes;
        params.tasks_per_mode = (4, 8);
        let system = generate(&params);
        let mut config = SynthesisConfig::fast_preset(seed);
        config.ga.max_generations = 10;
        if dvs {
            config = config.with_dvs();
        }
        let best = synthesise_and_verify(&system, config);

        // The adapter and the raw entry point agree.
        let report = check_solution(&system, &SolutionView {
            mapping: &best.mapping,
            alloc: &best.alloc,
            schedules: &best.schedules,
            voltage_schedules: &best.voltage_schedules,
            power: &best.power,
        });
        prop_assert_eq!(report, verify_solution(&system, &best));
    }
}
