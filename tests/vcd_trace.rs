//! VCD export checks: a golden-file test pinning the exact trace of the
//! smart-phone example, and property tests asserting that the `busy` /
//! `act` signals reconstructed from the VCD text match the schedule's
//! activity intervals on every resource.

use std::collections::BTreeMap;

use proptest::prelude::*;

use momsynth::generators::smartphone::smartphone;
use momsynth::generators::suite::{generate, GeneratorParams};
use momsynth::model::ids::ModeId;
use momsynth::model::System;
use momsynth::sched::{
    schedule_mode, schedule_to_vcd, ActivityId, CoreAllocation, Schedule, SchedulerOptions,
    SystemMapping,
};

/// The deterministic "first candidate PE per task" mapping.
fn first_candidate_mapping(system: &System) -> SystemMapping {
    SystemMapping::from_fn(system, |id| system.candidate_pes(id)[0])
}

fn schedule_of(system: &System, mapping: &SystemMapping, mode: ModeId) -> Schedule {
    let alloc = CoreAllocation::minimal(system, mapping);
    schedule_mode(system, mode, mapping, &alloc, SchedulerOptions::default())
        .expect("generated architectures are fully connected")
}

fn to_nanos(t: momsynth::model::units::Seconds) -> u64 {
    (t.value() * 1e9).round() as u64
}

/// Closed-open `(start_ns, finish_ns)` intervals for one resource.
type Intervals = Vec<(u64, u64)>;

/// The busy intervals and observed activity codes per resource index,
/// reconstructed by replaying the VCD value changes.
struct ReplayedTrace {
    /// Closed-open busy intervals `(rise_ns, fall_ns)` per resource.
    busy: Vec<Intervals>,
    /// Every non-zero `act` code observed per resource.
    codes: Vec<Vec<u16>>,
}

/// Replays `vcd`, asserting on the way that `busy` is high exactly while
/// `act` is non-zero.
fn replay(vcd: &str) -> ReplayedTrace {
    // Header: the i-th declared 1-bit var is resource i's busy signal,
    // the i-th 8-bit var its act vector (declaration order follows
    // `Schedule::sequences`).
    let mut busy_syms: Vec<String> = Vec::new();
    let mut act_syms: Vec<String> = Vec::new();
    for line in vcd.lines() {
        let parts: Vec<&str> = line.split_whitespace().collect();
        if let ["$var", "wire", width, sym, _name, "$end"] = parts.as_slice() {
            match *width {
                "1" => busy_syms.push((*sym).to_string()),
                "8" => act_syms.push((*sym).to_string()),
                other => panic!("unexpected var width {other}"),
            }
        }
    }
    assert_eq!(busy_syms.len(), act_syms.len(), "busy/act vars must pair up");
    let busy_of: BTreeMap<&str, usize> =
        busy_syms.iter().enumerate().map(|(i, s)| (s.as_str(), i)).collect();
    let act_of: BTreeMap<&str, usize> =
        act_syms.iter().enumerate().map(|(i, s)| (s.as_str(), i)).collect();

    let n = busy_syms.len();
    let mut busy_now = vec![false; n];
    let mut act_now = vec![0u16; n];
    let mut rise = vec![None::<u64>; n];
    let mut trace = ReplayedTrace { busy: vec![Vec::new(); n], codes: vec![Vec::new(); n] };
    let mut time = 0u64;
    let mut in_header = true;
    for line in vcd.lines() {
        if line == "$enddefinitions $end" {
            in_header = false;
            continue;
        }
        if in_header || line.is_empty() || line.starts_with('$') {
            continue;
        }
        if let Some(t) = line.strip_prefix('#') {
            // Between timestamps the signals must be mutually consistent.
            for (i, (busy, act)) in busy_now.iter().zip(&act_now).enumerate() {
                assert_eq!(*busy, *act != 0, "resource {i}: busy and act disagree before #{t}");
            }
            let t: u64 = t.parse().expect("numeric timestamp");
            assert!(t >= time, "timestamps must be monotone");
            time = t;
        } else if let Some((bits, sym)) = line[1..].split_once(' ') {
            assert!(line.starts_with('b'), "vector change must start with b: {line}");
            let idx = act_of[sym];
            let code = u16::from_str_radix(bits, 2).expect("binary act value");
            act_now[idx] = code;
            if code != 0 {
                trace.codes[idx].push(code);
            }
        } else {
            let (value, sym) = line.split_at(1);
            let idx = busy_of[sym];
            let high = value == "1";
            if high && !busy_now[idx] {
                rise[idx] = Some(time);
            }
            if !high && busy_now[idx] {
                let start = rise[idx].take().expect("fall implies an earlier rise");
                trace.busy[idx].push((start, time));
            }
            busy_now[idx] = high;
        }
    }
    for (i, busy) in busy_now.iter().enumerate() {
        assert!(!busy, "resource {i} still busy when the trace ends");
    }
    trace
}

/// Merges touching/overlapping `(start, finish)` intervals and drops
/// empty ones — the busy wire cannot distinguish back-to-back activities.
fn merge(mut intervals: Intervals) -> Intervals {
    intervals.retain(|(s, f)| f > s);
    intervals.sort_unstable();
    let mut merged: Intervals = Vec::new();
    for (s, f) in intervals {
        match merged.last_mut() {
            Some((_, last_f)) if s <= *last_f => *last_f = (*last_f).max(f),
            _ => merged.push((s, f)),
        }
    }
    merged
}

/// Expected busy intervals and act codes per resource, from the schedule.
fn expected(schedule: &Schedule) -> (Vec<Intervals>, Vec<Vec<u16>>) {
    let mut busy = Vec::new();
    let mut codes = Vec::new();
    for (_, acts) in schedule.sequences() {
        let mut intervals = Vec::new();
        let mut resource_codes = Vec::new();
        for act in acts {
            let (start, finish, code) = match act {
                ActivityId::Task(t) => {
                    let e = schedule.task(*t);
                    (e.start, e.finish(), t.index() as u16 + 1)
                }
                ActivityId::Comm(c) => {
                    let e = schedule.comm(*c).expect("sequenced comm is remote");
                    (e.start, e.finish(), c.index() as u16 + 1)
                }
            };
            if finish > start {
                resource_codes.push(code);
            }
            intervals.push((to_nanos(start), to_nanos(finish)));
        }
        busy.push(merge(intervals));
        codes.push(resource_codes);
    }
    (busy, codes)
}

#[test]
fn smartphone_vcd_matches_golden_file() {
    let system = smartphone();
    let mapping = first_candidate_mapping(&system);
    let vcd = schedule_to_vcd(&system, &schedule_of(&system, &mapping, ModeId::new(0)));
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/smartphone_mode0.vcd");
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(path, &vcd).expect("write golden file");
        return;
    }
    let golden = std::fs::read_to_string(path)
        .expect("golden file exists; regenerate with BLESS=1 cargo test smartphone_vcd");
    assert_eq!(vcd, golden, "VCD output drifted; regenerate with BLESS=1 if intentional");
}

#[test]
fn smartphone_vcd_replays_consistently_on_every_mode() {
    let system = smartphone();
    let mapping = first_candidate_mapping(&system);
    for mode in system.omsm().mode_ids() {
        let schedule = schedule_of(&system, &mapping, mode);
        let trace = replay(&schedule_to_vcd(&system, &schedule));
        let (busy, _) = expected(&schedule);
        assert_eq!(trace.busy, busy, "mode {mode:?}");
    }
}

/// A small generated system plus a random (valid) mapping for it.
fn system_and_mapping() -> impl Strategy<Value = (System, SystemMapping)> {
    (1u64..500, 1usize..3, 4usize..12, 0usize..2, proptest::collection::vec(0usize..8, 64))
        .prop_map(|(seed, modes, tasks, extra_hw, picks)| {
            let mut params = GeneratorParams::new("vcd_prop", seed);
            params.modes = modes;
            params.tasks_per_mode = (tasks, tasks + 4);
            params.hardware_pes = 1 + extra_hw;
            params.type_pool = 8;
            let system = generate(&params);
            let mut i = 0;
            let mapping = SystemMapping::from_fn(&system, |id| {
                let candidates = system.candidate_pes(id);
                let pick = picks[i % picks.len()];
                i += 1;
                candidates[pick % candidates.len()]
            });
            (system, mapping)
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// `busy` rises and falls exactly around the schedule's merged
    /// activity intervals, and `busy == (act != 0)` throughout (asserted
    /// inside `replay`).
    #[test]
    fn busy_intervals_reconstruct_the_schedule((system, mapping) in system_and_mapping()) {
        for mode in system.omsm().mode_ids() {
            let schedule = schedule_of(&system, &mapping, mode);
            let trace = replay(&schedule_to_vcd(&system, &schedule));
            let (busy, _) = expected(&schedule);
            prop_assert_eq!(&trace.busy, &busy);
        }
    }

    /// Every non-idle `act` value carries `activity id + 1` for an
    /// activity scheduled on that resource, and every non-empty activity
    /// shows up.
    #[test]
    fn act_codes_identify_the_scheduled_activities((system, mapping) in system_and_mapping()) {
        for mode in system.omsm().mode_ids() {
            let schedule = schedule_of(&system, &mapping, mode);
            let trace = replay(&schedule_to_vcd(&system, &schedule));
            let (_, codes) = expected(&schedule);
            for (observed, expected_codes) in trace.codes.iter().zip(&codes) {
                for code in observed {
                    prop_assert!(
                        expected_codes.contains(code),
                        "act code {} not scheduled on this resource", code
                    );
                }
                for code in expected_codes {
                    prop_assert!(
                        observed.contains(code),
                        "scheduled activity {} never appears in the VCD", code
                    );
                }
            }
        }
    }
}
