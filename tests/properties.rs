//! Property-based tests over randomly generated systems and mappings:
//! scheduler invariants (precedence, resource exclusivity, determinism),
//! DVS invariants (never slower than deadlines allow, never more energy),
//! and power-model invariants (non-negativity, probability weighting).

use proptest::prelude::*;

use momsynth::dvs::{scale_mode, DvsOptions};
use momsynth::generators::suite::{generate, GeneratorParams};
use momsynth::model::System;
use momsynth::power::{mode_power, ModeImplementation};
use momsynth::sched::{
    schedule_mode, ActivityId, CoreAllocation, Schedule, SchedulerOptions, SystemMapping,
};
use momsynth::synthesis::{SynthesisConfig, Synthesizer};

/// A small generated system plus a random (valid) mapping for it.
fn system_and_mapping() -> impl Strategy<Value = (System, SystemMapping)> {
    (1u64..500, 1usize..3, 4usize..14, 0usize..2, proptest::collection::vec(0usize..8, 64))
        .prop_map(|(seed, modes, tasks, extra_hw, picks)| {
            let mut params = GeneratorParams::new("prop", seed);
            params.modes = modes;
            params.tasks_per_mode = (tasks, tasks + 4);
            params.hardware_pes = 1 + extra_hw;
            params.type_pool = 8;
            let system = generate(&params);
            let mut i = 0;
            let mapping = SystemMapping::from_fn(&system, |id| {
                let candidates = system.candidate_pes(id);
                let pick = picks[i % picks.len()];
                i += 1;
                candidates[pick % candidates.len()]
            });
            (system, mapping)
        })
}

fn schedules_of(system: &System, mapping: &SystemMapping) -> Vec<Schedule> {
    let alloc = CoreAllocation::minimal(system, mapping);
    system
        .omsm()
        .mode_ids()
        .map(|m| {
            schedule_mode(system, m, mapping, &alloc, SchedulerOptions::default())
                .expect("generated architectures are fully connected")
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn schedules_respect_precedence((system, mapping) in system_and_mapping()) {
        for schedule in schedules_of(&system, &mapping) {
            let graph = system.omsm().mode(schedule.mode()).graph();
            for (c, edge) in graph.comms() {
                let src_finish = schedule.task(edge.src()).finish();
                let dst_start = schedule.task(edge.dst()).start;
                match schedule.comm(c) {
                    Some(comm) => {
                        prop_assert!(comm.start.value() >= src_finish.value() - 1e-12);
                        prop_assert!(dst_start.value() >= comm.finish().value() - 1e-12);
                    }
                    None => {
                        prop_assert!(dst_start.value() >= src_finish.value() - 1e-12);
                    }
                }
            }
        }
    }

    #[test]
    fn resources_never_overlap((system, mapping) in system_and_mapping()) {
        for schedule in schedules_of(&system, &mapping) {
            for (_, acts) in schedule.sequences() {
                let mut last_finish = f64::NEG_INFINITY;
                for act in acts {
                    let (start, finish) = match act {
                        ActivityId::Task(t) => {
                            let e = schedule.task(*t);
                            (e.start.value(), e.finish().value())
                        }
                        ActivityId::Comm(c) => {
                            let e = schedule.comm(*c).expect("sequenced comm is remote");
                            (e.start.value(), e.finish().value())
                        }
                    };
                    prop_assert!(start >= last_finish - 1e-12);
                    last_finish = finish;
                }
            }
        }
    }

    #[test]
    fn scheduling_is_deterministic((system, mapping) in system_and_mapping()) {
        let a = schedules_of(&system, &mapping);
        let b = schedules_of(&system, &mapping);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn dvs_preserves_feasibility_and_saves_energy((system, mapping) in system_and_mapping()) {
        for schedule in schedules_of(&system, &mapping) {
            let graph = system.omsm().mode(schedule.mode()).graph();
            let feasible_before = schedule.is_timing_feasible(graph);
            let scaled = scale_mode(&system, &schedule, &DvsOptions::default());
            // Energy factors are in (0, 1].
            for (i, &f) in scaled.energy_factors().iter().enumerate() {
                prop_assert!(f > 0.0 && f <= 1.0 + 1e-12, "task {i}: factor {f}");
            }
            // Scaling never breaks a feasible schedule.
            if feasible_before {
                prop_assert!(scaled.schedule().is_timing_feasible(graph));
            }
            // Execution times never shrink below nominal.
            for t in graph.task_ids() {
                prop_assert!(
                    scaled.schedule().task(t).exec_time.value()
                        >= schedule.task(t).exec_time.value() - 1e-12
                );
            }
        }
    }

    #[test]
    fn voltage_schedules_are_consistent((system, mapping) in system_and_mapping()) {
        for schedule in schedules_of(&system, &mapping) {
            let graph = system.omsm().mode(schedule.mode()).graph();
            let scaled = scale_mode(&system, &schedule, &DvsOptions::default());
            for t in graph.task_ids() {
                if let Some(vs) = scaled.task_voltage(t) {
                    // Segment durations add up to the new execution time.
                    let total = vs.total_time().value();
                    let exec = scaled.schedule().task(t).exec_time.value();
                    prop_assert!((total - exec).abs() < 1e-9);
                    // Cycle fractions cover the task exactly once.
                    let cycles: f64 =
                        vs.segments().iter().map(|s| s.cycle_fraction).sum();
                    prop_assert!((cycles - 1.0).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn mode_power_is_non_negative_and_additive((system, mapping) in system_and_mapping()) {
        let schedules = schedules_of(&system, &mapping);
        for schedule in &schedules {
            let mp = mode_power(&system, ModeImplementation::nominal(schedule));
            prop_assert!(mp.dynamic.value() >= 0.0);
            prop_assert!(mp.static_power.value() >= 0.0);
            prop_assert!((mp.total().value()
                - (mp.dynamic.value() + mp.static_power.value()))
            .abs() < 1e-15);
            // Active components are a subset of the architecture.
            prop_assert!(mp.active_pes.len() <= system.arch().pe_count());
            prop_assert!(mp.active_cls.len() <= system.arch().cl_count());
        }
    }

    #[test]
    fn probability_weighting_is_convex((system, mapping) in system_and_mapping()) {
        let schedules = schedules_of(&system, &mapping);
        let imps: Vec<ModeImplementation> =
            schedules.iter().map(ModeImplementation::nominal).collect();
        let report = momsynth::power::power_report(&system, &imps);
        let min = report.modes.iter().map(|m| m.total().value()).fold(f64::INFINITY, f64::min);
        let max = report
            .modes
            .iter()
            .map(|m| m.total().value())
            .fold(f64::NEG_INFINITY, f64::max);
        // The weighted average lies between the best and worst mode.
        prop_assert!(report.average.value() >= min - 1e-12);
        prop_assert!(report.average.value() <= max + 1e-12);
    }

    #[test]
    fn mapping_round_trips_through_genome(seed in 1u64..200) {
        let mut params = GeneratorParams::new("roundtrip", seed);
        params.modes = 2;
        params.tasks_per_mode = (5, 9);
        let system = generate(&params);
        let layout = momsynth::synthesis::GenomeLayout::new(&system);
        let genes: Vec<u16> = (0..layout.len())
            .map(|l| (seed as usize + l) as u16 % layout.candidates(l).len() as u16)
            .collect();
        let mapping = layout.decode(&genes);
        prop_assert!(mapping.validate(&system).is_ok());
        prop_assert_eq!(layout.encode(&mapping), genes);
    }

    #[test]
    fn scheduler_output_passes_the_independent_validator((system, mapping) in system_and_mapping()) {
        // `validate_schedule` re-derives every structural guarantee from
        // scratch; the list scheduler must always satisfy it.
        let alloc = CoreAllocation::minimal(&system, &mapping);
        for schedule in schedules_of(&system, &mapping) {
            let violations =
                momsynth::sched::validate_schedule(&system, &mapping, &alloc, &schedule);
            prop_assert!(violations.is_empty(), "{violations:?}");
        }
    }

    #[test]
    fn scaled_schedules_also_pass_the_validator((system, mapping) in system_and_mapping()) {
        let alloc = CoreAllocation::minimal(&system, &mapping);
        for schedule in schedules_of(&system, &mapping) {
            let scaled = scale_mode(&system, &schedule, &DvsOptions::default());
            let violations = momsynth::sched::validate_schedule(
                &system,
                &mapping,
                &alloc,
                scaled.schedule(),
            );
            prop_assert!(violations.is_empty(), "{violations:?}");
        }
    }

    #[test]
    fn first_task_of_each_resource_starts_at_data_readiness((system, mapping) in system_and_mapping()) {
        // Sanity: no schedule starts in the past.
        for schedule in schedules_of(&system, &mapping) {
            for entry in schedule.tasks() {
                prop_assert!(entry.start.value() >= 0.0);
            }
            for comm in schedule.remote_comms() {
                prop_assert!(comm.start.value() >= 0.0);
            }
        }
    }
}

/// A short synthesis run on a small generated system, for the
/// trajectory-invariance properties below.
fn short_synthesis_config(seed: u64) -> (System, SynthesisConfig) {
    let mut params = GeneratorParams::new("invariance", seed);
    params.modes = 2;
    params.tasks_per_mode = (4, 8);
    let system = generate(&params);
    let mut config = SynthesisConfig::fast_preset(seed);
    config.ga.max_generations = 8;
    (system, config)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

    /// Batches are priced out of order across workers, but the GA
    /// trajectory must not depend on the thread count: scatter happens
    /// serially in batch order, and the fitness of a genome is a pure
    /// function of the genome.
    #[test]
    fn synthesis_is_thread_count_invariant(seed in 1u64..200, threads in 2usize..6) {
        let (system, config) = short_synthesis_config(seed);
        let mut parallel_cfg = config.clone();
        parallel_cfg.threads = threads;
        let serial = Synthesizer::new(&system, config).run().expect("schedulable system");
        let parallel =
            Synthesizer::new(&system, parallel_cfg).run().expect("schedulable system");
        prop_assert_eq!(&serial.best, &parallel.best);
        prop_assert_eq!(&serial.history, &parallel.history);
        prop_assert_eq!(serial.evaluations, parallel.evaluations);
        prop_assert_eq!(serial.stop_reason, parallel.stop_reason);
        prop_assert_eq!(&serial.counters, &parallel.counters);
    }

    /// Memoisation is sound because fitness is pure: serving a genome's
    /// cost from the cache must leave the whole run bit-identical to
    /// re-deriving it (counters differ by design — hits are counted).
    #[test]
    fn synthesis_is_cache_invariant(seed in 1u64..200) {
        let (system, cached_cfg) = short_synthesis_config(seed);
        prop_assert!(cached_cfg.cache_capacity > 0);
        let mut plain_cfg = cached_cfg.clone();
        plain_cfg.cache_capacity = 0;
        let cached = Synthesizer::new(&system, cached_cfg).run().expect("schedulable system");
        let plain = Synthesizer::new(&system, plain_cfg).run().expect("schedulable system");
        prop_assert_eq!(&cached.best, &plain.best);
        prop_assert_eq!(&cached.history, &plain.history);
        prop_assert_eq!(cached.evaluations, plain.evaluations);
        prop_assert_eq!(cached.stop_reason, plain.stop_reason);
        prop_assert_eq!(plain.counters.cache_hits, 0);
    }
}
