//! End-to-end checks on the smart-phone real-life benchmark (Table 3
//! shape): feasibility, the dominance of the RLC mode in the average, and
//! the DVS < fixed-voltage ordering.

use momsynth::generators::smartphone::smartphone;
use momsynth::model::ids::ModeId;
use momsynth::synthesis::{SynthesisConfig, Synthesizer};

#[test]
fn smartphone_synthesis_is_feasible_and_shuts_components_down() {
    let phone = smartphone();
    let result = Synthesizer::new(&phone, SynthesisConfig::fast_preset(2)).run().expect("schedulable system");
    assert!(result.best.is_feasible(), "lateness {:?}", result.best.total_lateness);
    // In at least one mode some component must be powered down — running
    // all three components all the time cannot be optimal given the 74%
    // RLC-only residency.
    let any_shutdown = result
        .best
        .power
        .modes
        .iter()
        .any(|m| m.active_pes.len() < phone.arch().pe_count());
    assert!(any_shutdown, "no component ever shuts down");
}

#[test]
fn rlc_mode_dominates_the_weighted_average() {
    let phone = smartphone();
    let result = Synthesizer::new(&phone, SynthesisConfig::fast_preset(3)).run().expect("schedulable system");
    let rlc = &result.best.power.modes[ModeId::new(1).index()];
    // Ψ = 0.74: the weighted RLC contribution must be the single largest.
    let rlc_contrib = rlc.total().value() * 0.74;
    for (mode, m) in phone.omsm().modes() {
        if mode.index() == 1 {
            continue;
        }
        let contrib =
            result.best.power.modes[mode.index()].total().value() * m.probability();
        assert!(
            contrib <= rlc_contrib * 1.5,
            "mode {} contributes {contrib} vs RLC {rlc_contrib}",
            m.name()
        );
    }
}

#[test]
fn table3_shape_dvs_and_probabilities_compose() {
    // The GA is stochastic; compare mean-of-3-seeds like the tables do.
    let phone = smartphone();
    let run = |aware: bool, dvs: bool| -> f64 {
        (5..8)
            .map(|seed| {
                let mut cfg = SynthesisConfig::fast_preset(seed);
                cfg.probability_aware = aware;
                if dvs {
                    cfg = cfg.with_dvs();
                }
                Synthesizer::new(&phone, cfg).run().expect("schedulable system").best.power.average.as_milli()
            })
            .sum::<f64>()
            / 3.0
    };
    let fixed_neglect = run(false, false);
    let fixed_aware = run(true, false);
    let dvs_aware = run(true, true);
    // Table 3 ordering: probabilities help, DVS helps further, the
    // combination is the global minimum.
    assert!(fixed_aware <= fixed_neglect * 1.05, "{fixed_aware} vs {fixed_neglect}");
    assert!(dvs_aware < fixed_aware, "{dvs_aware} vs {fixed_aware}");
    assert!(dvs_aware < fixed_neglect, "{dvs_aware} vs {fixed_neglect}");
}
