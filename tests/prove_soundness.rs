//! Soundness oracle for `momsynth prove`: pruning never changes the
//! optimum.
//!
//! The certificate's claim rests on two reductions — dominance-pruned
//! genome domains and admissible bound-based subtree cuts. Each must
//! preserve at least one optimal assignment. This suite compares the
//! full machinery (dominance pruning on, bounds on) against a plain
//! exhaustive enumeration of the *unreduced* space (both off) on
//! randomised small systems: the certified optimal fitness has to match
//! exactly, every time, or one of the reductions cut the optimum.

use proptest::prelude::*;

use momsynth::analyze::analyze_system;
use momsynth::generators::suite::{generate, GeneratorParams};
use momsynth::synthesis::{prove, CertificateStatus, ProveOptions, SynthesisConfig};

/// Independently computed optima may differ only by float noise
/// (identical evaluator, different exploration order).
const EPS: f64 = 1e-9;

/// A generated system small enough to enumerate exhaustively: at most
/// two modes of 2–4 tasks over 3 PEs, DVS-free so dominance can engage.
fn small_system(seed: u64, modes: usize) -> momsynth::model::System {
    let mut params = GeneratorParams::new("prove_oracle", seed);
    params.modes = modes;
    params.tasks_per_mode = (2, 4);
    params.type_pool = 4;
    params.software_pes = 2;
    params.hardware_pes = 1;
    params.cls = 1;
    params.dvs_software_pes = 0;
    params.dvs_hardware_pes = 0;
    params.slack_factor = 2.0;
    generate(&params)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Branch-and-bound with dominance pruning and admissible bounds
    /// finds exactly the optimum that exhaustive enumeration of the
    /// full space finds.
    #[test]
    fn pruned_search_matches_exhaustive_enumeration(
        seed in 1u64..500,
        modes in 1usize..3,
    ) {
        let system = small_system(seed, modes);
        let analysis = analyze_system(&system);
        // Vendored proptest has no prop_assume; skip infeasible draws.
        if analysis.has_errors() {
            return;
        }

        // Reference: plain enumeration — no domain pruning, no bounds.
        let mut exhaustive_config = SynthesisConfig::fast_preset(seed);
        exhaustive_config.prune_domains = false;
        let exhaustive = prove(
            &system,
            &exhaustive_config,
            &ProveOptions { max_evals: u64::MAX, use_bounds: false, ..ProveOptions::default() },
        )
        .expect("analysis was clean");
        prop_assert_eq!(exhaustive.status, CertificateStatus::Optimal);
        prop_assert_eq!(
            exhaustive.explored as f64, exhaustive.search_space,
            "an unbounded unseeded search must price every leaf"
        );

        // Full machinery: dominance-pruned domains, bound-cut subtrees.
        let config = SynthesisConfig::fast_preset(seed);
        let cert = prove(&system, &config, &ProveOptions::default())
            .expect("analysis was clean");
        prop_assert_eq!(cert.status, CertificateStatus::Optimal);
        prop_assert!(cert.explored <= exhaustive.explored);

        match (cert.best_fitness, exhaustive.best_fitness) {
            (Some(pruned), Some(full)) => {
                prop_assert!(
                    (pruned - full).abs() <= EPS * full.abs().max(1.0),
                    "pruning changed the optimum: {} (pruned) vs {} (exhaustive)",
                    pruned,
                    full
                );
                prop_assert!(cert.lower_bound <= full + EPS);
            }
            // No schedulable assignment exists at all; both searches
            // must agree on that too.
            (None, None) => {}
            (pruned, full) => prop_assert!(
                false,
                "searches disagree on schedulability: {pruned:?} (pruned) vs {full:?} (exhaustive)"
            ),
        }
    }

    /// Seeding the search with a known achievable fitness can only
    /// accelerate the proof, never weaken it: the certified bound still
    /// equals the exhaustive optimum.
    #[test]
    fn seeded_proofs_certify_the_same_optimum(seed in 1u64..500) {
        let system = small_system(seed, 1);
        let analysis = analyze_system(&system);
        // Vendored proptest has no prop_assume; skip infeasible draws.
        if analysis.has_errors() {
            return;
        }

        let config = SynthesisConfig::fast_preset(seed);
        let unseeded = prove(&system, &config, &ProveOptions::default()).unwrap();
        let Some(optimum) = unseeded.best_fitness else {
            return; // nothing schedulable to seed with
        };

        // Seed with the optimum itself — the strongest legal incumbent.
        let seeded = prove(
            &system,
            &config,
            &ProveOptions { incumbent: Some(optimum), ..ProveOptions::default() },
        )
        .unwrap();
        prop_assert_eq!(seeded.status, CertificateStatus::Optimal);
        prop_assert_eq!(seeded.best_fitness, Some(optimum));
        prop_assert!(seeded.explored <= unseeded.explored);
        prop_assert!(
            (seeded.lower_bound - unseeded.lower_bound).abs()
                <= EPS * unseeded.lower_bound.abs().max(1.0)
        );
    }
}
