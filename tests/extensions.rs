//! Integration tests of the beyond-the-paper extensions: usage-profile
//! derivation, probability replacement, component breakdown, battery
//! life, lint and DOT export — exercised together on real systems.

use momsynth::generators::smartphone::smartphone;
use momsynth::generators::suite::mul;
use momsynth::model::units::Volts;
use momsynth::model::usage::UsageModel;
use momsynth::model::{dot, lint, System};
use momsynth::power::{
    battery_energy, battery_lifetime, energy_breakdown, power_report, ModeImplementation,
};
use momsynth::sched::{schedule_mode, CoreAllocation, SchedulerOptions, SystemMapping};
use momsynth::synthesis::{SynthesisConfig, Synthesizer};

#[test]
fn usage_model_reweights_the_smartphone() {
    let phone = smartphone();
    // A music lover: long MP3 sojourns.
    let mut usage = UsageModel::new(8);
    let sojourns = [60.0, 400.0, 10.0, 5.0, 5.0, 1800.0, 60.0, 5.0];
    for (i, &s) in sojourns.iter().enumerate() {
        usage.set_sojourn(i, momsynth::model::units::Seconds::new(s));
    }
    for m in [0, 2, 3, 4, 5, 6, 7] {
        usage.set_transition_weight(1, m, 1.0);
        usage.set_transition_weight(m, 1, 1.0);
    }
    let psi = usage.mode_probabilities().expect("ergodic profile");
    assert!((psi.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    // MP3 playback dominates everything except the RLC hub.
    assert!(psi[5] > psi[0] && psi[5] > psi[3] && psi[5] > psi[7]);

    let omsm = phone.omsm().with_probabilities(&psi).expect("valid probabilities");
    let music_phone = System::new(
        "smartphone_music",
        omsm,
        phone.arch().clone(),
        phone.tech().clone(),
    )
    .expect("valid system");
    assert_eq!(music_phone.omsm().mode_count(), 8);
    // Synthesis on the reweighted system works end to end.
    let result = Synthesizer::new(&music_phone, SynthesisConfig::fast_preset(1)).run().expect("schedulable system");
    assert!(result.best.power.average.value() > 0.0);
}

#[test]
fn breakdown_attributes_all_power_and_estimates_battery_life() {
    let system = mul(9);
    let mapping = SystemMapping::from_fn(&system, |id| system.candidate_pes(id)[0]);
    let alloc = CoreAllocation::minimal(&system, &mapping);
    let schedules: Vec<_> = system
        .omsm()
        .mode_ids()
        .map(|m| schedule_mode(&system, m, &mapping, &alloc, SchedulerOptions::default()).unwrap())
        .collect();
    let imps: Vec<ModeImplementation> =
        schedules.iter().map(ModeImplementation::nominal).collect();
    let report = power_report(&system, &imps);
    let breakdown = energy_breakdown(&system, &imps);
    assert!((breakdown.total().value() - report.average.value()).abs() < 1e-12);

    // A 1000 mAh / 3.7 V battery at tens of mW lasts days, not minutes.
    let life = battery_lifetime(&report, battery_energy(1000.0, Volts::new(3.7)));
    assert!(life.value() > 3600.0, "battery life {life}");
    assert!(life.is_finite());
}

#[test]
fn smartphone_lints_clean_and_exports_dot() {
    let phone = smartphone();
    let warnings = lint::lint_system(&phone);
    // Display/camera/UI types deliberately stay software-only.
    for w in &warnings {
        assert!(
            matches!(w, lint::LintWarning::SoftwareOnlyType { .. }),
            "unexpected lint: {w}"
        );
    }

    let omsm_dot = dot::omsm_to_dot(phone.omsm());
    assert!(omsm_dot.contains("rlc"));
    assert!(omsm_dot.contains("Ψ=0.74"));
    let arch_dot = dot::architecture_to_dot(phone.arch());
    assert!(arch_dot.contains("GPP"));
    assert!(arch_dot.contains("DVS"));
    let graph_dot =
        dot::task_graph_to_dot(phone.omsm().mode(momsynth::model::ids::ModeId::new(0)).graph());
    assert!(graph_dot.contains("gsm_lpc"));
}

#[test]
fn solution_describe_is_complete_on_the_smartphone() {
    let phone = smartphone();
    let result = Synthesizer::new(&phone, SynthesisConfig::fast_preset(4)).run().expect("schedulable system");
    let text = result.best.describe(&phone);
    for (_, m) in phone.omsm().modes() {
        assert!(text.contains(m.name()), "mode {} missing from report", m.name());
    }
    assert!(text.contains("mW average"));
}
