//! Dominance-driven genome-domain pruning, pinned on a checked-in spec.
//!
//! `specs/redundant_gpp.json` is a deliberately redundant system: its
//! spare GPP is strictly worse than the main GPP (more energy on every
//! task type, more static power) on a DVS-free single-bus architecture
//! with ample slack, so the analyzer's shadowing rule (DESIGN.md §16)
//! can prove the spare away from every genome locus. These tests pin the
//! regression where `pruned_domain_ratio` silently reported `0.0` on
//! every input: at least one checked-in spec must keep a provably
//! positive reduction through analysis, synthesis and certification.

use momsynth::analyze::analyze_system;
use momsynth::model::units::{Cells, Seconds, Watts};
use momsynth::model::{
    ArchitectureBuilder, Cl, Implementation, OmsmBuilder, Pe, PeKind, System, TaskGraphBuilder,
    TechLibraryBuilder,
};
use momsynth::synthesis::{prove, CertificateStatus, ProveOptions, SynthesisConfig, Synthesizer};

/// Where the checked-in fixture lives.
const SPEC_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/specs/redundant_gpp.json");

/// Builds the fixture system. The spare GPP is capable of everything the
/// main GPP is, but strictly worse along every axis the dominance rule
/// compares: per-type energy and static power. The architecture is
/// DVS-free with a single bus, and both modes have an order of magnitude
/// of slack, so every shadowing precondition holds.
fn redundant_gpp_system() -> System {
    let mut tech = TechLibraryBuilder::new();
    let control = tech.add_type("control");
    let dsp = tech.add_type("dsp");
    let logging = tech.add_type("logging");

    let mut arch = ArchitectureBuilder::new();
    let main_gpp =
        arch.add_pe(Pe::software("main_gpp", PeKind::Gpp, Watts::from_milli(1.0)));
    let spare_gpp =
        arch.add_pe(Pe::software("spare_gpp", PeKind::Gpp, Watts::from_milli(1.5)));
    let dsp_asic = arch.add_pe(Pe::hardware(
        "dsp_asic",
        PeKind::Asic,
        Cells::new(1000),
        Watts::from_milli(0.2),
    ));
    arch.add_cl(Cl::bus(
        "bus",
        vec![main_gpp, spare_gpp, dsp_asic],
        Seconds::from_micros(1.0),
        Watts::from_milli(1.0),
        Watts::from_milli(0.05),
    ))
    .unwrap();

    // main_gpp beats spare_gpp on energy for every type (20 < 26 mW at
    // equal time, 150 < 180 µJ, 10 < 12 µJ), so the witness search
    // succeeds for every task the spare could host.
    tech.set_impl(
        control,
        main_gpp,
        Implementation::software(Seconds::from_millis(2.0), Watts::from_milli(20.0)),
    );
    tech.set_impl(
        control,
        spare_gpp,
        Implementation::software(Seconds::from_millis(2.0), Watts::from_milli(26.0)),
    );
    tech.set_impl(
        dsp,
        main_gpp,
        Implementation::software(Seconds::from_millis(5.0), Watts::from_milli(30.0)),
    );
    tech.set_impl(
        dsp,
        spare_gpp,
        Implementation::software(Seconds::from_millis(4.0), Watts::from_milli(45.0)),
    );
    tech.set_impl(
        dsp,
        dsp_asic,
        Implementation::hardware(
            Seconds::from_millis(0.8),
            Watts::from_milli(2.0),
            Cells::new(300),
        ),
    );
    tech.set_impl(
        logging,
        main_gpp,
        Implementation::software(Seconds::from_millis(1.0), Watts::from_milli(10.0)),
    );
    tech.set_impl(
        logging,
        spare_gpp,
        Implementation::software(Seconds::from_millis(1.0), Watts::from_milli(12.0)),
    );

    let mut active = TaskGraphBuilder::new("active", Seconds::from_millis(100.0));
    let t0 = active.add_task("sense", control);
    let t1 = active.add_task("transform", dsp);
    let t2 = active.add_task("log", logging);
    active.add_comm(t0, t1, 5.0).unwrap();
    active.add_comm(t1, t2, 5.0).unwrap();

    let mut standby = TaskGraphBuilder::new("standby", Seconds::from_millis(200.0));
    let s0 = standby.add_task("watchdog", control);
    let s1 = standby.add_task("heartbeat", logging);
    standby.add_comm(s0, s1, 2.0).unwrap();

    let mut omsm = OmsmBuilder::new();
    let m_active = omsm.add_mode("active", 0.75, active.build().unwrap());
    let m_standby = omsm.add_mode("standby", 0.25, standby.build().unwrap());
    omsm.add_transition(m_active, m_standby, Seconds::from_millis(50.0)).unwrap();
    omsm.add_transition(m_standby, m_active, Seconds::from_millis(50.0)).unwrap();

    System::new(
        "redundant_gpp",
        omsm.build().unwrap(),
        arch.build().unwrap(),
        tech.build(),
    )
    .unwrap()
}

/// The checked-in JSON is exactly the serialisation of the builder
/// system above. Regenerate it with
/// `REGEN_FIXTURES=1 cargo test --test domain_pruning`.
#[test]
fn checked_in_spec_matches_the_builder() {
    let built = serde_json::to_string_pretty(&redundant_gpp_system()).unwrap();
    if std::env::var_os("REGEN_FIXTURES").is_some() {
        std::fs::create_dir_all(concat!(env!("CARGO_MANIFEST_DIR"), "/specs")).unwrap();
        std::fs::write(SPEC_PATH, &built).unwrap();
    }
    let text = std::fs::read_to_string(SPEC_PATH)
        .expect("specs/redundant_gpp.json is checked in (REGEN_FIXTURES=1 regenerates it)");
    assert_eq!(text, built, "fixture drifted from its builder; regenerate it");
}

/// The analyzer proves the spare GPP away: a strictly positive share of
/// all (task, candidate-PE) pairs is removed, attributed to dominance.
#[test]
fn dominance_prunes_the_spare_gpp() {
    let text = std::fs::read_to_string(SPEC_PATH).unwrap();
    let system: System = serde_json::from_str(&text).unwrap();
    let analysis = analyze_system(&system);
    assert!(!analysis.has_errors(), "fixture must be feasible:\n{analysis}");

    let reduction = analysis.domain_reduction();
    // The spare is a candidate for all 3 active and 2 standby tasks.
    assert_eq!(reduction.pruned_by_dominance, 5, "spare_gpp leaves every locus");
    assert_eq!(reduction.total_candidates, 11);
    assert!(analysis.pruned_domain_ratio() > 0.0);
    // No locus may keep the spare in its domain.
    let spare = system.arch().pe_ids().nth(1).unwrap();
    for domain in analysis.capable_pes() {
        assert!(!domain.contains(&spare), "spare_gpp survived in {domain:?}");
    }
}

/// End-to-end regression pin: a synthesis run over the fixture reports a
/// strictly positive `pruned_domain_ratio` (it was silently `0.0` for
/// every input before dominance analysis landed), and certification
/// proves its best optimal inside the reduced space.
#[test]
fn synthesis_and_certificate_report_the_reduction() {
    let text = std::fs::read_to_string(SPEC_PATH).unwrap();
    let system: System = serde_json::from_str(&text).unwrap();

    let config = SynthesisConfig::fast_preset(7);
    let result = Synthesizer::new(&system, config.clone()).run().expect("schedulable");
    assert!(
        result.pruned_domain_ratio > 0.0,
        "regression: pruned_domain_ratio must be positive on redundant_gpp"
    );
    assert!(result.best.is_feasible());

    let options =
        ProveOptions { incumbent: Some(result.best.fitness), ..ProveOptions::default() };
    let cert = prove(&system, &config, &options).expect("feasible");
    assert_eq!(cert.status, CertificateStatus::Optimal, "12-leaf space must be exhausted");
    assert!(cert.domain_reduction.pruned_by_dominance > 0);
    assert!(
        result.best.fitness >= cert.lower_bound - 1e-9,
        "GA best {} under certified bound {}",
        result.best.fitness,
        cert.lower_bound
    );
    // Dominance collapses every software-only locus to the main GPP:
    // 2·3·2 · 2·2 = 48 assignments without it, 1·2·1 · 1·1 = 2 with.
    assert_eq!(cert.search_space, 2.0);
}
