//! End-to-end reproduction checks on the paper's closed-form example:
//! Fig. 2 energies are exact, and the GA rediscovers the probability-aware
//! optimum.

use momsynth::generators::examples::{
    example1_mapping_aware, example1_mapping_neglecting, example1_system, PE0,
};
use momsynth::model::ids::ModeId;
use momsynth::power::{power_report, ModeImplementation};
use momsynth::sched::{schedule_mode, CoreAllocation, SchedulerOptions, SystemMapping};
use momsynth::synthesis::{SynthesisConfig, Synthesizer};

fn evaluate_mw(system: &momsynth::model::System, mapping: &SystemMapping) -> f64 {
    let alloc = CoreAllocation::minimal(system, mapping);
    let schedules: Vec<_> = system
        .omsm()
        .mode_ids()
        .map(|m| schedule_mode(system, m, mapping, &alloc, SchedulerOptions::default()).unwrap())
        .collect();
    let imps: Vec<ModeImplementation> = schedules.iter().map(ModeImplementation::nominal).collect();
    power_report(system, &imps).average.as_milli()
}

#[test]
fn fig2_energies_match_paper_to_the_microwatt() {
    let system = example1_system();
    let neglecting = evaluate_mw(&system, &example1_mapping_neglecting());
    let aware = evaluate_mw(&system, &example1_mapping_aware());
    assert!((neglecting - 26.7158).abs() < 1e-9, "Fig. 2b: {neglecting}");
    assert!((aware - 15.7423).abs() < 1e-9, "Fig. 2c: {aware}");
    assert!(((1.0 - aware / neglecting) * 100.0 - 41.0).abs() < 0.2);
}

#[test]
fn ga_rediscovers_the_fig2c_optimum() {
    // The GA is stochastic (the paper averages 40 runs); take the best of
    // a few deterministic seeds, as a user of the library would.
    let system = example1_system();
    let best = (1..=3)
        .map(|seed| Synthesizer::new(&system, SynthesisConfig::fast_preset(seed)).run().expect("schedulable system"))
        .min_by(|a, b| a.best.fitness.total_cmp(&b.best.fitness))
        .expect("at least one run");
    assert!(best.best.is_feasible());
    assert!(
        (best.best.power.average.as_milli() - 15.7423).abs() < 1e-9,
        "GA found {} mWs",
        best.best.power.average.as_milli()
    );
    // And the optimum keeps mode O1 pure software.
    assert_eq!(best.best.mapping.active_pes(ModeId::new(0)), vec![PE0]);
}

#[test]
fn probability_neglecting_ga_finds_the_fig2b_class_solution() {
    let system = example1_system();
    let cfg = SynthesisConfig::fast_preset(0).probability_neglecting();
    let result = Synthesizer::new(&system, cfg).run().expect("schedulable system");
    // Under uniform weights the best *reported* power (true Ψ) is worse
    // than the probability-aware optimum.
    assert!(result.best.power.average.as_milli() > 15.7423 - 1e-9);
}

#[test]
fn solution_exposes_full_implementation_artifacts() {
    let system = example1_system();
    let result = Synthesizer::new(&system, SynthesisConfig::fast_preset(1)).run().expect("schedulable system");
    let best = &result.best;
    assert_eq!(best.schedules.len(), 2);
    assert_eq!(best.voltage_schedules.len(), 2);
    assert_eq!(best.transitions.len(), 2);
    assert!(best.transitions.iter().all(|t| t.is_feasible()));
    assert!(best.area_overruns.is_empty());
    assert_eq!(best.power.modes.len(), 2);
    // History is monotone non-increasing and matches generations.
    assert_eq!(result.history.len(), result.generations + 1);
    for pair in result.history.windows(2) {
        assert!(pair[1] <= pair[0]);
    }
}
