//! Shape checks from DESIGN.md §4: the qualitative results of Tables 1–3
//! must reproduce — probability-aware synthesis does not lose to the
//! neglecting baseline, and DVS strictly lowers power. Run on a subset of
//! the suite with reduced GA budgets to stay fast.

use momsynth::generators::suite::mul;
use momsynth::synthesis::{SynthesisConfig, Synthesizer};

fn mean_power(system: &momsynth::model::System, aware: bool, dvs: bool, runs: u64) -> f64 {
    (0..runs)
        .map(|seed| {
            let mut cfg = SynthesisConfig::fast_preset(seed);
            cfg.probability_aware = aware;
            if dvs {
                cfg = cfg.with_dvs();
            }
            Synthesizer::new(system, cfg).run().expect("schedulable system").best.power.average.as_milli()
        })
        .sum::<f64>()
        / runs as f64
}

#[test]
fn probability_aware_flow_wins_on_suite_benchmarks() {
    // Table 1 shape on the two smallest benchmarks.
    for n in [2, 9] {
        let system = mul(n);
        let aware = mean_power(&system, true, false, 3);
        let neglecting = mean_power(&system, false, false, 3);
        assert!(
            aware <= neglecting * 1.02,
            "mul{n}: aware {aware} vs neglecting {neglecting}"
        );
    }
}

#[test]
fn dvs_strictly_reduces_power() {
    // Table 2 vs Table 1 shape: with DVS-enabled PEs in the architecture,
    // scaling must lower the average power of the same flow.
    for n in [2, 9] {
        let system = mul(n);
        let fixed = mean_power(&system, true, false, 2);
        let dvs = mean_power(&system, true, true, 2);
        assert!(dvs < fixed, "mul{n}: DVS {dvs} vs fixed {fixed}");
    }
}

#[test]
fn synthesised_suite_solutions_are_feasible() {
    for n in [2, 9, 11] {
        let system = mul(n);
        let result = Synthesizer::new(&system, SynthesisConfig::fast_preset(42)).run().expect("schedulable system");
        assert!(
            result.best.is_feasible(),
            "mul{n}: lateness {:?}, area overruns {:?}",
            result.best.total_lateness,
            result.best.area_overruns
        );
    }
}
