//! The static analyzer's bounds held against real synthesis results.
//!
//! `momsynth-analyze` promises *provable* bounds: no feasible
//! implementation can beat the critical-path, area or Eq. 1 power floors
//! it derives from the specification alone. This suite treats the full
//! synthesis flow as the adversary — on the named benchmarks and on
//! randomly generated systems, every verifier-accepted solution must
//! satisfy every analyzer bound, and the analyzer may never reject a
//! system the synthesiser goes on to solve. A second group pins the
//! soundness of genome-domain pruning: removing statically infeasible
//! genes must not change the best solution the GA finds.

use proptest::prelude::*;

use momsynth::analyze::analyze_system;
use momsynth::generators::automotive::automotive_ecu;
use momsynth::generators::smartphone::smartphone;
use momsynth::generators::suite::{generate, GeneratorParams};
use momsynth::model::units::Cells;
use momsynth::model::System;
use momsynth::synthesis::{verify_solution, Solution, SynthesisConfig, Synthesizer};

/// Slack for floating-point comparisons between independently computed
/// quantities (the analyzer sums in specification order, the evaluator
/// in schedule order).
const EPS: f64 = 1e-9;

/// Asserts every analyzer bound against a finished solution: the Eq. 1
/// average power, each mode's schedule length, and the core area each
/// hardware PE actually carries.
fn assert_bounds_hold(system: &System, best: &Solution, context: &str) {
    let analysis = analyze_system(system);
    assert!(
        !analysis.has_errors(),
        "{context}: analyzer rejected a system the synthesiser solved:\n{analysis}"
    );

    let lb = analysis.power_lower_bound();
    assert!(
        best.power.average.value() >= lb.value() - EPS,
        "{context}: p̄ {} W beats the static lower bound {} W",
        best.power.average.value(),
        lb.value(),
    );

    for bounds in analysis.mode_bounds() {
        let schedule = &best.schedules[bounds.mode.index()];
        assert_eq!(schedule.mode(), bounds.mode);
        assert!(
            schedule.makespan().value() >= bounds.critical_path_lb.value() - EPS,
            "{context}: mode {} schedule length {} s beats the critical-path bound {} s",
            bounds.name,
            schedule.makespan().value(),
            bounds.critical_path_lb.value(),
        );
    }

    for bound in analysis.area_bounds() {
        // Mirror the verifier's notion of occupied area: reconfigurable
        // fabric is reloaded between modes so only the busiest mode
        // counts; static (ASIC) cores coexist across all modes.
        let info = system.arch().pe(bound.pe);
        let used = if info.kind().is_reconfigurable() {
            system
                .omsm()
                .mode_ids()
                .map(|m| best.alloc.mode_area(system, bound.pe, m))
                .max()
                .unwrap_or(Cells::ZERO)
        } else {
            best.alloc.static_area(system, bound.pe)
        };
        assert!(
            used >= bound.floor,
            "{context}: PE {} carries {} cells, below the static floor of {} cells",
            bound.name,
            used.value(),
            bound.floor.value(),
        );
    }
}

/// Synthesises, keeps only verifier-accepted feasible solutions, and
/// holds them to the analyzer's bounds.
fn synthesise_and_bound(system: &System, config: SynthesisConfig, context: &str) {
    let result = Synthesizer::new(system, config).run().expect("schedulable system");
    if result.best.is_feasible() {
        let report = verify_solution(system, &result.best);
        assert!(report.is_clean(), "{context}: feasible solution failed verification:\n{report}");
        assert_bounds_hold(system, &result.best, context);
    }
    // The gap the synthesiser reports is measured against the same
    // bound, so it can never be negative on a finite result.
    assert!(
        result.power_lower_bound.value() >= 0.0,
        "{context}: negative power lower bound"
    );
}

#[test]
fn smartphone_solutions_satisfy_every_static_bound() {
    let system = smartphone();
    synthesise_and_bound(&system, SynthesisConfig::fast_preset(1), "smartphone fixed");
    synthesise_and_bound(&system, SynthesisConfig::fast_preset(2).with_dvs(), "smartphone dvs");
}

#[test]
fn automotive_solutions_satisfy_every_static_bound() {
    let system = automotive_ecu();
    synthesise_and_bound(&system, SynthesisConfig::fast_preset(1), "automotive fixed");
    synthesise_and_bound(&system, SynthesisConfig::fast_preset(2).with_dvs(), "automotive dvs");
}

/// Domain pruning only removes genes the analyzer *proved* infeasible,
/// so it must be trajectory-invariant: the GA visits the same solutions
/// in the same order and returns the identical best, history and stop
/// reason whether or not pruning is enabled.
#[test]
fn domain_pruning_changes_no_best_solution_on_the_seed_examples() {
    for (system, dvs) in [(smartphone(), true), (automotive_ecu(), false)] {
        let mut on = SynthesisConfig::fast_preset(7);
        let mut off = SynthesisConfig::fast_preset(7);
        if dvs {
            on = on.with_dvs();
            off = off.with_dvs();
        }
        assert!(on.prune_domains, "pruning is on by default");
        off.prune_domains = false;

        let pruned = Synthesizer::new(&system, on.clone()).run().expect("schedulable system");
        let unpruned = Synthesizer::new(&system, off).run().expect("schedulable system");
        assert_eq!(
            pruned.best, unpruned.best,
            "{}: pruning changed the best solution",
            system.name()
        );
        assert_eq!(pruned.history, unpruned.history);
        assert_eq!(pruned.stop_reason, unpruned.stop_reason);

        // Only the pruned run reports a pruning ratio, and only it may
        // be non-zero; the gap is identical because the bound is.
        assert_eq!(unpruned.pruned_domain_ratio, 0.0);
        let summary = pruned.summary(&system, &on);
        assert!(summary.optimality_gap >= 0.0, "negative optimality gap: {summary:?}");
        assert!(summary.power_lower_bound_mw > 0.0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Randomised systems: the analyzer never rejects what the
    /// synthesiser solves, and its bounds survive contact with every
    /// verifier-accepted solution.
    #[test]
    fn randomised_systems_never_beat_the_static_bounds(
        seed in 1u64..300,
        modes in 1usize..3,
        dvs in any::<bool>(),
    ) {
        let mut params = GeneratorParams::new("oracle", seed);
        params.modes = modes;
        params.tasks_per_mode = (4, 8);
        let system = generate(&params);
        let analysis = analyze_system(&system);
        prop_assert!(
            !analysis.has_errors(),
            "analyzer rejected a generated (solvable) system:\n{}",
            analysis
        );

        let mut config = SynthesisConfig::fast_preset(seed);
        config.ga.max_generations = 10;
        if dvs {
            config = config.with_dvs();
        }
        let result = Synthesizer::new(&system, config).run().expect("schedulable system");
        if result.best.is_feasible() {
            let report = verify_solution(&system, &result.best);
            prop_assert!(report.is_clean(), "feasible solution failed verification:\n{report}");
            assert_bounds_hold(&system, &result.best, "generated");
        }
    }
}
