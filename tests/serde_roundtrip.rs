//! Serialisation round-trips across the public model and result types:
//! systems (all three sub-models), mappings, allocations, schedules and
//! power reports survive JSON.

use momsynth::generators::smartphone::smartphone;
use momsynth::generators::suite::mul;
use momsynth::model::ids::PeId;
use momsynth::model::System;
use momsynth::power::{power_report, ModeImplementation, PowerReport};
use momsynth::sched::{
    schedule_mode, CoreAllocation, Schedule, SchedulerOptions, SystemMapping,
};

fn roundtrip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    serde_json::from_str(&serde_json::to_string(value).expect("serialises"))
        .expect("deserialises")
}

#[test]
fn suite_systems_round_trip() {
    for n in [1, 6, 12] {
        let system = mul(n);
        let back: System = roundtrip(&system);
        assert_eq!(back, system);
    }
}

#[test]
fn smartphone_round_trips() {
    let phone = smartphone();
    let back: System = roundtrip(&phone);
    assert_eq!(back, phone);
}

#[test]
fn implementation_artifacts_round_trip() {
    let system = mul(9);
    let mapping = SystemMapping::from_fn(&system, |_| PeId::new(0));
    let back: SystemMapping = roundtrip(&mapping);
    assert_eq!(back, mapping);

    let alloc = CoreAllocation::minimal(&system, &mapping);
    let back: CoreAllocation = roundtrip(&alloc);
    assert_eq!(back, alloc);

    let schedules: Vec<Schedule> = system
        .omsm()
        .mode_ids()
        .map(|m| schedule_mode(&system, m, &mapping, &alloc, SchedulerOptions::default()).unwrap())
        .collect();
    for s in &schedules {
        let back: Schedule = roundtrip(s);
        assert_eq!(&back, s);
    }

    let imps: Vec<ModeImplementation> = schedules.iter().map(ModeImplementation::nominal).collect();
    let report = power_report(&system, &imps);
    let back: PowerReport = roundtrip(&report);
    assert_eq!(back, report);
}

#[test]
fn pretty_json_is_stable() {
    let system = mul(2);
    let a = serde_json::to_string_pretty(&system).unwrap();
    let b = serde_json::to_string_pretty(&roundtrip::<System>(&system)).unwrap();
    assert_eq!(a, b);
}
