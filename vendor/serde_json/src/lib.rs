//! Offline, API-compatible subset of `serde_json`.
//!
//! The build environment has no access to crates.io, so this vendored
//! stand-in provides the JSON text codec over the vendored `serde` crate's
//! [`Value`] data model: [`from_str`], [`to_string`], [`to_string_pretty`],
//! [`to_value`]/[`from_value`], and a [`json!`] macro for flat object /
//! array / expression literals.
//!
//! Formatting matches `serde_json` closely enough for round-trips:
//! compact output has no whitespace, pretty output uses two-space indents,
//! and floats print via Rust's shortest-round-trip `Display`.

#![warn(missing_docs)]

use std::fmt;

pub use serde::{Number, Value};

/// A JSON parse or print failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(message: impl fmt::Display) -> Self {
        Self(message.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Self(e.to_string())
    }
}

/// Renders any serialisable value as a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Rebuilds a deserialisable type from a [`Value`] tree.
pub fn from_value<T: serde::de::DeserializeOwned>(value: &Value) -> Result<T, Error> {
    T::from_value(value).map_err(Error::from)
}

/// Serialises to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialises to a pretty JSON string (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

/// Parses a JSON string into any deserialisable type.
pub fn from_str<T: serde::de::DeserializeOwned>(text: &str) -> Result<T, Error> {
    let value = parse(text)?;
    T::from_value(&value).map_err(Error::from)
}

/// Builds a [`Value`] from a literal: `json!(null)`, `json!([a, b])`,
/// `json!({"key": expr, ...})`, or `json!(expr)` for any serialisable
/// expression. Unlike real `serde_json`, nested containers inside an
/// object must be expressions (e.g. `vec![..]`), not JSON literals.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $($crate::to_value(&$elem)),* ])
    };
    ({ $($key:literal : $value:expr),* $(,)? }) => {
        $crate::Value::Object(vec![ $(($key.to_string(), $crate::to_value(&$value))),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

// ---------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<&str>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) if items.is_empty() => out.push_str("[]"),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_break(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            write_break(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) if entries.is_empty() => out.push_str("{}"),
        Value::Object(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_break(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            write_break(out, indent, depth);
            out.push('}');
        }
    }
}

fn write_break(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(unit) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(unit);
        }
    }
}

fn write_number(out: &mut String, n: Number) {
    use fmt::Write as _;
    match n {
        Number::PosInt(v) => write!(out, "{v}"),
        Number::NegInt(v) => write!(out, "{v}"),
        // JSON has no NaN/Infinity; like serde_json, emit null.
        Number::Float(f) if !f.is_finite() => write!(out, "null"),
        Number::Float(f) => write!(out, "{f}"),
    }
    .expect("writing to String cannot fail");
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                write!(out, "\\u{:04x}", c as u32).expect("writing to String cannot fail");
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(text: &str) -> Result<Value, Error> {
    let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
    let value = parser.value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_whitespace(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_whitespace();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of input"))
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek()? == byte {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => Ok(Value::String(self.string()?)),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            c => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                c as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                c => {
                    return Err(Error::new(format!(
                        "expected `,` or `]`, found `{}` at byte {}",
                        c as char, self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.expect(b':')?;
            entries.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                c => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}`, found `{}` at byte {}",
                        c as char, self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while !matches!(self.bytes.get(self.pos), None | Some(b'"' | b'\\')) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.bytes.get(self.pos) {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                _ => unreachable!(),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), Error> {
        let c = *self
            .bytes
            .get(self.pos)
            .ok_or_else(|| Error::new("unterminated escape"))?;
        self.pos += 1;
        match c {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'b' => out.push('\u{8}'),
            b'f' => out.push('\u{c}'),
            b'u' => {
                let high = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&high) {
                    // Surrogate pair: expect a following `\uXXXX` low half.
                    if self.bytes.get(self.pos) == Some(&b'\\')
                        && self.bytes.get(self.pos + 1) == Some(&b'u')
                    {
                        self.pos += 2;
                        let low = self.hex4()?;
                        0x10000 + ((high - 0xD800) << 10) + (low - 0xDC00)
                    } else {
                        return Err(Error::new("unpaired surrogate in \\u escape"));
                    }
                } else {
                    high
                };
                out.push(
                    char::from_u32(code)
                        .ok_or_else(|| Error::new("invalid \\u escape"))?,
                );
            }
            c => {
                return Err(Error::new(format!("invalid escape `\\{}`", c as char)));
            }
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let digits = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        self.pos += 4;
        let text = std::str::from_utf8(digits).map_err(|_| Error::new("invalid \\u escape"))?;
        u32::from_str_radix(text, 16).map_err(|_| Error::new("invalid \\u escape"))
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&c) = self.bytes.get(self.pos) {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII");
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Number(Number::from_u64(n)));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Number(Number::from_i64(n)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::from_f64(f)))
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_prints_compact() {
        let text = r#"{"a":1,"b":[true,null,-2.5],"c":"x\ny"}"#;
        let value: Value = from_str(text).unwrap();
        assert_eq!(to_string(&value).unwrap(), text);
    }

    #[test]
    fn pretty_round_trips() {
        let value = json!({"name": "sys", "ids": vec![1u64, 2, 3]});
        let pretty = to_string_pretty(&value).unwrap();
        assert!(pretty.contains("\n  \"name\": \"sys\""));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn numbers_keep_integer_identity() {
        let v: Value = from_str("18446744073709551615").unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
        let v: Value = from_str("-42").unwrap();
        assert_eq!(v.as_i64(), Some(-42));
        let v: Value = from_str("0.125").unwrap();
        assert_eq!(v.as_f64(), Some(0.125));
        let v: Value = from_str("1e3").unwrap();
        assert_eq!(v.as_f64(), Some(1000.0));
    }

    #[test]
    fn typed_round_trip() {
        let pairs: Vec<(u32, f64)> = vec![(1, 0.5), (2, 1.5)];
        let text = to_string(&pairs).unwrap();
        let back: Vec<(u32, f64)> = from_str(&text).unwrap();
        assert_eq!(back, pairs);
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "quote\" slash\\ newline\n tab\t nul\u{1} snowman\u{2603}";
        let text = to_string(&String::from(original)).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<Value>("{\"a\":}").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("\"open").is_err());
    }
}
