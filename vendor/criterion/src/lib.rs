//! Offline, API-compatible subset of `criterion`.
//!
//! The build environment has no access to crates.io, so this vendored
//! stand-in provides the harness surface the workspace's benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`Bencher::iter`], [`black_box`], and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Methodology is deliberately simple: each benchmark runs a short warm-up,
//! then `sample_size` timed samples, and reports the median per-iteration
//! wall time. There is no statistical analysis, plotting, or baseline
//! comparison — the point is that `cargo bench` builds, runs, and prints
//! comparable numbers without the real crate.

#![warn(missing_docs)]

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimiser from deleting benched code.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        eprintln!("group {name}");
        BenchmarkGroup { _criterion: self, sample_size: 100 }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Times one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut body: F) -> &mut Self {
        let mut bencher = Bencher { samples: Vec::with_capacity(self.sample_size) };
        // Warm-up sample, discarded.
        body(&mut bencher);
        bencher.samples.clear();
        for _ in 0..self.sample_size {
            body(&mut bencher);
        }
        bencher.samples.sort_unstable();
        let median = bencher
            .samples
            .get(bencher.samples.len() / 2)
            .copied()
            .unwrap_or(Duration::ZERO);
        eprintln!("  {id}: median {median:?} over {} samples", bencher.samples.len());
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Times closures for one benchmark sample.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Runs `routine` once and records its wall time as one sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        self.samples.push(start.elapsed());
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(c: &mut Criterion) {
        let mut group = c.benchmark_group("tiny");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.finish();
    }

    #[test]
    fn harness_runs() {
        let mut criterion = Criterion::default();
        tiny(&mut criterion);
    }
}
