//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! stand-in provides exactly the surface the workspace uses: the
//! [`RngCore`]/[`Rng`]/[`SeedableRng`] traits, [`rngs::StdRng`] /
//! [`rngs::SmallRng`], uniform `gen_range` over integer and float ranges,
//! and `gen_bool`. The generator is xoshiro256++ seeded through
//! SplitMix64 — deterministic for a fixed seed, which is all the
//! synthesis flow requires (equal seeds give identical runs; statistical
//! quality is far beyond what a GA needs).
//!
//! Not implemented: distributions, `thread_rng`, OS entropy, fill/choose
//! helpers. Code needing those should extend this module rather than
//! reaching for the real crate (the build is offline by design).

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of uniformly distributed random bits.
pub trait RngCore {
    /// Returns 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A random generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` seed (SplitMix64-expanded).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let value = splitmix64(&mut state);
            for (b, v) in chunk.iter_mut().zip(value.to_le_bytes()) {
                *b = v;
            }
        }
        Self::from_seed(seed)
    }
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A range that can be sampled uniformly by [`Rng::gen_range`].
///
/// Generic over the produced type (like real rand) so that unsuffixed
/// integer literals in `gen_range(500..1500)` infer from the use site.
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

#[inline]
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Widening-multiply range reduction (Lemire); the bias is < 2^-64 per
    // draw for the small bounds used here.
    ((u128::from(rng.next_u64()) * u128::from(bound)) >> 64) as u64
}

macro_rules! int_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                (self.start as $wide).wrapping_add(bounded_u64(rng, span) as $wide) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as $wide).wrapping_add(bounded_u64(rng, span + 1) as $wide) as $t
            }
        }
    )*};
}

int_range! {
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
}

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // 53 (resp. 24) uniform mantissa bits in [0, 1).
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                let value = self.start + (self.end - self.start) * unit;
                if value < self.end { value } else { self.start }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                start + (end - start) * unit
            }
        }
    )*};
}

float_range!(f32, f64);

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn step(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // A xoshiro state must not be all-zero.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 0x6A09_E667_F3BC_C909, 1, 2];
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.step()
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.step().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }

    /// A small fast generator; identical to [`StdRng`] in this subset.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_every_value() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((25_000..35_000).contains(&hits), "{hits}");
        assert!(!(0..1000).any(|_| rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut rng = StdRng::seed_from_u64(5);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let v = dyn_rng.gen_range(0usize..10);
        assert!(v < 10);
        let v = Rng::gen_range(dyn_rng, 0u8..4);
        assert!(v < 4);
    }

    #[test]
    fn full_u64_inclusive_range_works() {
        let mut rng = StdRng::seed_from_u64(11);
        let _ = rng.gen_range(0u64..=u64::MAX);
    }
}
