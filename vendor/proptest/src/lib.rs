//! Offline, API-compatible subset of `proptest`.
//!
//! The build environment has no access to crates.io, so this vendored
//! stand-in implements the slice the workspace's property tests use:
//! range and tuple strategies, `prop_map`/`prop_filter`,
//! `proptest::collection::vec`, `any::<T>()`, the `proptest!` macro with
//! optional `#![proptest_config(..)]`, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from real proptest, by design:
//! - cases are generated from a deterministic per-test seed (hash of the
//!   test name and case index), so failures reproduce without a seed file;
//! - failing cases are reported (test name, case index, seed) but not
//!   shrunk;
//! - `prop_assert*` panics like `assert*` instead of returning `Err`.

#![warn(missing_docs)]

/// Strategy trait and combinators.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Keeps only values for which `keep` returns `true`.
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: &'static str,
            keep: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter { inner: self, whence, keep }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        keep: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;

        fn generate(&self, rng: &mut StdRng) -> S::Value {
            for _ in 0..1_000 {
                let value = self.inner.generate(rng);
                if (self.keep)(&value) {
                    return value;
                }
            }
            panic!("prop_filter `{}` rejected 1000 consecutive values", self.whence);
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    }

    /// A strategy yielding a fixed value.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }
}

/// Strategies for collections.
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A length specification: a fixed size or a range of sizes.
    pub trait IntoSizeRange {
        /// Samples one length.
        fn sample_len(&self, rng: &mut StdRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn sample_len(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Generates `Vec`s whose elements come from `element` and whose
    /// length comes from `size`.
    pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, size: L) -> VecStrategy<S, L> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S, L> {
        element: S,
        size: L,
    }

    impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = self.size.sample_len(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::{Rng, RngCore};

    /// A type with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// The canonical strategy.
        type Strategy: Strategy<Value = Self>;

        /// Returns the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical strategy for `T`.
    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }

    /// Whole-domain strategy for primitive types.
    pub struct AnyPrimitive<T>(std::marker::PhantomData<T>);

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Strategy for AnyPrimitive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(<$t>::MIN..=<$t>::MAX)
                }
            }
            impl Arbitrary for $t {
                type Strategy = AnyPrimitive<$t>;
                fn arbitrary() -> Self::Strategy {
                    AnyPrimitive(std::marker::PhantomData)
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for AnyPrimitive<bool> {
        type Value = bool;

        fn generate(&self, rng: &mut StdRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyPrimitive<bool>;

        fn arbitrary() -> Self::Strategy {
            AnyPrimitive(std::marker::PhantomData)
        }
    }
}

/// The case runner and its configuration.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

    /// Runner configuration (subset of proptest's).
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of cases to run per test.
        pub cases: u32,
        /// Accepted for signature compatibility; this subset never shrinks.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256, max_shrink_iters: 0 }
        }
    }

    /// FNV-1a, used to derive a per-test deterministic seed.
    fn hash(text: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in text.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Runs `body` once per case with a per-case deterministic generator.
    /// On panic, reports the test name, case index and seed, then
    /// propagates the panic.
    pub fn run<F: FnMut(&mut StdRng)>(config: ProptestConfig, name: &str, mut body: F) {
        for case in 0..config.cases {
            let seed = hash(name) ^ u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut rng = StdRng::seed_from_u64(seed);
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| body(&mut rng))) {
                eprintln!(
                    "proptest: `{name}` failed at case {case}/{} (seed {seed:#018x})",
                    config.cases
                );
                resume_unwind(payload);
            }
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests: `proptest! { #[test] fn name(x in strat) {..} }`
/// with an optional leading `#![proptest_config(expr)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            $crate::test_runner::run(config, stringify!($name), |__proptest_rng| {
                $(let $pat = $crate::strategy::Strategy::generate(&($strategy), __proptest_rng);)*
                $body
            });
        }
    )*};
}

/// Asserts a condition inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_are_deterministic_per_seed() {
        use crate::strategy::Strategy;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let strategy = (0usize..10, crate::collection::vec(0.0f64..1.0, 2..5))
            .prop_map(|(n, xs)| (n, xs.len()));
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        assert_eq!(strategy.generate(&mut a), strategy.generate(&mut b));
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(x in 5usize..9, y in -2.0f64..2.0) {
            prop_assert!((5..9).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn filters_apply(v in (0u32..100).prop_filter("even", |v| v % 2 == 0)) {
            prop_assert_eq!(v % 2, 0);
        }

        #[test]
        fn vectors_respect_length_spec(
            fixed in crate::collection::vec(any::<u64>(), 4),
            ranged in crate::collection::vec(0u8..10, 1..7),
        ) {
            prop_assert_eq!(fixed.len(), 4);
            prop_assert!((1..7).contains(&ranged.len()));
        }

        #[test]
        fn tuple_patterns_bind((a, b) in (0i32..10, 10i32..20)) {
            prop_assert!(a < b);
        }
    }
}
