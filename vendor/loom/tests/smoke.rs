//! Self-tests for the vendored model checker: each test either proves
//! a correct protocol (model passes) or proves detection power (model
//! catches a seeded memory-ordering or lost-wakeup bug).

use std::panic::{catch_unwind, AssertUnwindSafe};

use loom::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use loom::sync::{Arc, Condvar, Mutex};
use loom::thread;

/// Runs a model expected to FAIL and returns the failure message.
fn model_fails(f: impl Fn() + Send + Sync + 'static) -> String {
    let result = catch_unwind(AssertUnwindSafe(|| loom::model(f)));
    match result {
        Ok(()) => panic!("model unexpectedly passed"),
        Err(payload) => payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_owned()))
            .unwrap_or_else(|| "<non-string payload>".to_owned()),
    }
}

#[test]
fn release_acquire_message_passing_passes() {
    loom::model(|| {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicBool::new(false));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            f2.store(true, Ordering::Release);
        });
        if flag.load(Ordering::Acquire) {
            assert_eq!(data.load(Ordering::Relaxed), 42, "acquire must see the payload");
        }
        t.join().unwrap();
    });
}

#[test]
fn relaxed_message_passing_is_caught() {
    let message = model_fails(|| {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicBool::new(false));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            // Seeded bug: the flag store is Relaxed, so the payload may
            // not be visible to the reader.
            f2.store(true, Ordering::Relaxed);
        });
        if flag.load(Ordering::Acquire) {
            assert_eq!(data.load(Ordering::Relaxed), 42);
        }
        t.join().unwrap();
    });
    assert!(message.contains("model failed"), "unexpected failure: {message}");
}

#[test]
fn relaxed_publish_before_acquire_load_is_caught() {
    // The dual seeded bug: Release store, Relaxed load.
    let message = model_fails(|| {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicBool::new(false));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            f2.store(true, Ordering::Release);
        });
        if flag.load(Ordering::Relaxed) {
            assert_eq!(data.load(Ordering::Relaxed), 42);
        }
        t.join().unwrap();
    });
    assert!(message.contains("model failed"), "unexpected failure: {message}");
}

#[test]
fn fetch_add_counter_is_linearizable() {
    loom::model(|| {
        let counter = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let c = Arc::clone(&counter);
                thread::spawn(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                    c.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    });
}

#[test]
fn load_store_increment_lost_update_is_caught() {
    let message = model_fails(|| {
        let counter = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let c = Arc::clone(&counter);
                thread::spawn(move || {
                    // Seeded bug: non-atomic read-modify-write.
                    let v = c.load(Ordering::Relaxed);
                    c.store(v + 1, Ordering::Relaxed);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 2);
    });
    assert!(message.contains("model failed"), "unexpected failure: {message}");
}

#[test]
fn cas_loop_increment_survives_stale_reads() {
    loom::model(|| {
        let counter = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let c = Arc::clone(&counter);
                thread::spawn(move || {
                    let mut cur = c.load(Ordering::Relaxed);
                    loop {
                        match c.compare_exchange_weak(
                            cur,
                            cur + 1,
                            Ordering::Relaxed,
                            Ordering::Relaxed,
                        ) {
                            Ok(_) => break,
                            Err(actual) => cur = actual,
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 2);
    });
}

#[test]
fn mutex_guards_a_plain_counter() {
    loom::model(|| {
        let counter = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let c = Arc::clone(&counter);
                thread::spawn(move || {
                    *c.lock().unwrap() += 1;
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*counter.lock().unwrap(), 2);
    });
}

#[test]
fn mutex_release_acquire_edge_carries_data() {
    loom::model(|| {
        let slot = Arc::new(AtomicU64::new(0));
        let ready = Arc::new(Mutex::new(false));
        let (s2, r2) = (Arc::clone(&slot), Arc::clone(&ready));
        let t = thread::spawn(move || {
            s2.store(7, Ordering::Relaxed);
            *r2.lock().unwrap() = true;
        });
        let is_ready = *ready.lock().unwrap();
        if is_ready {
            assert_eq!(slot.load(Ordering::Relaxed), 7, "lock edge must publish");
        }
        t.join().unwrap();
    });
}

#[test]
fn missed_wakeup_deadlock_is_caught() {
    let message = model_fails(|| {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (lock, cv) = &*p2;
            // Seeded bug: flag set without holding the lock ordering
            // against the waiter's predicate check, and no re-notify —
            // classic lost-wakeup when notify lands before the wait.
            *lock.lock().unwrap() = true;
            cv.notify_one();
        });
        let (lock, cv) = &*pair;
        let mut done = lock.lock().unwrap();
        // Seeded bug: waiting without a predicate loop guard against
        // the notify having already happened is fine — but here the
        // wait ignores the flag entirely, so a pre-wait notify is lost.
        if !*done {
            // Check-then-wait race: notify may land between the check
            // and the wait.
            drop(done);
            done = lock.lock().unwrap();
            #[allow(unused_assignments)]
            {
                done = cv.wait(done).unwrap();
            }
        }
        drop(done);
        t.join().unwrap();
    });
    assert!(message.contains("deadlock"), "expected a deadlock, got: {message}");
}

#[test]
fn predicate_loop_with_timeout_backstop_passes() {
    loom::model(|| {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (lock, cv) = &*p2;
            *lock.lock().unwrap() = true;
            cv.notify_one();
        });
        let (lock, cv) = &*pair;
        let mut done = lock.lock().unwrap();
        while !*done {
            // The timed wait is the backstop: even if the notify was
            // lost, the timeout path keeps the waiter schedulable.
            let (guard, _timed_out) =
                cv.wait_timeout(done, std::time::Duration::from_millis(100)).unwrap();
            done = guard;
        }
        drop(done);
        t.join().unwrap();
    });
}

#[test]
fn relaxed_load_can_observe_stale_values() {
    // Not a pass/fail protocol check: records every value the explorer
    // lets a Relaxed load observe after an unsynchronized store, and
    // asserts both the stale and fresh values were explored.
    use std::sync::atomic::AtomicU8 as HostAtomicU8;
    static WITNESSED: HostAtomicU8 = HostAtomicU8::new(0);
    WITNESSED.store(0, std::sync::atomic::Ordering::SeqCst);
    loom::model(|| {
        let x = Arc::new(AtomicUsize::new(0));
        let x2 = Arc::clone(&x);
        let t = thread::spawn(move || {
            x2.store(1, Ordering::Relaxed);
        });
        let seen = x.load(Ordering::Relaxed);
        WITNESSED.fetch_or(1 << seen, std::sync::atomic::Ordering::SeqCst);
        t.join().unwrap();
    });
    assert_eq!(
        WITNESSED.load(std::sync::atomic::Ordering::SeqCst),
        0b11,
        "exploration must cover both the stale (0) and fresh (1) read"
    );
}
