//! An offline, API-compatible subset of the
//! [`loom`](https://docs.rs/loom) concurrency model checker.
//!
//! [`model`] runs a closure under a deterministic scheduler that
//! exhaustively explores thread interleavings (depth-first over every
//! schedule point, bounded by `LOOM_MAX_PREEMPTIONS`) and weak-memory
//! behaviours (every store an atomic load may legally observe under
//! the release/acquire model). Any execution that panics, asserts, or
//! deadlocks makes [`model`] panic with the failure, so a plain
//! `#[test]` wrapping `loom::model(|| ...)` is a machine-checked proof
//! over the explored schedule space.
//!
//! The subset implemented here covers what this workspace's `sync`
//! facade needs: [`sync::Mutex`], [`sync::Condvar`] (including
//! [`sync::Condvar::wait_timeout`], modeled as a wakeup that may fire
//! any time the mutex is free), [`sync::Arc`], the
//! [`sync::atomic`] integer/bool types, and [`thread::spawn`] /
//! [`thread::yield_now`]. Known divergences from upstream loom:
//!
//! - `SeqCst` is approximated as `AcqRel`; a total order over SeqCst
//!   operations is not modeled (sound for release/acquire protocols,
//!   too weak for SC-only algorithms such as Dekker's).
//! - Condvars never wake spuriously; timed waits *may* wake without a
//!   notification (the timeout path), untimed waits may not. This is
//!   stricter than `std`, so protocols proven here must still guard
//!   waits with a predicate loop for real executions.
//! - Channels are not modeled; `std::sync::mpsc` works under the
//!   checker because only one thread runs at a time, but blocking
//!   `recv` would deadlock the model — use `try_recv` in models.
//! - `UnsafeCell` is not provided: the workspace denies `unsafe_code`,
//!   so all shared state goes through `Mutex` or atomics anyway.

mod rt;

/// Runs `f` under the model checker, exploring every schedule within
/// the preemption bound. Panics if any execution fails (assertion,
/// panic, or deadlock).
///
/// Environment knobs: `LOOM_MAX_PREEMPTIONS` (default 3),
/// `LOOM_MAX_ITERATIONS` (default 200000, warns when hit),
/// `LOOM_LOG` (print the number of executions explored).
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    rt::explore(std::sync::Arc::new(f));
}

/// Controlled threads: modeled spawn/join plus an explicit schedule
/// point.
pub mod thread {
    use crate::rt;

    /// Handle to a controlled thread; joining is a schedule point and
    /// a happens-before edge, as in `std`.
    pub struct JoinHandle<T> {
        tid: usize,
        real: std::thread::JoinHandle<Option<T>>,
    }

    impl<T> JoinHandle<T> {
        /// Waits for the thread to finish and returns its result.
        ///
        /// # Errors
        ///
        /// Returns the panic payload if the thread panicked (in
        /// practice a panicking thread fails the whole model first).
        pub fn join(self) -> std::thread::Result<T> {
            rt::join(self.tid);
            match self.real.join() {
                Ok(Some(value)) => Ok(value),
                Ok(None) => Err(Box::new("loom: joined thread failed")),
                Err(payload) => Err(payload),
            }
        }
    }

    /// Spawns a controlled thread.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let (tid, real) = rt::spawn(f);
        JoinHandle { tid, real }
    }

    /// An explicit schedule point (no memory effect).
    pub fn yield_now() {
        rt::yield_now();
    }
}

/// Modeled counterparts of `std::sync` primitives.
pub mod sync {
    pub use std::sync::Arc;
    pub use std::sync::{LockResult, PoisonError, TryLockError, TryLockResult};

    use crate::rt;

    /// Modeled atomics: every access is a schedule point, and loads
    /// explore all stores permitted by the release/acquire model.
    pub mod atomic {
        pub use std::sync::atomic::Ordering;

        use crate::rt::ObjToken;

        macro_rules! atomic_int {
            ($name:ident, $ty:ty, $to:expr, $from:expr) => {
                /// A modeled atomic integer (subset of the `std` API).
                #[derive(Debug, Default)]
                pub struct $name {
                    token: ObjToken,
                    initial: u64,
                }

                impl $name {
                    /// A new cell holding `value`.
                    #[must_use]
                    pub fn new(value: $ty) -> Self {
                        Self { token: ObjToken::default(), initial: $to(value) }
                    }

                    /// Modeled load: explores every legally observable
                    /// store.
                    pub fn load(&self, order: Ordering) -> $ty {
                        $from(crate::rt::atomic_load(&self.token, self.initial, order))
                    }

                    /// Modeled store.
                    pub fn store(&self, value: $ty, order: Ordering) {
                        crate::rt::atomic_store(
                            &self.token,
                            self.initial,
                            $to(value),
                            order,
                        );
                    }

                    /// Modeled swap; returns the previous value.
                    pub fn swap(&self, value: $ty, order: Ordering) -> $ty {
                        $from(crate::rt::atomic_rmw(
                            &self.token,
                            self.initial,
                            order,
                            |_| $to(value),
                        ))
                    }

                    /// Modeled wrapping add; returns the previous value.
                    pub fn fetch_add(&self, value: $ty, order: Ordering) -> $ty {
                        $from(crate::rt::atomic_rmw(
                            &self.token,
                            self.initial,
                            order,
                            |prev| $to($from(prev).wrapping_add(value)),
                        ))
                    }

                    /// Modeled wrapping subtract; returns the previous
                    /// value.
                    pub fn fetch_sub(&self, value: $ty, order: Ordering) -> $ty {
                        $from(crate::rt::atomic_rmw(
                            &self.token,
                            self.initial,
                            order,
                            |prev| $to($from(prev).wrapping_sub(value)),
                        ))
                    }

                    /// Modeled bitwise OR; returns the previous value.
                    pub fn fetch_or(&self, value: $ty, order: Ordering) -> $ty {
                        $from(crate::rt::atomic_rmw(
                            &self.token,
                            self.initial,
                            order,
                            |prev| $to($from(prev) | value),
                        ))
                    }

                    /// Modeled compare-exchange.
                    ///
                    /// # Errors
                    ///
                    /// Returns the actual value when it differs from
                    /// `current`.
                    pub fn compare_exchange(
                        &self,
                        current: $ty,
                        new: $ty,
                        success: Ordering,
                        failure: Ordering,
                    ) -> Result<$ty, $ty> {
                        crate::rt::atomic_cas(
                            &self.token,
                            self.initial,
                            $to(current),
                            $to(new),
                            success,
                            failure,
                        )
                        .map($from)
                        .map_err($from)
                    }

                    /// Modeled weak compare-exchange (never fails
                    /// spuriously here — the strong semantics are a
                    /// superset, so proofs remain valid).
                    ///
                    /// # Errors
                    ///
                    /// Returns the actual value when it differs from
                    /// `current`.
                    pub fn compare_exchange_weak(
                        &self,
                        current: $ty,
                        new: $ty,
                        success: Ordering,
                        failure: Ordering,
                    ) -> Result<$ty, $ty> {
                        self.compare_exchange(current, new, success, failure)
                    }
                }
            };
        }

        fn u64_id(v: u64) -> u64 {
            v
        }
        fn usize_to_bits(v: usize) -> u64 {
            v as u64
        }
        #[allow(clippy::cast_possible_truncation)]
        fn usize_from_bits(v: u64) -> usize {
            v as usize
        }
        fn u32_to_bits(v: u32) -> u64 {
            u64::from(v)
        }
        #[allow(clippy::cast_possible_truncation)]
        fn u32_from_bits(v: u64) -> u32 {
            v as u32
        }
        #[allow(clippy::cast_sign_loss)]
        fn i64_to_bits(v: i64) -> u64 {
            v as u64
        }
        #[allow(clippy::cast_possible_wrap)]
        fn i64_from_bits(v: u64) -> i64 {
            v as i64
        }

        atomic_int!(AtomicU64, u64, u64_id, u64_id);
        atomic_int!(AtomicUsize, usize, usize_to_bits, usize_from_bits);
        atomic_int!(AtomicU32, u32, u32_to_bits, u32_from_bits);
        atomic_int!(AtomicI64, i64, i64_to_bits, i64_from_bits);

        /// A modeled atomic boolean (subset of the `std` API).
        #[derive(Debug, Default)]
        pub struct AtomicBool {
            token: ObjToken,
            initial: u64,
        }

        impl AtomicBool {
            /// A new cell holding `value`.
            #[must_use]
            pub fn new(value: bool) -> Self {
                Self { token: ObjToken::default(), initial: u64::from(value) }
            }

            /// Modeled load: explores every legally observable store.
            pub fn load(&self, order: Ordering) -> bool {
                crate::rt::atomic_load(&self.token, self.initial, order) != 0
            }

            /// Modeled store.
            pub fn store(&self, value: bool, order: Ordering) {
                crate::rt::atomic_store(
                    &self.token,
                    self.initial,
                    u64::from(value),
                    order,
                );
            }

            /// Modeled swap; returns the previous value.
            pub fn swap(&self, value: bool, order: Ordering) -> bool {
                crate::rt::atomic_rmw(&self.token, self.initial, order, |_| {
                    u64::from(value)
                }) != 0
            }

            /// Modeled compare-exchange.
            ///
            /// # Errors
            ///
            /// Returns the actual value when it differs from `current`.
            pub fn compare_exchange(
                &self,
                current: bool,
                new: bool,
                success: Ordering,
                failure: Ordering,
            ) -> Result<bool, bool> {
                crate::rt::atomic_cas(
                    &self.token,
                    self.initial,
                    u64::from(current),
                    u64::from(new),
                    success,
                    failure,
                )
                .map(|v| v != 0)
                .map_err(|v| v != 0)
            }
        }
    }

    /// A modeled mutex: lock/unlock are schedule points, lock order is
    /// explored, and the lock carries a happens-before edge.
    #[derive(Debug, Default)]
    pub struct Mutex<T> {
        token: rt::ObjToken,
        data: std::sync::Mutex<T>,
    }

    /// Guard returned by [`Mutex::lock`]; dropping it is the modeled
    /// unlock.
    #[derive(Debug)]
    pub struct MutexGuard<'a, T> {
        mutex: &'a Mutex<T>,
        id: usize,
        inner: Option<std::sync::MutexGuard<'a, T>>,
        /// Set by `Condvar::wait*`, which takes over the unlock.
        defused: bool,
    }

    impl<T> Mutex<T> {
        /// A new mutex holding `value`.
        #[must_use]
        pub fn new(value: T) -> Self {
            Self { token: rt::ObjToken::default(), data: std::sync::Mutex::new(value) }
        }

        /// Acquires the mutex (a schedule point; blocking is modeled).
        ///
        /// # Errors
        ///
        /// Never errs: poisoning is not modeled, matching upstream
        /// loom. The `LockResult` wrapper keeps the `std` signature.
        pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
            let id = rt::mutex_lock(&self.token);
            // The model grants exclusive ownership, so the data lock is
            // free; a poisoned flag from an earlier aborted execution
            // is cleared rather than propagated.
            let inner =
                self.data.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            Ok(MutexGuard { mutex: self, id, inner: Some(inner), defused: false })
        }

        /// Consumes the mutex, returning the inner value.
        ///
        /// # Errors
        ///
        /// Never errs (see [`Mutex::lock`]).
        pub fn into_inner(self) -> LockResult<T> {
            Ok(self.data.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner))
        }
    }

    impl<T> std::ops::Deref for MutexGuard<'_, T> {
        type Target = T;

        fn deref(&self) -> &T {
            self.inner.as_ref().expect("guard accessed after wait")
        }
    }

    impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.inner.as_mut().expect("guard accessed after wait")
        }
    }

    impl<T> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            if self.defused {
                return;
            }
            drop(self.inner.take());
            rt::mutex_unlock(self.id);
        }
    }

    /// Result of [`Condvar::wait_timeout`]; mirrors the `std` type,
    /// which has no public constructor.
    #[derive(Debug, Clone, Copy)]
    pub struct WaitTimeoutResult(bool);

    impl WaitTimeoutResult {
        /// Whether the wait ended by timeout rather than notification.
        #[must_use]
        pub fn timed_out(&self) -> bool {
            self.0
        }
    }

    /// A modeled condition variable. No spurious wakeups; timed waits
    /// may wake without a notification (the modeled timeout) whenever
    /// the mutex is free.
    #[derive(Debug, Default)]
    pub struct Condvar {
        token: rt::ObjToken,
    }

    impl Condvar {
        /// A new condition variable.
        #[must_use]
        pub fn new() -> Self {
            Self::default()
        }

        /// Releases the guard's mutex, waits for a notification, and
        /// reacquires it.
        ///
        /// # Errors
        ///
        /// Never errs (poisoning is not modeled).
        pub fn wait<'a, T>(
            &self,
            mut guard: MutexGuard<'a, T>,
        ) -> LockResult<MutexGuard<'a, T>> {
            let mutex = guard.mutex;
            let id = guard.id;
            guard.defused = true;
            drop(guard.inner.take());
            drop(guard);
            rt::condvar_wait(&self.token, id, false);
            let inner =
                mutex.data.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            Ok(MutexGuard { mutex, id, inner: Some(inner), defused: false })
        }

        /// Like [`Condvar::wait`], but the wait may also end by
        /// timeout. The duration is ignored: the model explores the
        /// timeout firing at every point where the mutex is free.
        ///
        /// # Errors
        ///
        /// Never errs (poisoning is not modeled).
        pub fn wait_timeout<'a, T>(
            &self,
            mut guard: MutexGuard<'a, T>,
            _dur: std::time::Duration,
        ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
            let mutex = guard.mutex;
            let id = guard.id;
            guard.defused = true;
            drop(guard.inner.take());
            drop(guard);
            let timed_out = rt::condvar_wait(&self.token, id, true);
            let inner =
                mutex.data.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            Ok((
                MutexGuard { mutex, id, inner: Some(inner), defused: false },
                WaitTimeoutResult(timed_out),
            ))
        }

        /// Wakes one waiter; which one is an explored decision.
        pub fn notify_one(&self) {
            rt::condvar_notify(&self.token, false);
        }

        /// Wakes every waiter.
        pub fn notify_all(&self) {
            rt::condvar_notify(&self.token, true);
        }
    }
}

/// `spin_loop` maps to a schedule point under the model.
pub mod hint {
    /// A schedule point standing in for `std::hint::spin_loop`.
    pub fn spin_loop() {
        crate::thread::yield_now();
    }
}
