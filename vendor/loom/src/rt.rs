//! The model-checking runtime: a deterministic cooperative scheduler
//! over real OS threads plus a release/acquire vector-clock memory
//! model.
//!
//! One execution runs the user closure with exactly one controlled
//! thread active at a time. Every visible operation (atomic access,
//! mutex, condvar, spawn/join, yield) is a *schedule point*: the
//! runtime consults the current decision path to pick which thread
//! performs the next operation, and — for atomic loads — which store
//! the load observes. [`explore`] then backtracks over the recorded
//! decision path depth-first, so every interleaving (and every legal
//! weak-memory read) within the preemption bound is visited exactly
//! once.
//!
//! ## Memory model
//!
//! Each atomic location keeps its full modification order. A store
//! records the storing thread's vector clock (`hb`, for
//! happens-before supersession) and, when it is a release store (or
//! continues a release sequence through an RMW), a message clock
//! (`msg`). A load may observe any store that is not superseded by a
//! later store that happens-before the load, and not older than the
//! last store this thread already observed (per-location coherence).
//! Acquire loads join the observed store's message clock. `SeqCst` is
//! approximated as `AcqRel` — a single total order over SeqCst
//! operations is *not* modeled, which is sound for the
//! release/acquire protocols this subset is used to check but would
//! report false failures for SC-only algorithms (e.g. Dekker).

use std::cell::RefCell;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex};

/// Panic payload used to unwind controlled threads when an execution
/// is abandoned (failure or deadlock elsewhere).
pub(crate) struct Abort;

/// A vector clock, indexed by thread id (missing components are 0).
pub(crate) type VClock = Vec<u64>;

fn clock_le(a: &VClock, b: &VClock) -> bool {
    a.iter().enumerate().all(|(i, &v)| v <= b.get(i).copied().unwrap_or(0))
}

fn clock_join(a: &mut VClock, b: &VClock) {
    if a.len() < b.len() {
        a.resize(b.len(), 0);
    }
    for (i, &v) in b.iter().enumerate() {
        if a[i] < v {
            a[i] = v;
        }
    }
}

/// One recorded decision: `chosen` out of `total` options.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Choice {
    chosen: usize,
    total: usize,
}

/// Where a controlled thread currently stands.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Run {
    Runnable,
    BlockedMutex(usize),
    BlockedCv { cv: usize, mutex: usize, timed: bool },
    BlockedJoin(usize),
    Finished,
}

#[derive(Debug)]
struct ThreadSt {
    run: Run,
    clock: VClock,
    /// Set when a timed condvar wait was woken by its (modeled)
    /// timeout rather than a notification.
    timed_out: bool,
    /// Timeout wakeups taken this execution; bounded so a
    /// wait-timeout/re-wait loop cannot make an execution infinite.
    timeout_fires: usize,
}

#[derive(Debug)]
struct StoreRec {
    value: u64,
    /// The storing thread's clock at the store (happens-before).
    hb: VClock,
    /// Synchronizes-with payload; empty unless the store releases (or
    /// continues a release sequence).
    msg: VClock,
    release: bool,
}

#[derive(Debug)]
struct Location {
    stores: Vec<StoreRec>,
    /// Per-thread coherence floor: index of the newest store already
    /// observed (read or written) by each thread.
    seen: Vec<usize>,
}

#[derive(Debug)]
struct MutexSt {
    owner: Option<usize>,
    /// Clock released into the mutex by the last unlock.
    clock: VClock,
}

pub(crate) struct RtState {
    threads: Vec<ThreadSt>,
    active: usize,
    path: Vec<Choice>,
    cursor: usize,
    preemptions: usize,
    max_preemptions: usize,
    /// Per-thread cap on modeled timeout wakeups per execution.
    max_timeout_fires: usize,
    locations: Vec<Location>,
    mutexes: Vec<MutexSt>,
    condvars: usize,
    failure: Option<String>,
    abort: bool,
    /// Registered, not-yet-finished threads.
    live: usize,
}

/// One execution's runtime, shared by all its controlled threads.
pub(crate) struct Rt {
    state: StdMutex<RtState>,
    cv: StdCondvar,
    /// Execution-unique token; object ids from other executions are
    /// re-registered when their epoch differs.
    pub(crate) epoch: u64,
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Rt>, usize)>> = const { RefCell::new(None) };
}

fn current() -> (Arc<Rt>, usize) {
    CURRENT.with(|c| {
        c.borrow()
            .clone()
            .expect("loom primitives may only be used inside loom::model")
    })
}

pub(crate) fn set_current(rt: Option<(Arc<Rt>, usize)>) {
    CURRENT.with(|c| *c.borrow_mut() = rt);
}

pub(crate) fn in_model() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

/// Registration token held by every modeled object (atomic, mutex,
/// condvar): the id is valid for one epoch only.
#[derive(Debug, Default)]
pub(crate) struct ObjToken {
    slot: StdMutex<Option<(u64, usize)>>,
}

impl Rt {
    fn new(
        prefix: Vec<Choice>,
        max_preemptions: usize,
        max_timeout_fires: usize,
        epoch: u64,
    ) -> Self {
        Self {
            state: StdMutex::new(RtState {
                threads: Vec::new(),
                active: 0,
                path: prefix,
                cursor: 0,
                preemptions: 0,
                max_preemptions,
                max_timeout_fires,
                locations: Vec::new(),
                mutexes: Vec::new(),
                condvars: 0,
                failure: None,
                abort: false,
                live: 0,
            }),
            cv: StdCondvar::new(),
            epoch,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RtState> {
        self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl RtState {
    fn tick(&mut self, tid: usize) {
        let clock = &mut self.threads[tid].clock;
        if clock.len() <= tid {
            clock.resize(tid + 1, 0);
        }
        clock[tid] += 1;
    }

    /// Picks `chosen` out of `total` options, consuming the replay
    /// prefix first and recording fresh decisions after it.
    fn decide(&mut self, total: usize) -> usize {
        if total <= 1 {
            return 0;
        }
        if self.cursor < self.path.len() {
            let choice = self.path[self.cursor];
            self.cursor += 1;
            return choice.chosen.min(total - 1);
        }
        self.path.push(Choice { chosen: 0, total });
        self.cursor += 1;
        0
    }

    fn enabled(&self, tid: usize) -> bool {
        match self.threads[tid].run {
            Run::Runnable => true,
            Run::BlockedMutex(m) => self.mutexes[m].owner.is_none(),
            Run::BlockedCv { timed, mutex, .. } => {
                timed
                    && self.threads[tid].timeout_fires < self.max_timeout_fires
                    && self.mutexes[mutex].owner.is_none()
            }
            Run::BlockedJoin(t) => self.threads[t].run == Run::Finished,
            Run::Finished => false,
        }
    }

    /// Performs the wake-up transition for a chosen thread and makes
    /// it active.
    fn activate(&mut self, tid: usize) {
        match self.threads[tid].run {
            Run::Runnable => {}
            Run::BlockedMutex(m) => {
                self.mutexes[m].owner = Some(tid);
                let clock = self.mutexes[m].clock.clone();
                clock_join(&mut self.threads[tid].clock, &clock);
                self.threads[tid].run = Run::Runnable;
            }
            Run::BlockedCv { mutex, .. } => {
                // A timed waiter scheduled directly: its timeout fires
                // and it reacquires the mutex (enabled ⇒ free).
                self.mutexes[mutex].owner = Some(tid);
                let clock = self.mutexes[mutex].clock.clone();
                clock_join(&mut self.threads[tid].clock, &clock);
                self.threads[tid].timed_out = true;
                self.threads[tid].timeout_fires += 1;
                self.threads[tid].run = Run::Runnable;
            }
            Run::BlockedJoin(t) => {
                let clock = self.threads[t].clock.clone();
                clock_join(&mut self.threads[tid].clock, &clock);
                self.threads[tid].run = Run::Runnable;
            }
            Run::Finished => unreachable!("finished threads are never activated"),
        }
        self.active = tid;
    }

    /// Chooses and activates the next thread. `current` is the thread
    /// making a non-blocking schedule point (it stays runnable and is
    /// charged a preemption if passed over); `None` means the caller
    /// just blocked or finished. Returns `false` on deadlock.
    fn pick_next(&mut self, current: Option<usize>) -> bool {
        let enabled: Vec<usize> =
            (0..self.threads.len()).filter(|&t| self.enabled(t)).collect();
        if enabled.is_empty() {
            if self.threads.iter().any(|t| t.run != Run::Finished) {
                self.failure.get_or_insert_with(|| {
                    let blocked: Vec<String> = self
                        .threads
                        .iter()
                        .enumerate()
                        .filter(|(_, t)| t.run != Run::Finished)
                        .map(|(i, t)| format!("thread {i}: {:?}", t.run))
                        .collect();
                    format!("deadlock: every live thread is blocked ({})", blocked.join(", "))
                });
                self.abort = true;
            }
            return false;
        }
        let options = match current {
            Some(tid)
                if self.preemptions >= self.max_preemptions && enabled.contains(&tid) =>
            {
                vec![tid]
            }
            _ => enabled,
        };
        let chosen = options[self.decide(options.len())];
        if let Some(tid) = current {
            if chosen != tid {
                self.preemptions += 1;
            }
        }
        self.activate(chosen);
        true
    }
}

fn abort_now() -> ! {
    std::panic::panic_any(Abort)
}

/// Parks the calling controlled thread until it becomes active again.
fn park(rt: &Rt, tid: usize) {
    let mut st = rt.lock();
    loop {
        if st.abort {
            drop(st);
            abort_now();
        }
        if st.active == tid && st.threads[tid].run == Run::Runnable {
            return;
        }
        st = rt.cv.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner);
    }
}

/// A schedule point before a visible operation: lets the explorer run
/// any other enabled thread first.
fn op_point(rt: &Rt, tid: usize) {
    let mut st = rt.lock();
    if st.abort {
        drop(st);
        abort_now();
    }
    st.tick(tid);
    if !st.pick_next(Some(tid)) {
        drop(st);
        abort_now();
    }
    let switched = st.active != tid;
    drop(st);
    if switched {
        rt.cv.notify_all();
        park(rt, tid);
    }
}

/// Blocks the calling thread (its `run` state must already be set to a
/// blocked variant) and parks until it is scheduled again.
fn block(rt: &Rt, mut st: std::sync::MutexGuard<'_, RtState>, tid: usize) {
    if !st.pick_next(None) {
        drop(st);
        abort_now();
    }
    drop(st);
    rt.cv.notify_all();
    park(rt, tid);
}

fn resolve<F: FnOnce(&mut RtState) -> usize>(
    st: &mut RtState,
    token: &ObjToken,
    epoch: u64,
    alloc: F,
) -> usize {
    let mut slot = token.slot.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    match *slot {
        Some((e, id)) if e == epoch => id,
        _ => {
            let id = alloc(st);
            *slot = Some((epoch, id));
            id
        }
    }
}

fn location_id(st: &mut RtState, token: &ObjToken, epoch: u64, initial: u64) -> usize {
    resolve(st, token, epoch, |st| {
        st.locations.push(Location {
            stores: vec![StoreRec {
                value: initial,
                hb: Vec::new(),
                msg: Vec::new(),
                release: false,
            }],
            seen: Vec::new(),
        });
        st.locations.len() - 1
    })
}

fn is_acquire(ord: Ordering) -> bool {
    matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_release(ord: Ordering) -> bool {
    matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

fn seen_floor(loc: &Location, tid: usize) -> usize {
    loc.seen.get(tid).copied().unwrap_or(0)
}

fn note_seen(loc: &mut Location, tid: usize, index: usize) {
    if loc.seen.len() <= tid {
        loc.seen.resize(tid + 1, 0);
    }
    loc.seen[tid] = loc.seen[tid].max(index);
}

/// An atomic load: picks (as an explored decision) any store not ruled
/// out by happens-before supersession or per-thread coherence.
pub(crate) fn atomic_load(token: &ObjToken, initial: u64, ord: Ordering) -> u64 {
    let (rt, tid) = current();
    op_point(&rt, tid);
    let mut st = rt.lock();
    let loc_id = location_id(&mut st, token, rt.epoch, initial);
    let clock = st.threads[tid].clock.clone();
    let loc = &st.locations[loc_id];
    let hb_latest = loc
        .stores
        .iter()
        .rposition(|s| clock_le(&s.hb, &clock))
        .unwrap_or(0);
    let floor = hb_latest.max(seen_floor(loc, tid));
    let candidates = loc.stores.len() - floor;
    let choice = st.decide(candidates);
    // Choice 0 observes the newest store, so the common (strongest)
    // behaviour is explored first.
    let index = st.locations[loc_id].stores.len() - 1 - choice;
    note_seen(&mut st.locations[loc_id], tid, index);
    let store = &st.locations[loc_id].stores[index];
    let value = store.value;
    if is_acquire(ord) {
        let msg = store.msg.clone();
        clock_join(&mut st.threads[tid].clock, &msg);
    }
    value
}

pub(crate) fn atomic_store(token: &ObjToken, initial: u64, value: u64, ord: Ordering) {
    let (rt, tid) = current();
    op_point(&rt, tid);
    let mut st = rt.lock();
    let loc_id = location_id(&mut st, token, rt.epoch, initial);
    let hb = st.threads[tid].clock.clone();
    let release = is_release(ord);
    let msg = if release { hb.clone() } else { Vec::new() };
    let loc = &mut st.locations[loc_id];
    loc.stores.push(StoreRec { value, hb, msg, release });
    let index = loc.stores.len() - 1;
    note_seen(loc, tid, index);
}

/// An atomic read-modify-write: always reads the newest store, and
/// continues the release sequence of the store it replaces.
pub(crate) fn atomic_rmw(
    token: &ObjToken,
    initial: u64,
    ord: Ordering,
    f: impl FnOnce(u64) -> u64,
) -> u64 {
    let (rt, tid) = current();
    op_point(&rt, tid);
    let mut st = rt.lock();
    let loc_id = location_id(&mut st, token, rt.epoch, initial);
    let last = st.locations[loc_id].stores.last().expect("locations never lose stores");
    let prev = last.value;
    let last_release = last.release;
    let last_msg = last.msg.clone();
    if is_acquire(ord) {
        clock_join(&mut st.threads[tid].clock, &last_msg);
    }
    let hb = st.threads[tid].clock.clone();
    let mut msg = if is_release(ord) { hb.clone() } else { Vec::new() };
    if last_release {
        clock_join(&mut msg, &last_msg);
    }
    let release = is_release(ord) || last_release;
    let loc = &mut st.locations[loc_id];
    loc.stores.push(StoreRec { value: f(prev), hb, msg, release });
    let index = loc.stores.len() - 1;
    note_seen(loc, tid, index);
    prev
}

/// Compare-and-exchange against the newest store.
pub(crate) fn atomic_cas(
    token: &ObjToken,
    initial: u64,
    cur: u64,
    new: u64,
    ok: Ordering,
    fail: Ordering,
) -> Result<u64, u64> {
    let (rt, tid) = current();
    op_point(&rt, tid);
    let mut st = rt.lock();
    let loc_id = location_id(&mut st, token, rt.epoch, initial);
    let last_index = st.locations[loc_id].stores.len() - 1;
    let last = &st.locations[loc_id].stores[last_index];
    let prev = last.value;
    let last_release = last.release;
    let last_msg = last.msg.clone();
    if prev != cur {
        note_seen(&mut st.locations[loc_id], tid, last_index);
        if is_acquire(fail) {
            clock_join(&mut st.threads[tid].clock, &last_msg);
        }
        return Err(prev);
    }
    if is_acquire(ok) {
        clock_join(&mut st.threads[tid].clock, &last_msg);
    }
    let hb = st.threads[tid].clock.clone();
    let mut msg = if is_release(ok) { hb.clone() } else { Vec::new() };
    if last_release {
        clock_join(&mut msg, &last_msg);
    }
    let release = is_release(ok) || last_release;
    let loc = &mut st.locations[loc_id];
    loc.stores.push(StoreRec { value: new, hb, msg, release });
    let index = loc.stores.len() - 1;
    note_seen(loc, tid, index);
    Ok(prev)
}

fn mutex_id(st: &mut RtState, token: &ObjToken, epoch: u64) -> usize {
    resolve(st, token, epoch, |st| {
        st.mutexes.push(MutexSt { owner: None, clock: Vec::new() });
        st.mutexes.len() - 1
    })
}

/// Model-level mutex acquisition; blocks until the mutex is free.
pub(crate) fn mutex_lock(token: &ObjToken) -> usize {
    let (rt, tid) = current();
    op_point(&rt, tid);
    let mut st = rt.lock();
    let id = mutex_id(&mut st, token, rt.epoch);
    if st.mutexes[id].owner.is_none() {
        st.mutexes[id].owner = Some(tid);
        let clock = st.mutexes[id].clock.clone();
        clock_join(&mut st.threads[tid].clock, &clock);
    } else {
        st.threads[tid].run = Run::BlockedMutex(id);
        block(&rt, st, tid);
    }
    id
}

/// Model-level mutex release. Safe to call while unwinding (performs
/// a best-effort release without scheduling).
pub(crate) fn mutex_unlock(id: usize) {
    if !in_model() {
        return;
    }
    let (rt, tid) = current();
    if std::thread::panicking() {
        let mut st = rt.lock();
        if st.mutexes.get(id).is_some_and(|m| m.owner == Some(tid)) {
            st.mutexes[id].owner = None;
        }
        drop(st);
        rt.cv.notify_all();
        return;
    }
    op_point(&rt, tid);
    let mut st = rt.lock();
    st.tick(tid);
    let clock = st.threads[tid].clock.clone();
    clock_join(&mut st.mutexes[id].clock, &clock);
    st.mutexes[id].owner = None;
    drop(st);
    rt.cv.notify_all();
}

fn condvar_id(st: &mut RtState, token: &ObjToken, epoch: u64) -> usize {
    resolve(st, token, epoch, |st| {
        st.condvars += 1;
        st.condvars - 1
    })
}

/// Releases `mutex`, waits on the condvar, reacquires `mutex`.
/// Returns whether the (modeled) timeout fired for timed waits.
pub(crate) fn condvar_wait(token: &ObjToken, mutex: usize, timed: bool) -> bool {
    let (rt, tid) = current();
    op_point(&rt, tid);
    let mut st = rt.lock();
    let cv = condvar_id(&mut st, token, rt.epoch);
    st.tick(tid);
    let clock = st.threads[tid].clock.clone();
    clock_join(&mut st.mutexes[mutex].clock, &clock);
    st.mutexes[mutex].owner = None;
    st.threads[tid].timed_out = false;
    st.threads[tid].run = Run::BlockedCv { cv, mutex, timed };
    block(&rt, st, tid);
    let st = rt.lock();
    st.threads[tid].timed_out
}

/// Wakes one (explored choice) or all waiters of the condvar.
pub(crate) fn condvar_notify(token: &ObjToken, all: bool) {
    let (rt, tid) = current();
    op_point(&rt, tid);
    let mut st = rt.lock();
    let cv = condvar_id(&mut st, token, rt.epoch);
    let waiters: Vec<usize> = st
        .threads
        .iter()
        .enumerate()
        .filter(|(_, t)| matches!(t.run, Run::BlockedCv { cv: c, .. } if c == cv))
        .map(|(i, _)| i)
        .collect();
    if waiters.is_empty() {
        return;
    }
    let chosen: Vec<usize> = if all {
        waiters
    } else {
        let pick = st.decide(waiters.len());
        vec![waiters[pick]]
    };
    for tid in chosen {
        if let Run::BlockedCv { mutex, .. } = st.threads[tid].run {
            st.threads[tid].run = Run::BlockedMutex(mutex);
        }
    }
}

/// Registers and starts a controlled child thread running `f`.
pub(crate) fn spawn<T: Send + 'static>(
    f: impl FnOnce() -> T + Send + 'static,
) -> (usize, std::thread::JoinHandle<Option<T>>) {
    let (rt, tid) = current();
    op_point(&rt, tid);
    let child = {
        let mut st = rt.lock();
        let child = st.threads.len();
        let mut clock = st.threads[tid].clock.clone();
        if clock.len() <= child {
            clock.resize(child + 1, 0);
        }
        clock[child] += 1;
        st.threads.push(ThreadSt {
            run: Run::Runnable,
            clock,
            timed_out: false,
            timeout_fires: 0,
        });
        st.live += 1;
        child
    };
    let rt_child = Arc::clone(&rt);
    let handle = std::thread::spawn(move || {
        set_current(Some((Arc::clone(&rt_child), child)));
        park(&rt_child, child);
        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
        // Failed executions return None; the model is abandoned anyway.
        let (value, panic) = match out {
            Ok(value) => (Some(value), None),
            Err(payload) => (None, Some(payload)),
        };
        finish_thread(&rt_child, child, panic);
        set_current(None);
        value
    });
    (child, handle)
}

/// Blocks until thread `target` finishes (join edge included).
pub(crate) fn join(target: usize) {
    let (rt, tid) = current();
    op_point(&rt, tid);
    let mut st = rt.lock();
    if st.threads[target].run == Run::Finished {
        let clock = st.threads[target].clock.clone();
        clock_join(&mut st.threads[tid].clock, &clock);
    } else {
        st.threads[tid].run = Run::BlockedJoin(target);
        block(&rt, st, tid);
    }
}

/// A pure schedule point.
pub(crate) fn yield_now() {
    let (rt, tid) = current();
    op_point(&rt, tid);
}

/// Marks the calling thread finished, records a failure if it panicked,
/// and hands the schedule to the next enabled thread.
fn finish_thread(rt: &Rt, tid: usize, panic: Option<Box<dyn std::any::Any + Send>>) {
    let mut st = rt.lock();
    if let Some(payload) = panic {
        if !payload.is::<Abort>() {
            let message = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_owned()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "thread panicked with a non-string payload".to_owned()
            };
            st.failure.get_or_insert(message);
            st.abort = true;
        }
    }
    st.threads[tid].run = Run::Finished;
    st.live -= 1;
    if st.live > 0 && !st.abort {
        st.pick_next(None);
    }
    drop(st);
    rt.cv.notify_all();
}

/// Runs one execution of `f` with the given replay prefix; returns the
/// explored decision path and the failure, if any.
fn run_one(
    f: &Arc<dyn Fn() + Send + Sync>,
    prefix: Vec<Choice>,
    max_preemptions: usize,
    max_timeout_fires: usize,
    epoch: u64,
) -> (Vec<Choice>, Option<String>) {
    let rt = Arc::new(Rt::new(prefix, max_preemptions, max_timeout_fires, epoch));
    {
        let mut st = rt.lock();
        st.threads.push(ThreadSt {
            run: Run::Runnable,
            clock: vec![1],
            timed_out: false,
            timeout_fires: 0,
        });
        st.live = 1;
        st.active = 0;
    }
    let rt_root = Arc::clone(&rt);
    let f = Arc::clone(f);
    let root = std::thread::spawn(move || {
        set_current(Some((Arc::clone(&rt_root), 0)));
        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f()));
        finish_thread(&rt_root, 0, out.err());
        set_current(None);
    });
    // Wait until every controlled thread has finished. Spawned threads
    // belong to this execution even when their JoinHandle is leaked.
    {
        let mut st = rt.lock();
        while st.live > 0 {
            st = rt.cv.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
    root.join().ok();
    let st = rt.lock();
    (st.path.clone(), st.failure.clone())
}

/// Drops exhausted trailing decisions and advances the deepest
/// non-exhausted one. Returns `false` when the space is exhausted.
fn backtrack(path: &mut Vec<Choice>) -> bool {
    while let Some(last) = path.pop() {
        if last.chosen + 1 < last.total {
            path.push(Choice { chosen: last.chosen + 1, total: last.total });
            return true;
        }
    }
    false
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Process-global execution counter: epochs must be unique across
/// *all* models in the process, because `static` atomics keep their
/// [`ObjToken`] between models.
static NEXT_EPOCH: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

/// Explores every schedule of `f` within the preemption bound
/// (`LOOM_MAX_PREEMPTIONS`, default 3) up to the execution budget
/// (`LOOM_MAX_ITERATIONS`, default 200000). Panics with the failing
/// execution's message when any schedule fails.
pub(crate) fn explore(f: Arc<dyn Fn() + Send + Sync>) {
    let max_preemptions = env_usize("LOOM_MAX_PREEMPTIONS", 3);
    let max_timeout_fires = env_usize("LOOM_MAX_TIMEOUT_FIRES", 2);
    let max_iterations = env_usize("LOOM_MAX_ITERATIONS", 200_000);
    let mut path: Vec<Choice> = Vec::new();
    let mut executions: usize = 0;
    loop {
        executions += 1;
        let epoch = NEXT_EPOCH.fetch_add(1, Ordering::Relaxed);
        let (explored, failure) =
            run_one(&f, path, max_preemptions, max_timeout_fires, epoch);
        if let Some(message) = failure {
            panic!(
                "loom: model failed after {executions} execution(s): {message}"
            );
        }
        path = explored;
        if !backtrack(&mut path) {
            break;
        }
        if executions >= max_iterations {
            eprintln!(
                "loom: stopping after {executions} executions \
                 (LOOM_MAX_ITERATIONS budget); exploration is incomplete"
            );
            break;
        }
    }
    if std::env::var("LOOM_LOG").is_ok() {
        eprintln!("loom: explored {executions} execution(s)");
    }
}
