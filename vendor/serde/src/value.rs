//! The self-describing value tree (JSON data model) this serde subset
//! pivots on, plus the [`ValueSerializer`]/[`ValueDeserializer`] bridges
//! used by derived code and `#[serde(with)]` modules.

use std::fmt;
use std::ops::Index;

use crate::{Deserializer, Error, Serializer};

/// A JSON number: integers keep their exact representation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A floating-point number.
    Float(f64),
}

impl Number {
    /// Creates a number from a `u64`.
    pub fn from_u64(n: u64) -> Self {
        Number::PosInt(n)
    }

    /// Creates a number from an `i64`.
    pub fn from_i64(n: i64) -> Self {
        if n >= 0 {
            Number::PosInt(n as u64)
        } else {
            Number::NegInt(n)
        }
    }

    /// Creates a number from an `f64`. Integral finite floats collapse to
    /// integers so that round-trips are stable.
    pub fn from_f64(f: f64) -> Self {
        Number::Float(f)
    }

    /// The value as `f64`.
    pub fn as_f64(self) -> f64 {
        match self {
            Number::PosInt(n) => n as f64,
            Number::NegInt(n) => n as f64,
            Number::Float(f) => f,
        }
    }

    /// The value as `u64`, if exactly representable.
    pub fn as_u64(self) -> Option<u64> {
        match self {
            Number::PosInt(n) => Some(n),
            Number::NegInt(_) => None,
            Number::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            Number::Float(_) => None,
        }
    }

    /// The value as `i64`, if exactly representable.
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Number::PosInt(n) => i64::try_from(n).ok(),
            Number::NegInt(n) => Some(n),
            Number::Float(f)
                if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 =>
            {
                Some(f as i64)
            }
            Number::Float(_) => None,
        }
    }
}

/// A self-describing value: the JSON data model.
///
/// Objects preserve insertion order so that serialised output is stable.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered list.
    Array(Vec<Value>),
    /// A key-value map preserving insertion order.
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// A short name for the value's shape (used in error messages).
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Returns `true` for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Returns `true` for arrays.
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    /// Returns `true` for objects.
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    /// The value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The value as `u64`, if it is an exactly representable number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as `i64`, if it is an exactly representable number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `bool`, if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if the value is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The entries, if the value is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Looks up a field of an object.
    pub fn get_field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => {
                entries.iter().find(|(k, _)| k == name).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// Looks up an object field or array index, like `serde_json`'s
    /// `Value::get`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.get_field(key)
    }
}

impl Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get_field(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

impl fmt::Display for Value {
    /// Compact JSON rendering (format details live in `serde_json`, but a
    /// `Display` keeps diagnostics readable).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(Number::PosInt(n)) => write!(f, "{n}"),
            Value::Number(Number::NegInt(n)) => write!(f, "{n}"),
            Value::Number(Number::Float(x)) => write!(f, "{x}"),
            Value::String(s) => write!(f, "{s:?}"),
            Value::Array(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Value::Object(entries) => {
                write!(f, "{{")?;
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{k:?}:{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// A [`Serializer`] that yields the rendered [`Value`] directly. Derived
/// code uses it to route `#[serde(with = "module")]` fields.
#[derive(Debug, Clone, Copy, Default)]
pub struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = Error;

    fn serialize_value(self, value: Value) -> Result<Value, Error> {
        Ok(value)
    }
}

/// A [`Deserializer`] over a borrowed [`Value`]. Derived code uses it to
/// route `#[serde(with = "module")]` fields.
#[derive(Debug, Clone, Copy)]
pub struct ValueDeserializer<'a>(&'a Value);

impl<'a> ValueDeserializer<'a> {
    /// Wraps a value tree.
    pub fn new(value: &'a Value) -> Self {
        Self(value)
    }
}

impl<'de, 'a> Deserializer<'de> for ValueDeserializer<'a> {
    type Error = Error;

    fn take_value(self) -> Result<Value, Error> {
        Ok(self.0.clone())
    }
}
