//! Offline, API-compatible subset of `serde`.
//!
//! The build environment has no access to crates.io, so this vendored
//! stand-in implements the slice of serde the workspace uses. Instead of
//! serde's visitor-based data model it pivots on a single self-describing
//! [`Value`] tree (the JSON data model): [`Serialize`] renders a value
//! tree, [`Deserialize`] rebuilds a type from one, and the
//! [`Serializer`]/[`Deserializer`] traits bridge both to format crates
//! (`serde_json`) and to `#[serde(with = "module")]` field overrides.
//!
//! Supported derive attributes: `#[serde(transparent)]` and
//! `#[serde(with = "path")]`. Enums use serde's external tagging: unit
//! variants serialise as strings, payload variants as one-entry objects.

#![warn(missing_docs)]

pub mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{Number, Value};

use std::fmt;

/// A serialisation or deserialisation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error with a custom message.
    pub fn custom(message: impl fmt::Display) -> Self {
        Self(message.to_string())
    }

    /// Error for a field missing from an object.
    pub fn missing_field(container: &str, field: &str) -> Self {
        Self(format!("missing field `{field}` in `{container}`"))
    }

    /// Error for a value whose shape does not match the target type.
    pub fn invalid_type(expected: &str, found: &Value) -> Self {
        Self(format!("invalid type: expected {expected}, found {}", found.kind()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// A type that can render itself as a [`Value`] tree.
pub trait Serialize {
    /// Renders the value tree.
    fn to_value(&self) -> Value;

    /// Serialises through a [`Serializer`] (bridge used by
    /// `#[serde(with)]` modules and format crates).
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(self.to_value())
    }
}

/// A sink that consumes one [`Value`] tree.
pub trait Serializer: Sized {
    /// Successful output.
    type Ok;
    /// Failure type.
    type Error;

    /// Consumes the rendered value.
    fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;
}

/// A type that can rebuild itself from a [`Value`] tree.
///
/// The lifetime parameter exists for signature compatibility with real
/// serde; this subset always deserialises from owned value trees.
pub trait Deserialize<'de>: Sized {
    /// Rebuilds the type from a value tree.
    fn from_value(value: &Value) -> Result<Self, Error>;

    /// Deserialises through a [`Deserializer`] (bridge used by
    /// `#[serde(with)]` modules and format crates).
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let value = deserializer.take_value()?;
        Self::from_value(&value).map_err(<D::Error as de::Error>::from_custom)
    }
}

/// A source that produces one [`Value`] tree.
pub trait Deserializer<'de>: Sized {
    /// Failure type.
    type Error: de::Error;

    /// Produces the value tree to deserialise from.
    fn take_value(self) -> Result<Value, Self::Error>;
}

/// Deserialisation support traits (subset of `serde::de`).
pub mod de {
    use super::Value;

    /// Errors a [`super::Deserializer`] can produce.
    pub trait Error: Sized {
        /// Wraps a data-shape error raised by a `from_value`
        /// implementation.
        fn from_custom(error: super::Error) -> Self;
    }

    impl Error for super::Error {
        fn from_custom(error: super::Error) -> Self {
            error
        }
    }

    /// A type deserialisable from an owned value tree.
    pub trait DeserializeOwned: for<'de> super::Deserialize<'de> {}
    impl<T: for<'de> super::Deserialize<'de>> DeserializeOwned for T {}

    /// Rebuilds any deserialisable type directly from a [`Value`].
    pub fn from_value_ref<T: DeserializeOwned>(value: &Value) -> Result<T, super::Error> {
        T::from_value(value)
    }
}

/// Serialisation support types (subset of `serde::ser`).
pub mod ser {
    pub use super::{Error, Serialize, Serializer};
}

// ---------------------------------------------------------------------
// Serialize / Deserialize implementations for std types.
// ---------------------------------------------------------------------

macro_rules! ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from_u64(*self as u64))
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = value
                    .as_u64()
                    .ok_or_else(|| Error::invalid_type("unsigned integer", value))?;
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from_i64(*self as i64))
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = value
                    .as_i64()
                    .ok_or_else(|| Error::invalid_type("integer", value))?;
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

ser_de_uint!(u8, u16, u32, u64, usize);
ser_de_int!(i8, i16, i32, i64, isize);

macro_rules! ser_de_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from_f64(*self as f64))
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                value
                    .as_f64()
                    .map(|f| f as $t)
                    .ok_or_else(|| Error::invalid_type("number", value))
            }
        }
    )*};
}

ser_de_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::invalid_type("boolean", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::invalid_type("string", other)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::invalid_type("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! ser_de_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Array(items) => {
                        let expected = [$($idx),+].len();
                        if items.len() != expected {
                            return Err(Error::custom(format!(
                                "expected a {expected}-tuple, found {} elements",
                                items.len()
                            )));
                        }
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(Error::invalid_type("tuple array", other)),
                }
            }
        }
    )*};
}

ser_de_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<'de> Deserialize<'de> for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}
