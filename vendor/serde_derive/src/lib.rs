//! Offline derive macros for the vendored `serde` subset.
//!
//! The build environment has no access to crates.io, so this crate
//! hand-parses the item token stream (no `syn`/`quote`) and emits
//! `Serialize`/`Deserialize` impls as source text. It supports the shapes
//! the workspace actually uses:
//!
//! - structs with named fields (serialised as objects, declaration order)
//! - tuple structs (single field: the inner value; several: an array)
//! - enums with unit and tuple variants (external tagging)
//! - `#[serde(transparent)]`, `#[serde(with = "path")]` and
//!   `#[serde(default)]` on named fields (missing field deserialises to
//!   `Default::default()`, enabling backward-compatible format evolution)
//!
//! Unsupported shapes (generics, struct variants) fail loudly at expansion
//! time rather than producing wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate(&item, Direction::Serialize)
        .parse()
        .expect("derived Serialize impl parses")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate(&item, Direction::Deserialize)
        .parse()
        .expect("derived Deserialize impl parses")
}

enum Direction {
    Serialize,
    Deserialize,
}

struct Item {
    name: String,
    transparent: bool,
    body: Body,
}

enum Body {
    /// Named fields: `(name, with_path)` per field, declaration order.
    NamedStruct(Vec<Field>),
    /// Tuple struct: number of fields.
    TupleStruct(usize),
    /// Unit struct.
    UnitStruct,
    /// Enum: `(variant name, payload arity)`; arity 0 is a unit variant.
    Enum(Vec<(String, usize)>),
}

struct Field {
    name: String,
    with: Option<String>,
    default: bool,
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

/// Consumes leading `#[...]` attributes, returning the `with` path and
/// whether `#[serde(transparent)]` / `#[serde(default)]` were present.
fn take_attrs(tokens: &[TokenTree], mut pos: usize) -> (usize, bool, Option<String>, bool) {
    let mut transparent = false;
    let mut with = None;
    let mut default = false;
    while pos + 1 < tokens.len() {
        match (&tokens[pos], &tokens[pos + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                if let [TokenTree::Ident(id), TokenTree::Group(args)] = &inner[..] {
                    if id.to_string() == "serde" {
                        parse_serde_attr(args.stream(), &mut transparent, &mut with, &mut default);
                    }
                }
                pos += 2;
            }
            _ => break,
        }
    }
    (pos, transparent, with, default)
}

fn parse_serde_attr(
    args: TokenStream,
    transparent: &mut bool,
    with: &mut Option<String>,
    default: &mut bool,
) {
    let tokens: Vec<TokenTree> = args.into_iter().collect();
    match &tokens[..] {
        [TokenTree::Ident(id)] if id.to_string() == "transparent" => *transparent = true,
        [TokenTree::Ident(id)] if id.to_string() == "default" => *default = true,
        [TokenTree::Ident(id), TokenTree::Punct(eq), TokenTree::Literal(path)]
            if id.to_string() == "with" && eq.as_char() == '=' =>
        {
            let raw = path.to_string();
            *with = Some(raw.trim_matches('"').to_string());
        }
        other => panic!("unsupported #[serde(...)] attribute: {other:?}"),
    }
}

/// Skips `pub` / `pub(...)` / `crate` visibility tokens.
fn skip_visibility(tokens: &[TokenTree], mut pos: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(pos) {
        if id.to_string() == "pub" {
            pos += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(pos) {
                if g.delimiter() == Delimiter::Parenthesis {
                    pos += 1;
                }
            }
        }
    }
    pos
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (pos, transparent, _, _) = take_attrs(&tokens, 0);
    let pos = skip_visibility(&tokens, pos);

    let kind = match &tokens[pos] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other}"),
    };
    let name = match &tokens[pos + 1] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, found {other}"),
    };
    if let Some(TokenTree::Punct(p)) = tokens.get(pos + 2) {
        if p.as_char() == '<' {
            panic!("derive(Serialize/Deserialize) does not support generic type `{name}`");
        }
    }

    let body = match (kind.as_str(), tokens.get(pos + 2)) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Body::NamedStruct(parse_named_fields(g.stream()))
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Body::TupleStruct(count_tuple_fields(g.stream()))
        }
        ("struct", Some(TokenTree::Punct(p))) if p.as_char() == ';' => Body::UnitStruct,
        ("struct", None) => Body::UnitStruct,
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Body::Enum(parse_variants(g.stream()))
        }
        _ => panic!("unsupported item shape for `{name}`"),
    };

    Item { name, transparent, body }
}

/// Splits a brace/paren group body on top-level commas; commas nested in
/// groups arrive pre-bracketed, but `<...>` generics are raw puncts, so
/// angle depth is tracked explicitly (e.g. `Vec<BTreeMap<(PeId, T), usize>>`).
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut parts = vec![Vec::new()];
    let mut angle_depth = 0usize;
    for token in stream {
        if let TokenTree::Punct(p) = &token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => {
                    parts.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        parts.last_mut().expect("non-empty parts").push(token);
    }
    if parts.last().map(Vec::is_empty) == Some(true) {
        parts.pop();
    }
    parts
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    split_top_level(stream)
        .into_iter()
        .map(|tokens| {
            let (pos, _, with, default) = take_attrs(&tokens, 0);
            let pos = skip_visibility(&tokens, pos);
            let name = match &tokens[pos] {
                TokenTree::Ident(id) => id.to_string(),
                other => panic!("expected field name, found {other}"),
            };
            Field { name, with, default }
        })
        .collect()
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    split_top_level(stream).len()
}

fn parse_variants(stream: TokenStream) -> Vec<(String, usize)> {
    split_top_level(stream)
        .into_iter()
        .map(|tokens| {
            let (pos, _, _, _) = take_attrs(&tokens, 0);
            let name = match &tokens[pos] {
                TokenTree::Ident(id) => id.to_string(),
                other => panic!("expected variant name, found {other}"),
            };
            let arity = match tokens.get(pos + 1) {
                None => 0,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    count_tuple_fields(g.stream())
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    panic!("struct variant `{name}` is not supported by the vendored derive")
                }
                Some(other) => panic!("unsupported variant shape after `{name}`: {other}"),
            };
            (name, arity)
        })
        .collect()
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

fn generate(item: &Item, direction: Direction) -> String {
    match direction {
        Direction::Serialize => generate_serialize(item),
        Direction::Deserialize => generate_deserialize(item),
    }
}

fn generate_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::NamedStruct(fields) if item.transparent && fields.len() == 1 => {
            format!("::serde::Serialize::to_value(&self.{})", fields[0].name)
        }
        Body::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    let expr = match &f.with {
                        Some(path) => format!(
                            "{path}::serialize(&self.{field}, ::serde::value::ValueSerializer)\
                             .expect(\"with-module serialization failed\")",
                            field = f.name
                        ),
                        None => format!("::serde::Serialize::to_value(&self.{})", f.name),
                    };
                    format!("(\"{}\".to_string(), {expr})", f.name)
                })
                .collect();
            format!("::serde::Value::Object(vec![{}])", entries.join(", "))
        }
        Body::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Body::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Body::UnitStruct => "::serde::Value::Null".to_string(),
        Body::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(variant, arity)| match arity {
                    0 => format!(
                        "{name}::{variant} => ::serde::Value::String(\"{variant}\".to_string())"
                    ),
                    1 => format!(
                        "{name}::{variant}(f0) => ::serde::Value::Object(vec![\
                         (\"{variant}\".to_string(), ::serde::Serialize::to_value(f0))])"
                    ),
                    n => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                            .collect();
                        format!(
                            "{name}::{variant}({binders}) => ::serde::Value::Object(vec![\
                             (\"{variant}\".to_string(), ::serde::Value::Array(vec![{items}]))])",
                            binders = binders.join(", "),
                            items = items.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         \tfn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn generate_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::NamedStruct(fields) if item.transparent && fields.len() == 1 => {
            format!(
                "Ok(Self {{ {}: ::serde::Deserialize::from_value(value)? }})",
                fields[0].name
            )
        }
        Body::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    if f.default {
                        // `#[serde(default)]`: a missing field is not an
                        // error, it takes the type's `Default` value.
                        return format!(
                            "{field}: match value.get_field(\"{field}\") {{ \
                             Some(v) => ::serde::Deserialize::from_value(v)?, \
                             None => ::core::default::Default::default() }}",
                            field = f.name
                        );
                    }
                    let access = format!(
                        "value.get_field(\"{field}\").ok_or_else(|| \
                         ::serde::Error::missing_field(\"{name}\", \"{field}\"))?",
                        field = f.name
                    );
                    match &f.with {
                        Some(path) => format!(
                            "{field}: {path}::deserialize(\
                             ::serde::value::ValueDeserializer::new({access}))?",
                            field = f.name
                        ),
                        None => format!(
                            "{field}: ::serde::Deserialize::from_value({access})?",
                            field = f.name
                        ),
                    }
                })
                .collect();
            format!(
                "if !value.is_object() {{ \
                 return Err(::serde::Error::invalid_type(\"object\", value)); }} \
                 Ok(Self {{ {} }})",
                inits.join(", ")
            )
        }
        Body::TupleStruct(1) => "Ok(Self(::serde::Deserialize::from_value(value)?))".to_string(),
        Body::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])"))
                .map(|expr| format!("{expr}?"))
                .collect();
            format!(
                "match value {{ \
                 ::serde::Value::Array(items) if items.len() == {n} => Ok(Self({items})), \
                 other => Err(::serde::Error::invalid_type(\"{n}-element array\", other)) }}",
                items = items.join(", ")
            )
        }
        Body::UnitStruct => "Ok(Self)".to_string(),
        Body::Enum(variants) => generate_enum_deserialize(name, variants),
    };
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
         \tfn from_value(value: &::serde::Value) -> Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    )
}

fn generate_enum_deserialize(name: &str, variants: &[(String, usize)]) -> String {
    let unknown = format!(
        "other => Err(::serde::Error::custom(\
         format!(\"unknown variant `{{other}}` of `{name}`\")))"
    );

    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|(_, arity)| *arity == 0)
        .map(|(variant, _)| format!("\"{variant}\" => Ok({name}::{variant})"))
        .collect();
    let payload_arms: Vec<String> = variants
        .iter()
        .filter(|(_, arity)| *arity > 0)
        .map(|(variant, arity)| match arity {
            1 => format!(
                "\"{variant}\" => Ok({name}::{variant}(\
                 ::serde::Deserialize::from_value(payload)?))"
            ),
            n => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                    .collect();
                format!(
                    "\"{variant}\" => match payload {{ \
                     ::serde::Value::Array(items) if items.len() == {n} => \
                     Ok({name}::{variant}({items})), \
                     other => Err(::serde::Error::invalid_type(\
                     \"{n}-element array\", other)) }}",
                    items = items.join(", ")
                )
            }
        })
        .collect();

    let mut arms = Vec::new();
    if !unit_arms.is_empty() {
        arms.push(format!(
            "::serde::Value::String(s) => match s.as_str() {{ {}, {unknown} }}",
            unit_arms.join(", ")
        ));
    }
    if !payload_arms.is_empty() {
        arms.push(format!(
            "::serde::Value::Object(entries) if entries.len() == 1 => {{ \
             let (tag, payload) = &entries[0]; \
             match tag.as_str() {{ {}, {unknown} }} }}",
            payload_arms.join(", ")
        ));
    }
    arms.push(format!(
        "other => Err(::serde::Error::invalid_type(\"`{name}` variant\", other))"
    ));
    format!("match value {{ {} }}", arms.join(", "))
}
