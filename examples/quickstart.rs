//! Quickstart: build a small two-mode system, synthesise it with and
//! without mode execution probabilities, and compare the average power.
//!
//! Run with: `cargo run --example quickstart`

use momsynth::model::units::{Cells, Seconds, Volts, Watts};
use momsynth::model::{
    ArchitectureBuilder, Cl, DvsCapability, Implementation, OmsmBuilder, Pe, PeKind, System,
    TaskGraphBuilder, TechLibraryBuilder,
};
use momsynth::synthesis::{SynthesisConfig, Synthesizer};

fn build_system() -> Result<System, Box<dyn std::error::Error>> {
    // Technology library: three coarse-grained task types.
    let mut tech = TechLibraryBuilder::new();
    let fft = tech.add_type("FFT");
    let fir = tech.add_type("FIR");
    let ctl = tech.add_type("CTRL");

    // Architecture: a DVS-enabled CPU and an ASIC on one bus.
    let mut arch = ArchitectureBuilder::new();
    let cpu = arch.add_pe(
        Pe::software("CPU", PeKind::Gpp, Watts::from_milli(0.5)).with_dvs(DvsCapability::new(
            Volts::new(3.3),
            Volts::new(0.8),
            vec![Volts::new(1.2), Volts::new(1.8), Volts::new(2.4), Volts::new(3.3)],
        )),
    );
    let asic = arch.add_pe(Pe::hardware(
        "ASIC",
        PeKind::Asic,
        Cells::new(600),
        Watts::from_milli(1.5),
    ));
    arch.add_cl(Cl::bus(
        "BUS",
        vec![cpu, asic],
        Seconds::from_micros(1.0),
        Watts::from_milli(2.0),
        Watts::from_milli(0.3),
    ))?;

    // Implementation alternatives: hardware is much faster and cheaper per
    // execution, but keeps the ASIC (and bus) powered.
    tech.set_impl(
        fft,
        cpu,
        Implementation::software(Seconds::from_millis(12.0), Watts::from_milli(300.0)),
    );
    tech.set_impl(
        fft,
        asic,
        Implementation::hardware(Seconds::from_millis(0.8), Watts::from_milli(8.0), Cells::new(280)),
    );
    tech.set_impl(
        fir,
        cpu,
        Implementation::software(Seconds::from_millis(8.0), Watts::from_milli(250.0)),
    );
    tech.set_impl(
        fir,
        asic,
        Implementation::hardware(Seconds::from_millis(0.5), Watts::from_milli(6.0), Cells::new(220)),
    );
    tech.set_impl(
        ctl,
        cpu,
        Implementation::software(Seconds::from_millis(2.0), Watts::from_milli(120.0)),
    );

    // Mode "active" (10% of the time): FFT -> FIR -> CTRL per 30 ms frame.
    let mut active = TaskGraphBuilder::new("active", Seconds::from_millis(30.0));
    let a_fft = active.add_task("fft", fft);
    let a_fir = active.add_task("fir", fir);
    let a_ctl = active.add_task("ctrl", ctl);
    active.add_comm(a_fft, a_fir, 128.0)?;
    active.add_comm(a_fir, a_ctl, 32.0)?;

    // Mode "monitor" (90% of the time): a single FIR + CTRL per 50 ms.
    let mut monitor = TaskGraphBuilder::new("monitor", Seconds::from_millis(50.0));
    let m_fir = monitor.add_task("fir", fir);
    let m_ctl = monitor.add_task("ctrl", ctl);
    monitor.add_comm(m_fir, m_ctl, 32.0)?;

    let mut omsm = OmsmBuilder::new();
    let m_active = omsm.add_mode("active", 0.1, active.build()?);
    let m_monitor = omsm.add_mode("monitor", 0.9, monitor.build()?);
    omsm.add_transition(m_active, m_monitor, Seconds::from_millis(5.0))?;
    omsm.add_transition(m_monitor, m_active, Seconds::from_millis(5.0))?;

    Ok(System::new("quickstart", omsm.build()?, arch.build()?, tech.build())?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = build_system()?;
    println!("{}\n", system.summary());

    // Proposed flow: optimise with the real usage profile, DVS enabled.
    let aware = Synthesizer::new(&system, SynthesisConfig::fast_preset(7).with_dvs()).run().expect("schedulable system");
    // Baseline: same flow, probabilities ignored during optimisation.
    let neglecting = Synthesizer::new(
        &system,
        SynthesisConfig::fast_preset(7).with_dvs().probability_neglecting(),
    )
    .run().expect("schedulable system");

    println!("probability-aware:      {:.4} mW (feasible: {})",
        aware.best.power.average.as_milli(), aware.best.is_feasible());
    println!("probability-neglecting: {:.4} mW (feasible: {})",
        neglecting.best.power.average.as_milli(), neglecting.best.is_feasible());
    println!(
        "reduction: {:.1} %\n",
        aware.best.power.reduction_vs(&neglecting.best.power)
    );

    println!("best mapping (per-mode task -> PE): {}", aware.best.mapping.mapping_string());
    for (mode, m) in system.omsm().modes() {
        let active: Vec<String> = aware
            .best
            .mapping
            .active_pes(mode)
            .iter()
            .map(|&pe| system.arch().pe(pe).name().to_owned())
            .collect();
        println!(
            "  mode {:<8} (Ψ={:.2}): powered PEs: {}",
            m.name(),
            m.probability(),
            active.join(", ")
        );
    }

    println!("\nGantt of mode `active`:");
    print!("{}", aware.best.schedules[0].to_gantt_string(&system));
    Ok(())
}
