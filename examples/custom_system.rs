//! Building a custom multi-mode system with the builder API, persisting
//! it as JSON (the whole model is serde-serialisable) and synthesising
//! the reloaded copy.
//!
//! Run with: `cargo run --example custom_system`

use momsynth::model::ids::TaskTypeId;
use momsynth::model::units::{Cells, Seconds, Watts};
use momsynth::model::{
    ArchitectureBuilder, Cl, Implementation, OmsmBuilder, Pe, PeKind, System, TaskGraphBuilder,
    TechLibraryBuilder,
};
use momsynth::synthesis::{SynthesisConfig, Synthesizer};

/// A sensor node: "sample" mode (frequent) and "burst upload" mode (rare).
fn build() -> Result<System, Box<dyn std::error::Error>> {
    let mut tech = TechLibraryBuilder::new();
    let sample: TaskTypeId = tech.add_type("sample");
    let filter = tech.add_type("filter");
    let pack = tech.add_type("pack");
    let crypto = tech.add_type("crypto");

    let mut arch = ArchitectureBuilder::new();
    let mcu = arch.add_pe(Pe::software("MCU", PeKind::Gpp, Watts::from_milli(0.2)));
    let acc = arch.add_pe(Pe::hardware(
        "CRYPTO_ACC",
        PeKind::Fpga,
        Cells::new(800),
        Watts::from_milli(0.8),
    ).with_reconfig_time_per_cell(Seconds::from_micros(2.0)));
    arch.add_cl(Cl::bus(
        "SPI",
        vec![mcu, acc],
        Seconds::from_micros(4.0),
        Watts::from_milli(1.0),
        Watts::from_milli(0.1),
    ))?;

    tech.set_impl(sample, mcu, Implementation::software(Seconds::from_millis(1.0), Watts::from_milli(50.0)));
    tech.set_impl(filter, mcu, Implementation::software(Seconds::from_millis(4.0), Watts::from_milli(150.0)));
    tech.set_impl(pack, mcu, Implementation::software(Seconds::from_millis(2.0), Watts::from_milli(100.0)));
    tech.set_impl(crypto, mcu, Implementation::software(Seconds::from_millis(18.0), Watts::from_milli(300.0)));
    tech.set_impl(
        crypto,
        acc,
        Implementation::hardware(Seconds::from_millis(0.6), Watts::from_milli(5.0), Cells::new(500)),
    );

    let mut sampling = TaskGraphBuilder::new("sampling", Seconds::from_millis(20.0));
    let s = sampling.add_task("sample", sample);
    let f = sampling.add_task("filter", filter);
    sampling.add_comm(s, f, 64.0)?;

    let mut upload = TaskGraphBuilder::new("upload", Seconds::from_millis(40.0));
    let p = upload.add_task("pack", pack);
    let c = upload.add_task("encrypt", crypto);
    upload.add_comm(p, c, 512.0)?;

    let mut omsm = OmsmBuilder::new();
    let m_sampling = omsm.add_mode("sampling", 0.97, sampling.build()?);
    let m_upload = omsm.add_mode("upload", 0.03, upload.build()?);
    omsm.add_transition(m_sampling, m_upload, Seconds::from_millis(8.0))?;
    omsm.add_transition(m_upload, m_sampling, Seconds::from_millis(8.0))?;

    Ok(System::new("sensor_node", omsm.build()?, arch.build()?, tech.build())?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = build()?;

    // Persist and reload: System (and every sub-model) round-trips through
    // serde, so specifications can live in version control as JSON.
    let path = std::env::temp_dir().join("momsynth_sensor_node.json");
    std::fs::write(&path, serde_json::to_string_pretty(&system)?)?;
    let reloaded: System = serde_json::from_str(&std::fs::read_to_string(&path)?)?;
    assert_eq!(reloaded, system);
    println!("round-tripped through {}", path.display());

    let result = Synthesizer::new(&reloaded, SynthesisConfig::fast_preset(5)).run().expect("schedulable system");
    println!("{}", reloaded.summary());
    println!(
        "best implementation: {:.4} mW, feasible: {}, mapping {}",
        result.best.power.average.as_milli(),
        result.best.is_feasible(),
        result.best.mapping.mapping_string()
    );
    for t in &result.best.transitions {
        println!(
            "  transition {}: reconfiguration {:.3} ms (limit {:.1} ms)",
            t.transition,
            t.time.as_millis(),
            t.limit.as_millis()
        );
    }
    Ok(())
}
