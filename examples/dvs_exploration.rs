//! Exploring the voltage-scaling layer by hand: the alpha-power delay
//! model, discrete-level voltage schedules and the Fig. 5 transformation
//! of parallel hardware cores.
//!
//! Run with: `cargo run --example dvs_exploration`

use momsynth::dvs::{scale_mode, virtual_tasks, DvsOptions, VoltageModel, VoltageSchedule};
use momsynth::generators::suite::{generate, GeneratorParams};
use momsynth::model::arch::DvsCapability;
use momsynth::model::ids::ModeId;
use momsynth::model::units::{Seconds, Volts};
use momsynth::sched::{schedule_mode, CoreAllocation, SchedulerOptions, SystemMapping};

fn main() {
    // 1. The delay/energy model of a 3.3 V rail with 0.8 V threshold.
    let model = VoltageModel::new(Volts::new(3.3), Volts::new(0.8));
    println!("voltage  stretch  energy-factor");
    for v in [3.3, 2.4, 1.8, 1.2] {
        let v = Volts::new(v);
        println!(
            "{:>6.1} V {:>8.3} {:>14.3}",
            v.value(),
            model.stretch(v),
            model.energy_factor(v)
        );
    }

    // 2. Fitting a discrete voltage schedule: a 10 ms task with 6 ms slack.
    let cap = DvsCapability::new(
        Volts::new(3.3),
        Volts::new(0.8),
        vec![Volts::new(1.2), Volts::new(1.8), Volts::new(2.4), Volts::new(3.3)],
    );
    let schedule = VoltageSchedule::fit(
        &cap,
        &model,
        Seconds::from_millis(10.0),
        Seconds::from_millis(16.0),
    );
    println!("\n10 ms task stretched to 16 ms:");
    for seg in schedule.segments() {
        println!(
            "  {:.2} V for {:.3} ms ({:.0} % of cycles)",
            seg.voltage.value(),
            seg.duration.as_millis(),
            seg.cycle_fraction * 100.0
        );
    }
    println!("  energy factor: {:.3}", schedule.energy_factor(&model));

    // 3. Whole-mode scaling with the Fig. 5 hardware transformation.
    let mut params = GeneratorParams::new("explore", 3);
    params.modes = 1;
    params.tasks_per_mode = (12, 12);
    params.slack_factor = 1.9;
    let system = generate(&params);
    let hw = system.arch().hardware_pes().next().expect("generated HW PE");
    let mapping = SystemMapping::from_fn(&system, |id| {
        let candidates = system.candidate_pes(id);
        *candidates.iter().find(|&&pe| pe == hw).unwrap_or(&candidates[0])
    });
    let alloc = CoreAllocation::minimal(&system, &mapping);
    let sched =
        schedule_mode(&system, ModeId::new(0), &mapping, &alloc, SchedulerOptions::default())
            .expect("generated system schedules");

    let groups = virtual_tasks(&system, &sched, hw);
    println!(
        "\n{} tasks on {} merge into {} virtual task(s) for single-rail scaling",
        sched.tasks().filter(|t| t.pe == hw).count(),
        system.arch().pe(hw).name(),
        groups.len()
    );

    let scaled = scale_mode(&system, &sched, &DvsOptions::fine());
    let saved: f64 = 1.0
        - scaled.energy_factors().iter().sum::<f64>() / scaled.energy_factors().len() as f64;
    println!(
        "PV-DVS distributed the slack in {} steps; mean per-task energy factor {:.3} ({:.0} % saved)",
        scaled.iterations(),
        1.0 - saved,
        saved * 100.0
    );
}
