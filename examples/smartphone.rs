//! Co-synthesis of the smart-phone real-life benchmark (paper Fig. 1a,
//! Table 3): one probability-aware DVS run with a per-mode power
//! breakdown.
//!
//! Run with: `cargo run --release --example smartphone`

use momsynth::generators::smartphone::smartphone;
use momsynth::synthesis::{SynthesisConfig, Synthesizer};

fn main() {
    let phone = smartphone();
    println!("{}", phone.summary());
    for (_, m) in phone.omsm().modes() {
        println!(
            "  {:<16} Ψ={:<5.2} {:>3} tasks {:>4} edges, period {:.1} ms",
            m.name(),
            m.probability(),
            m.graph().task_count(),
            m.graph().comm_count(),
            m.graph().period().as_millis(),
        );
    }

    println!("\nsynthesising (probability-aware, DVS on the GPP) …");
    let result = Synthesizer::new(&phone, SynthesisConfig::fast_preset(11).with_dvs()).run().expect("schedulable system");

    println!(
        "\naverage power: {:.4} mW after {} generations ({} evaluations, {:.1} s), feasible: {}",
        result.best.power.average.as_milli(),
        result.generations,
        result.evaluations,
        result.wall_time.as_secs_f64(),
        result.best.is_feasible(),
    );
    println!("\nper-mode breakdown:");
    print!("{}", result.best.power);

    println!("\ncomponent shut-down per mode:");
    for (mode, m) in phone.omsm().modes() {
        let on: Vec<&str> = result.best.power.modes[mode.index()]
            .active_pes
            .iter()
            .map(|&pe| phone.arch().pe(pe).name())
            .collect();
        println!("  {:<16} -> {}", m.name(), on.join(" + "));
    }
}
