//! Importing a TGFF-dialect specification and synthesising it.
//!
//! Run with: `cargo run --example tgff_import`

use momsynth::generators::tgff::parse_system;
use momsynth::model::lint::lint_system;
use momsynth::synthesis::{SynthesisConfig, Synthesizer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/assets/sample.tgff");
    let text = std::fs::read_to_string(path)?;
    let system = parse_system("sample", &text)?;
    println!("{}", system.summary());
    for w in lint_system(&system) {
        println!("lint: {w}");
    }

    let result = Synthesizer::new(&system, SynthesisConfig::fast_preset(2).with_dvs()).run().expect("schedulable system");
    print!("{}", result.best.describe(&system));
    println!(
        "synthesis: {} generations, {} evaluations, {:.2} s",
        result.generations,
        result.evaluations,
        result.wall_time.as_secs_f64()
    );
    Ok(())
}
