//! Co-synthesis of the automotive ADAS controller: hard deadlines, FPGA
//! reconfiguration between modes, and waveform/utilisation inspection of
//! the result.
//!
//! Run with: `cargo run --release --example automotive`

use momsynth::generators::automotive::automotive_ecu;
use momsynth::sched::{schedule_stats, schedule_to_vcd};
use momsynth::synthesis::{SynthesisConfig, Synthesizer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ecu = automotive_ecu();
    println!("{}", ecu.summary());

    let result = Synthesizer::new(&ecu, SynthesisConfig::fast_preset(3).with_dvs()).run().expect("schedulable system");
    print!("{}", result.best.describe(&ecu));

    // Per-resource utilisation of the dominant mode.
    let cruise = &result.best.schedules[0];
    let stats = schedule_stats(&ecu, cruise);
    println!(
        "cruise mode: makespan {:.3} ms of {:.1} ms period, mean utilisation {:.0} %",
        stats.makespan.as_millis(),
        stats.period.as_millis(),
        stats.mean_utilization() * 100.0
    );
    if let Some(bottleneck) = stats.bottleneck() {
        println!(
            "bottleneck resource: {:?} at {:.0} % utilisation",
            bottleneck.resource,
            bottleneck.utilization * 100.0
        );
    }

    // Waveform trace of the cruise mode for GTKWave.
    let path = std::env::temp_dir().join("momsynth_cruise.vcd");
    std::fs::write(&path, schedule_to_vcd(&ecu, cruise))?;
    println!("wrote {} (open with GTKWave)", path.display());
    Ok(())
}
