//! # momsynth — energy-efficient co-synthesis for multi-mode embedded systems
//!
//! A from-scratch reproduction of *“A Co-Design Methodology for
//! Energy-Efficient Multi-Mode Embedded Systems with Consideration of Mode
//! Execution Probabilities”* (Schmitz, Al-Hashimi, Eles — DATE 2003).
//!
//! Multi-mode embedded systems — a smart phone that is a GSM handset, an
//! MP3 player and a digital camera in one device — spend very uneven
//! amounts of time in their operational modes. This workspace implements
//! the paper's co-synthesis flow, which exploits those *mode execution
//! probabilities* during task mapping, core allocation, scheduling and
//! dynamic voltage scaling to minimise the battery-relevant average power.
//!
//! This crate is a facade: it re-exports the workspace crates under stable
//! module names.
//!
//! | module | contents |
//! |--------|----------|
//! | [`model`] | task graphs, the operational mode state machine, architectures, technology libraries |
//! | [`sched`] | ASAP/ALAP mobility analysis, list scheduling, communication mapping |
//! | [`dvs`]   | voltage/delay models, PV-DVS slack distribution, the Fig. 5 hardware transform |
//! | [`power`] | Equation 1: probability-weighted average power with shut-down analysis |
//! | [`ga`]    | the generic genetic-algorithm engine |
//! | [`synthesis`] | the paper's contribution: multi-mode mapping GA with improvement operators |
//! | [`generators`] | benchmark generators: mul1–mul12 suite, smart phone, motivational examples |
//! | [`telemetry`] | structured run events, phase timers and machine-readable run summaries |
//! | [`metrics`] | low-overhead service instruments (counters, gauges, histograms) with Prometheus-style exposition |
//! | [`check`] | independent end-to-end verification of finished synthesis results |
//! | [`analyze`] | pre-synthesis static feasibility analysis with provable bounds |
//!
//! # Quickstart
//!
//! ```
//! use momsynth::generators::examples::example1_system;
//! use momsynth::synthesis::{SynthesisConfig, Synthesizer};
//!
//! // The paper's Fig. 2 two-mode motivational example.
//! let system = example1_system();
//! let config = SynthesisConfig::fast_preset(1);
//! let result = Synthesizer::new(&system, config).run().expect("schedulable system");
//! assert!(result.best.is_feasible());
//! println!("average power: {:.4} mW", result.best.power.average.as_milli());
//! ```

#![warn(missing_docs)]

pub use momsynth_analyze as analyze;
pub use momsynth_check as check;
pub use momsynth_core as synthesis;
pub use momsynth_dvs as dvs;
pub use momsynth_ga as ga;
pub use momsynth_gen as generators;
pub use momsynth_metrics as metrics;
pub use momsynth_model as model;
pub use momsynth_power as power;
pub use momsynth_sched as sched;
pub use momsynth_telemetry as telemetry;
